//! A faceted-exploration session: the state stack plus the click actions of
//! the GUI (§5.4's Startup / ComputeNewState loop).

use crate::cache::FacetCache;
use crate::markers::{
    class_markers_opts, expand_path, property_facets_opts, ClassMarker, FacetOptions,
    PropertyFacet,
};
use crate::ops::{restrict_class, restrict_path, restrict_range, restrict_value};
use crate::state::{Condition, Constraint, Intent, PathStep, State};
use crate::FacetError;
use rdfa_model::Value;
use rdfa_store::{ExtSet, Store, TermId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Memoized left-frame computations for the current state — the
/// user-friendliness/efficiency iteration the dissertation lists as
/// system (3): markers are recomputed only when the state changes.
#[derive(Default)]
struct FrameCache {
    class_markers: Option<Arc<Vec<ClassMarker>>>,
    facets: Option<Arc<Vec<PropertyFacet>>>,
}

/// A session over a store: a history of states, the last being current.
pub struct FacetedSession<'s> {
    store: &'s Store,
    states: Vec<State>,
    opts: FacetOptions,
    /// Cross-state (and cross-session, when shared) marker cache; makes the
    /// back button O(1).
    shared: Option<Arc<FacetCache>>,
    /// Per-state memo, used when no shared cache is attached.
    cache: std::cell::RefCell<FrameCache>,
}

impl<'s> FacetedSession<'s> {
    /// Start from scratch: the initial state `s0` over all individuals.
    pub fn start(store: &'s Store) -> Self {
        FacetedSession::start_with(store, FacetOptions::default())
    }

    /// [`FacetedSession::start`] with explicit marker-computation options
    /// (thread count, deadline).
    pub fn start_with(store: &'s Store, opts: FacetOptions) -> Self {
        FacetedSession {
            store,
            states: vec![State::initial(store)],
            opts,
            shared: None,
            cache: Default::default(),
        }
    }

    /// Start by exploring an externally obtained result set (e.g. a keyword
    /// query's answer — the second starting point of §5.4.1).
    pub fn start_from(store: &'s Store, results: BTreeSet<TermId>) -> Self {
        let ext = ExtSet::from(&results);
        let intent = Intent { seed: Some(results), ..Intent::default() };
        FacetedSession {
            store,
            states: vec![State { ext, intent }],
            opts: FacetOptions::default(),
            shared: None,
            cache: Default::default(),
        }
    }

    /// Attach a shared marker cache; repeated states (back button, other
    /// sessions over the same store) are then served without recomputation.
    pub fn with_cache(mut self, cache: Arc<FacetCache>) -> Self {
        self.set_cache(cache);
        self
    }

    /// See [`FacetedSession::with_cache`].
    pub fn set_cache(&mut self, cache: Arc<FacetCache>) {
        self.shared = Some(cache);
    }

    /// The backing store.
    pub fn store(&self) -> &'s Store {
        self.store
    }

    /// The current state.
    pub fn state(&self) -> &State {
        self.states.last().expect("session always has a state")
    }

    /// The current extension (right frame).
    pub fn extension(&self) -> &ExtSet {
        &self.state().ext
    }

    /// The current intention.
    pub fn intent(&self) -> &Intent {
        &self.state().intent
    }

    /// Number of states on the stack (including the initial one).
    pub fn depth(&self) -> usize {
        self.states.len()
    }

    // ---- left frame -------------------------------------------------------

    /// Class-based transition markers for the current state (Fig 5.4 a/b).
    /// Memoized per state; served from the shared cache when one is set.
    /// Ignores any configured deadline — use
    /// [`FacetedSession::try_class_markers`] to enforce it.
    pub fn class_markers(&self) -> Vec<ClassMarker> {
        let opts = FacetOptions { deadline: None, ..self.opts };
        (*self.class_markers_arc(opts).expect("no deadline configured")).clone()
    }

    /// Class markers with the session's deadline enforced.
    pub fn try_class_markers(&self) -> Result<Arc<Vec<ClassMarker>>, FacetError> {
        self.class_markers_arc(self.opts)
    }

    fn class_markers_arc(&self, opts: FacetOptions) -> Result<Arc<Vec<ClassMarker>>, FacetError> {
        if let Some(shared) = &self.shared {
            return shared.class_markers(self.store, self.extension(), opts);
        }
        if let Some(cached) = &self.cache.borrow().class_markers {
            return Ok(Arc::clone(cached));
        }
        let computed = Arc::new(class_markers_opts(self.store, self.extension(), opts)?);
        self.cache.borrow_mut().class_markers = Some(Arc::clone(&computed));
        Ok(computed)
    }

    /// Property facets with value counts for the current state (Fig 5.4 c).
    /// Memoized per state; served from the shared cache when one is set.
    /// Ignores any configured deadline — use [`FacetedSession::try_facets`]
    /// to enforce it.
    pub fn facets(&self) -> Vec<PropertyFacet> {
        let opts = FacetOptions { deadline: None, ..self.opts };
        (*self.facets_arc(opts).expect("no deadline configured")).clone()
    }

    /// Property facets with the session's deadline enforced.
    pub fn try_facets(&self) -> Result<Arc<Vec<PropertyFacet>>, FacetError> {
        self.facets_arc(self.opts)
    }

    fn facets_arc(&self, opts: FacetOptions) -> Result<Arc<Vec<PropertyFacet>>, FacetError> {
        if let Some(shared) = &self.shared {
            return shared.property_facets(self.store, self.extension(), opts);
        }
        if let Some(cached) = &self.cache.borrow().facets {
            return Ok(Arc::clone(cached));
        }
        let computed = Arc::new(property_facets_opts(self.store, self.extension(), opts)?);
        self.cache.borrow_mut().facets = Some(Arc::clone(&computed));
        Ok(computed)
    }

    /// Path-expansion markers for a property path (Fig 5.5).
    pub fn expand(&self, path: &[PathStep]) -> Vec<(TermId, usize)> {
        expand_path(self.store, self.extension(), path)
    }

    // ---- transitions ------------------------------------------------------

    fn push(&mut self, ext: ExtSet, intent: Intent) -> Result<(), FacetError> {
        if ext.is_empty() {
            return Err(FacetError::new(
                "transition would produce an empty extension (never offered by the UI)",
            ));
        }
        self.states.push(State { ext, intent });
        *self.cache.borrow_mut() = FrameCache::default();
        Ok(())
    }

    /// Click a class marker: restrict to (entailed) instances of `c`.
    pub fn select_class(&mut self, c: TermId) -> Result<(), FacetError> {
        let ext = restrict_class(self.store, self.extension(), c);
        let mut intent = self.intent().clone();
        intent.class = Some(c);
        self.push(ext, intent)
    }

    /// Click a value marker of a (single-step) property facet.
    pub fn select_value(&mut self, prop: TermId, value: TermId) -> Result<(), FacetError> {
        let step = PathStep::fwd(prop);
        let ext = restrict_value(self.store, self.extension(), step, value);
        let mut intent = self.intent().clone();
        intent.conditions.push(Condition {
            path: vec![step],
            constraint: Constraint::Value(value),
        });
        self.push(ext, intent)
    }

    /// Tick several value checkboxes of one facet at once (disjunctive
    /// selection, the multi-select of classic faceted search, Fig 2.10):
    /// keeps elements with a `p`-edge to *any* of the chosen values.
    pub fn select_values(
        &mut self,
        prop: TermId,
        values: &BTreeSet<TermId>,
    ) -> Result<(), FacetError> {
        if values.is_empty() {
            return Err(FacetError::new("empty value selection"));
        }
        let step = PathStep::fwd(prop);
        let vset = ExtSet::from(values);
        let ext = crate::ops::restrict_value_set(self.store, self.extension(), step, &vset);
        let mut intent = self.intent().clone();
        intent.conditions.push(Condition {
            path: vec![step],
            constraint: Constraint::OneOf(values.clone()),
        });
        self.push(ext, intent)
    }

    /// Click a value at the end of an expanded path (Eq. 5.1 transition).
    pub fn select_path_value(
        &mut self,
        path: &[PathStep],
        value: TermId,
    ) -> Result<(), FacetError> {
        if path.is_empty() {
            return Err(FacetError::new("empty property path"));
        }
        let ext = if path.len() == 1 {
            restrict_value(self.store, self.extension(), path[0], value)
        } else {
            let vset: ExtSet = [value].into_iter().collect();
            restrict_path(self.store, self.extension(), path, &vset)?
        };
        let mut intent = self.intent().clone();
        intent.conditions.push(Condition {
            path: path.to_vec(),
            constraint: Constraint::Value(value),
        });
        self.push(ext, intent)
    }

    /// Apply a range filter on a path's terminal values (the `⧩` button,
    /// Example 3 of §5.1).
    pub fn select_range(
        &mut self,
        path: &[PathStep],
        min: Option<Value>,
        max: Option<Value>,
    ) -> Result<(), FacetError> {
        if path.is_empty() {
            return Err(FacetError::new("empty property path"));
        }
        let ext = restrict_range(self.store, self.extension(), path, min.as_ref(), max.as_ref());
        let mut intent = self.intent().clone();
        intent.conditions.push(Condition {
            path: path.to_vec(),
            constraint: Constraint::Range { min, max },
        });
        self.push(ext, intent)
    }

    /// Undo the last transition. Returns `false` at the initial state. With
    /// a shared cache attached, the previous state's markers are still
    /// cached, so this is effectively O(1).
    pub fn back(&mut self) -> bool {
        if self.states.len() > 1 {
            self.states.pop();
            *self.cache.borrow_mut() = FrameCache::default();
            true
        } else {
            false
        }
    }

    /// Reset to the initial state.
    pub fn reset(&mut self) {
        self.states.truncate(1);
        *self.cache.borrow_mut() = FrameCache::default();
    }

    /// The SPARQL expression of the current intention (§5.5).
    pub fn intent_sparql(&self) -> String {
        self.intent().to_sparql(self.store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               ex:Laptop rdfs:subClassOf ex:Product .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 2 ;
                     ex:releaseDate "2021-06-10"^^xsd:date .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 4 ;
                     ex:releaseDate "2021-09-03"^^xsd:date .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:Lenovo ; ex:usb 2 ;
                     ex:releaseDate "2020-10-10"^^xsd:date .
               ex:DELL ex:origin ex:USA . ex:Lenovo ex:origin ex:China .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup_iri(&format!("{EX}{local}")).unwrap()
    }

    #[test]
    fn full_session_flow() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        assert_eq!(session.extension().len(), 3);
        session.select_value(id(&s, "manufacturer"), id(&s, "DELL")).unwrap();
        assert_eq!(session.extension().len(), 2);
        session
            .select_range(&[PathStep::fwd(id(&s, "usb"))], Some(Value::Int(3)), None)
            .unwrap();
        assert_eq!(session.extension().len(), 1);
        assert!(session.back());
        assert_eq!(session.extension().len(), 2);
        session.reset();
        assert_eq!(session.depth(), 1);
    }

    #[test]
    fn path_value_selection() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        let path = [PathStep::fwd(id(&s, "manufacturer")), PathStep::fwd(id(&s, "origin"))];
        let markers = session.expand(&path);
        assert_eq!(markers.len(), 2);
        session.select_path_value(&path, id(&s, "USA")).unwrap();
        assert_eq!(session.extension().len(), 2);
        assert!(session.intent_sparql().contains("origin"));
    }

    #[test]
    fn empty_transition_rejected() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        // Lenovo laptops with origin USA: none
        session.select_value(id(&s, "manufacturer"), id(&s, "Lenovo")).unwrap();
        let path = [PathStep::fwd(id(&s, "manufacturer")), PathStep::fwd(id(&s, "origin"))];
        let err = session.select_path_value(&path, id(&s, "USA")).unwrap_err();
        assert!(err.message.contains("empty"));
        // session state unchanged after the failed transition
        assert_eq!(session.extension().len(), 1);
    }

    #[test]
    fn intent_tracks_clicks_and_evaluates_back_to_extension() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        session.select_value(id(&s, "manufacturer"), id(&s, "DELL")).unwrap();
        let sparql = session.intent_sparql();
        let sols = rdfa_sparql::Engine::builder(&s).build().run(&sparql).unwrap();
        let got: BTreeSet<String> = sols
            .solutions()
            .unwrap()
            .column("x")
            .map(|t| t.display_name())
            .collect();
        let expect: BTreeSet<String> = session
            .extension()
            .iter()
            .map(|i| s.term(i).display_name())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn date_range_filter() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        let date = rdfa_model::Date::parse("2021-01-01").unwrap();
        session
            .select_range(
                &[PathStep::fwd(id(&s, "releaseDate"))],
                Some(Value::Date(date)),
                None,
            )
            .unwrap();
        assert_eq!(session.extension().len(), 2);
    }

    #[test]
    fn multi_select_is_disjunctive() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        let both: BTreeSet<TermId> = [id(&s, "DELL"), id(&s, "Lenovo")].into_iter().collect();
        session.select_values(id(&s, "manufacturer"), &both).unwrap();
        assert_eq!(session.extension().len(), 3);
        // the OR intention evaluates back to the extension
        let sparql = session.intent_sparql();
        assert!(sparql.contains(" IN ("), "{sparql}");
        let got = rdfa_sparql::Engine::builder(&s).build()
            .run(&sparql)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(got.len(), 3);
        // empty selection rejected
        assert!(session.select_values(id(&s, "manufacturer"), &BTreeSet::new()).is_err());
    }

    #[test]
    fn cached_facets_match_fresh_and_invalidate_on_transition() {
        let s = store();
        let mut session = FacetedSession::start(&s);
        session.select_class(id(&s, "Laptop")).unwrap();
        let first = session.facets();
        let cached = session.facets();
        assert_eq!(first, cached);
        assert_eq!(first, crate::markers::property_facets(&s, session.extension()));
        // transition invalidates
        session.select_value(id(&s, "manufacturer"), id(&s, "DELL")).unwrap();
        let narrowed = session.facets();
        assert_ne!(first, narrowed);
        assert_eq!(narrowed, crate::markers::property_facets(&s, session.extension()));
        // back invalidates too
        session.back();
        assert_eq!(session.facets(), first);
    }

    #[test]
    fn shared_cache_serves_back_button() {
        let s = store();
        let cache = Arc::new(FacetCache::new(16));
        let mut session = FacetedSession::start(&s).with_cache(Arc::clone(&cache));
        let initial = session.facets();
        session.select_class(id(&s, "Laptop")).unwrap();
        session.facets();
        session.back();
        // the initial state's facets come straight from the cache
        assert_eq!(session.facets(), initial);
        let st = cache.stats();
        assert_eq!(st.hits, 1, "{st:?}");
        assert_eq!(st.misses, 2);
        // a second session over the same store shares the entries
        let other = FacetedSession::start(&s).with_cache(Arc::clone(&cache));
        assert_eq!(other.facets(), initial);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn deadline_surfaces_through_try_apis() {
        let s = store();
        let opts = FacetOptions { threads: 1, deadline: Some(Duration::ZERO) };
        let session = FacetedSession::start_with(&s, opts);
        assert!(session.try_facets().is_err());
        assert!(session.try_class_markers().is_err());
    }

    #[test]
    fn start_from_external_results() {
        let s = store();
        let two: BTreeSet<TermId> = [id(&s, "l1"), id(&s, "l3")].into_iter().collect();
        let session = FacetedSession::start_from(&s, two.clone());
        assert_eq!(session.extension().to_btree_set(), two);
    }
}
