//! Grouping of facet values into intervals — Fig 5.4 (d).
//!
//! Numeric (and date) facets with many distinct values are displayed as
//! interval buckets rather than flat value lists; clicking a bucket applies
//! the corresponding range restriction (the same transition as the ⧩
//! filter), so the never-empty guarantee carries over.

use crate::ops::restrict_range;
use crate::state::PathStep;
use rdfa_model::Value;
use rdfa_store::{ExtSet, Store};
use std::collections::BTreeSet;

/// One value bucket: a closed interval with its member count.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    pub min: Value,
    pub max: Value,
    /// Extension elements whose value falls in `[min, max]`.
    pub count: usize,
}

impl Bucket {
    /// Display label, e.g. `800 – 1000`.
    pub fn label(&self) -> String {
        format!("{} – {}", self.min.render(), self.max.render())
    }
}

/// Bucket the numeric values of a property path over an extension into (at
/// most) `n_buckets` equal-width intervals. Non-numeric values are ignored;
/// returns an empty vector when fewer than two distinct numeric values
/// exist (a flat list is better then).
pub fn bucket_values(
    store: &Store,
    ext: &ExtSet,
    path: &[PathStep],
    n_buckets: usize,
) -> Vec<Bucket> {
    assert!(n_buckets > 0, "need at least one bucket");
    let values: Vec<f64> = crate::ops::joins_path(store, ext, path)
        .into_iter()
        .filter_map(|id| Value::from_term(store.term(id)).as_f64())
        .collect();
    let distinct: BTreeSet<u64> = values.iter().map(|v| v.to_bits()).collect();
    if distinct.len() < 2 {
        return Vec::new();
    }
    let lo = values.iter().copied().fold(f64::MAX, f64::min);
    let hi = values.iter().copied().fold(f64::MIN, f64::max);
    let width = (hi - lo) / n_buckets as f64;
    (0..n_buckets)
        .filter_map(|i| {
            let b_lo = lo + i as f64 * width;
            let b_hi = if i + 1 == n_buckets { hi } else { lo + (i + 1) as f64 * width };
            let min = Value::Float(b_lo);
            let max = Value::Float(b_hi);
            // count via the same restriction a click would apply; upper
            // bounds are exclusive except for the last bucket, achieved by
            // nudging the bound just below the next bucket's start
            let max_for_count = if i + 1 == n_buckets {
                max.clone()
            } else {
                Value::Float(next_down(b_hi))
            };
            let count = restrict_range(store, ext, path, Some(&min), Some(&max_for_count)).len();
            (count > 0).then_some(Bucket { min, max, count })
        })
        .collect()
}

fn next_down(v: f64) -> f64 {
    f64::from_bits(v.to_bits() - 1)
}

/// The range restriction a bucket click applies: `(min, max)` bounds for
/// [`crate::session::FacetedSession::select_range`].
pub fn bucket_bounds(bucket: &Bucket, is_last: bool) -> (Option<Value>, Option<Value>) {
    let max = match (&bucket.max, is_last) {
        (Value::Float(v), false) => Value::Float(next_down(*v)),
        (other, _) => other.clone(),
    };
    (Some(bucket.min.clone()), Some(max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::FacetedSession;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        let mut ttl = format!("@prefix ex: <{EX}> .\n");
        for (i, price) in [300, 450, 500, 800, 950, 1000, 1400, 2900].iter().enumerate() {
            ttl.push_str(&format!("ex:l{i} a ex:Laptop ; ex:price {price} .\n"));
        }
        s.load_turtle(&ttl).unwrap();
        s
    }

    fn laptops(s: &Store) -> ExtSet {
        s.instances_set(s.lookup_iri(&format!("{EX}Laptop")).unwrap())
    }

    fn price_path(s: &Store) -> [PathStep; 1] {
        [PathStep::fwd(s.lookup_iri(&format!("{EX}price")).unwrap())]
    }

    #[test]
    fn buckets_partition_the_extension() {
        let s = store();
        let ext = laptops(&s);
        let buckets = bucket_values(&s, &ext, &price_path(&s), 4);
        let total: usize = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, ext.len(), "{buckets:?}");
        assert!(buckets.len() >= 2);
    }

    #[test]
    fn empty_buckets_are_pruned() {
        let s = store();
        let ext = laptops(&s);
        // 2900 is an outlier: with many buckets some are empty and dropped
        let buckets = bucket_values(&s, &ext, &price_path(&s), 10);
        assert!(buckets.iter().all(|b| b.count > 0));
    }

    #[test]
    fn bucket_click_never_empty() {
        let s = store();
        let ext = laptops(&s);
        let path = price_path(&s);
        let buckets = bucket_values(&s, &ext, &path, 4);
        let n = buckets.len();
        for (i, b) in buckets.iter().enumerate() {
            let (min, max) = bucket_bounds(b, i + 1 == n);
            let mut session = FacetedSession::start_from(&s, ext.to_btree_set());
            session.select_range(&path, min, max).unwrap();
            assert_eq!(session.extension().len(), b.count);
        }
    }

    #[test]
    fn single_value_yields_no_buckets() {
        let mut s = Store::new();
        s.load_turtle(&format!(
            "@prefix ex: <{EX}> . ex:a a ex:T ; ex:p 5 . ex:b a ex:T ; ex:p 5 ."
        ))
        .unwrap();
        let ext = s.instances_set(s.lookup_iri(&format!("{EX}T")).unwrap());
        let path = [PathStep::fwd(s.lookup_iri(&format!("{EX}p")).unwrap())];
        assert!(bucket_values(&s, &ext, &path, 3).is_empty());
    }

    #[test]
    fn labels_are_readable() {
        let b = Bucket { min: Value::Float(300.0), max: Value::Float(950.0), count: 4 };
        assert_eq!(b.label(), "300 – 950");
    }
}
