//! Generation-keyed facet cache.
//!
//! Interactive sessions revisit states constantly — the back button, the
//! breadcrumb trail, two users exploring the same class. Marker computation
//! is pure: its output depends only on the store contents and the extension.
//! The cache therefore keys entries by `(store generation, extension
//! fingerprint, extension length, marker kind)`; the store bumps its
//! [`rdfa_store::Store::generation`] counter on every effective mutation, so
//! entries from a stale store can never be served — no explicit
//! invalidation hooks, updates just stop matching.
//!
//! The cache is `Sync` (a mutexed map plus atomic counters) and intended to
//! be shared via `Arc` across sessions and server worker threads.

use crate::markers::{class_markers_opts, property_facets_opts, ClassMarker, FacetOptions, PropertyFacet};
use crate::FacetError;
use rdfa_store::{ExtSet, Store};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    Classes,
    Facets,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: Kind,
    generation: u64,
    ext_len: usize,
    fingerprint: u64,
}

impl Key {
    fn new(kind: Kind, store: &Store, ext: &ExtSet) -> Self {
        Key {
            kind,
            generation: store.generation(),
            ext_len: ext.len(),
            fingerprint: ext.fingerprint(),
        }
    }
}

#[derive(Clone)]
enum CachedValue {
    Classes(Arc<Vec<ClassMarker>>),
    Facets(Arc<Vec<PropertyFacet>>),
}

struct Entry {
    value: CachedValue,
    /// Last-access tick, for LRU eviction.
    tick: u64,
}

struct Inner {
    map: HashMap<Key, Entry>,
    tick: u64,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FacetCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Lookups answered from a superseded generation (graceful degradation
    /// under deadline pressure; see the `*_stale` methods).
    pub stale_hits: u64,
    pub entries: usize,
    pub capacity: usize,
}

/// An LRU cache of computed markers, keyed by store generation and
/// extension fingerprint. See the module docs for the invalidation story.
pub struct FacetCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_hits: AtomicU64,
}

/// Default number of cached marker sets (two entries per distinct state).
pub const DEFAULT_FACET_CACHE_ENTRIES: usize = 128;

impl Default for FacetCache {
    fn default() -> Self {
        FacetCache::new(DEFAULT_FACET_CACHE_ENTRIES)
    }
}

impl FacetCache {
    /// A cache holding at most `capacity` marker sets (class trees and
    /// property-facet lists count separately). A capacity of `0` disables
    /// caching: every lookup is a miss and nothing is stored.
    pub fn new(capacity: usize) -> Self {
        FacetCache {
            capacity,
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_hits: AtomicU64::new(0),
        }
    }

    /// Class markers for `ext`, served from cache when the store generation
    /// and extension fingerprint match, computed (and cached) otherwise.
    /// Deadline errors are returned without caching.
    pub fn class_markers(
        &self,
        store: &Store,
        ext: &ExtSet,
        opts: FacetOptions,
    ) -> Result<Arc<Vec<ClassMarker>>, FacetError> {
        let key = Key::new(Kind::Classes, store, ext);
        if let Some(CachedValue::Classes(v)) = self.lookup(key) {
            return Ok(v);
        }
        let computed = Arc::new(class_markers_opts(store, ext, opts)?);
        self.store_entry(key, CachedValue::Classes(Arc::clone(&computed)));
        Ok(computed)
    }

    /// Property facets for `ext`; caching behaves as for
    /// [`FacetCache::class_markers`].
    pub fn property_facets(
        &self,
        store: &Store,
        ext: &ExtSet,
        opts: FacetOptions,
    ) -> Result<Arc<Vec<PropertyFacet>>, FacetError> {
        let key = Key::new(Kind::Facets, store, ext);
        if let Some(CachedValue::Facets(v)) = self.lookup(key) {
            return Ok(v);
        }
        let computed = Arc::new(property_facets_opts(store, ext, opts)?);
        self.store_entry(key, CachedValue::Facets(Arc::clone(&computed)));
        Ok(computed)
    }

    /// Best stale class markers for `ext`: the newest cached entry for this
    /// extension at **any** generation. Returns the value and the
    /// generation it was computed at. Used for graceful degradation — when
    /// a fresh computation would blow its deadline, a recent answer with an
    /// honest staleness label beats a 504.
    pub fn class_markers_stale(&self, ext: &ExtSet) -> Option<(Arc<Vec<ClassMarker>>, u64)> {
        match self.lookup_stale(Kind::Classes, ext) {
            Some((CachedValue::Classes(v), generation)) => Some((v, generation)),
            _ => None,
        }
    }

    /// Best stale property facets for `ext`; see
    /// [`FacetCache::class_markers_stale`].
    pub fn property_facets_stale(&self, ext: &ExtSet) -> Option<(Arc<Vec<PropertyFacet>>, u64)> {
        match self.lookup_stale(Kind::Facets, ext) {
            Some((CachedValue::Facets(v), generation)) => Some((v, generation)),
            _ => None,
        }
    }

    fn lookup_stale(&self, kind: Kind, ext: &ExtSet) -> Option<(CachedValue, u64)> {
        let (ext_len, fingerprint) = (ext.len(), ext.fingerprint());
        let mut inner = self.inner.lock().expect("facet cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        // linear scan over ≤ capacity entries, off the fresh-hit fast path
        let best = inner
            .map
            .keys()
            .filter(|k| k.kind == kind && k.ext_len == ext_len && k.fingerprint == fingerprint)
            .max_by_key(|k| k.generation)
            .copied()?;
        let entry = inner.map.get_mut(&best).expect("key just found");
        entry.tick = tick;
        let value = entry.value.clone();
        drop(inner);
        self.stale_hits.fetch_add(1, Ordering::Relaxed);
        Some((value, best.generation))
    }

    fn lookup(&self, key: Key) -> Option<CachedValue> {
        let mut inner = self.inner.lock().expect("facet cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let value = entry.value.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store_entry(&self, key: Key, value: CachedValue) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("facet cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // evict the least-recently-used entry (linear scan: capacities
            // are small and eviction is off the hot hit path)
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, Entry { value, tick });
    }

    /// Hit/miss/eviction counters and current occupancy.
    pub fn stats(&self) -> FacetCacheStats {
        let entries = self.inner.lock().expect("facet cache poisoned").map.len();
        FacetCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale_hits: self.stale_hits.load(Ordering::Relaxed),
            entries,
            capacity: self.capacity,
        }
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&self) {
        self.inner.lock().expect("facet cache poisoned").map.clear();
    }
}

impl std::fmt::Debug for FacetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FacetCache")
            .field("capacity", &s.capacity)
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("evictions", &s.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_store::TermId;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:Lenovo .
            "#
        ))
        .unwrap();
        s
    }

    fn ext(s: &Store) -> ExtSet {
        s.instances_set(s.lookup_iri(&format!("{EX}Laptop")).unwrap())
    }

    #[test]
    fn second_lookup_hits() {
        let s = store();
        let cache = FacetCache::new(8);
        let opts = FacetOptions::default();
        let a = cache.class_markers(&s, &ext(&s), opts).unwrap();
        let b = cache.class_markers(&s, &ext(&s), opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (1, 1));
    }

    #[test]
    fn store_mutation_invalidates() {
        let mut s = store();
        let cache = FacetCache::new(8);
        let opts = FacetOptions::default();
        let e = ext(&s);
        let a = cache.class_markers(&s, &e, opts).unwrap();
        s.load_turtle(&format!("@prefix ex: <{EX}> . ex:l3 a ex:Laptop ."))
            .unwrap();
        // same extension value, new generation: must recompute
        let b = cache.class_markers(&s, &e, opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn distinct_extensions_do_not_collide() {
        let s = store();
        let cache = FacetCache::new(8);
        let opts = FacetOptions::default();
        let full = ext(&s);
        let one: ExtSet = full.iter().take(1).collect();
        let a = cache.property_facets(&s, &full, opts).unwrap();
        let b = cache.property_facets(&s, &one, opts).unwrap();
        assert_ne!(*a, *b);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let s = store();
        let cache = FacetCache::new(2);
        let opts = FacetOptions::default();
        let full = ext(&s);
        let singles: Vec<ExtSet> = full.iter().map(|id| [id].into_iter().collect::<ExtSet>()).collect();
        cache.class_markers(&s, &full, opts).unwrap();
        cache.class_markers(&s, &singles[0], opts).unwrap();
        // touch `full` so `singles[0]` is the LRU victim
        cache.class_markers(&s, &full, opts).unwrap();
        cache.class_markers(&s, &singles[1], opts).unwrap();
        let st = cache.stats();
        assert_eq!(st.evictions, 1);
        assert_eq!(st.entries, 2);
        // `full` survived the eviction
        cache.class_markers(&s, &full, opts).unwrap();
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let s = store();
        let cache = FacetCache::new(0);
        let opts = FacetOptions::default();
        cache.class_markers(&s, &ext(&s), opts).unwrap();
        cache.class_markers(&s, &ext(&s), opts).unwrap();
        let st = cache.stats();
        assert_eq!(st.hits, 0);
        assert_eq!(st.entries, 0);
    }

    #[test]
    fn shared_across_threads() {
        let s = store();
        let cache = Arc::new(FacetCache::new(8));
        let e = ext(&s);
        // warm the entry, then hit it from four threads concurrently
        cache.class_markers(&s, &e, FacetOptions::default()).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (cache, s, e) = (Arc::clone(&cache), &s, &e);
                scope.spawn(move || {
                    cache.class_markers(s, e, FacetOptions::default()).unwrap();
                });
            }
        });
        let st = cache.stats();
        assert_eq!((st.hits, st.misses), (4, 1), "{st:?}");
    }

    #[test]
    fn stale_lookup_serves_newest_superseded_generation() {
        let mut s = store();
        let cache = FacetCache::new(8);
        let opts = FacetOptions::default();
        let e = ext(&s);
        let old = cache.class_markers(&s, &e, opts).unwrap();
        let old_gen = s.generation();
        // mutate: the cached entry is now stale for fresh lookups...
        s.load_turtle(&format!("@prefix ex: <{EX}> . ex:x1 a ex:Desktop ."))
            .unwrap();
        assert!(s.generation() > old_gen);
        // ...but the stale path still finds it, labeled with its generation
        let (v, g) = cache.class_markers_stale(&e).expect("stale entry available");
        assert!(Arc::ptr_eq(&old, &v));
        assert_eq!(g, old_gen);
        assert_eq!(cache.stats().stale_hits, 1);
        // newest generation wins once a fresher entry exists
        let newer = cache.class_markers(&s, &e, opts).unwrap();
        let (v2, g2) = cache.class_markers_stale(&e).unwrap();
        assert!(Arc::ptr_eq(&newer, &v2));
        assert_eq!(g2, s.generation());
        // unknown extension: no stale answer
        let other: ExtSet = [TermId(9999)].into_iter().collect();
        assert!(cache.class_markers_stale(&other).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_same_len() {
        // same length, different members: keys must differ
        let a: ExtSet = [TermId(1), TermId(2)].into_iter().collect();
        let b: ExtSet = [TermId(1), TermId(3)].into_iter().collect();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
