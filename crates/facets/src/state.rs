//! Interaction states: extension + intention (§5.3.2, §5.5).

use rdfa_model::{Term, Value};
use rdfa_store::{ExtSet, Store, TermId};
use std::collections::BTreeSet;

/// One step of a property path: a property, possibly traversed inversely
/// (`p⁻¹` of §5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathStep {
    pub prop: TermId,
    pub inverse: bool,
}

impl PathStep {
    /// A forward step.
    pub fn fwd(prop: TermId) -> Self {
        PathStep { prop, inverse: false }
    }

    /// An inverse step.
    pub fn inv(prop: TermId) -> Self {
        PathStep { prop, inverse: true }
    }
}

/// The constraint at the end of a condition's path.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Terminal value equals this term.
    Value(TermId),
    /// Terminal value is one of these terms.
    OneOf(BTreeSet<TermId>),
    /// Terminal value lies in a (typed) range; either bound optional.
    Range { min: Option<Value>, max: Option<Value> },
}

/// One accumulated filter condition: a path from the focus resources plus a
/// terminal constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    pub path: Vec<PathStep>,
    pub constraint: Constraint,
}

/// The intention of a state: the query whose answer is the extension (§5.5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Intent {
    /// An explicit seed set when the session started from external results
    /// (keyword search, §5.4.1); `None` for from-scratch sessions.
    pub seed: Option<BTreeSet<TermId>>,
    /// Selected class, if any.
    pub class: Option<TermId>,
    /// Conjunction of conditions, in click order.
    pub conditions: Vec<Condition>,
}

impl Intent {
    /// Express the intention as a SPARQL SELECT query (Table 5.1's
    /// SPARQL-expression of the model's notations).
    pub fn to_sparql(&self, store: &Store) -> String {
        let mut patterns: Vec<String> = Vec::new();
        let mut filters: Vec<String> = Vec::new();
        let mut var_counter = 0usize;
        let mut fresh = || {
            var_counter += 1;
            format!("?v{var_counter}")
        };
        let values_clause = self.seed.as_ref().map(|seed| {
            let list = seed
                .iter()
                .map(|&id| store.term(id).to_string())
                .collect::<Vec<_>>()
                .join(" ");
            format!("VALUES ?x {{ {list} }}")
        });
        if let Some(c) = self.class {
            patterns.push(format!(
                "?x <{}> {} .",
                rdfa_model::vocab::rdf::TYPE,
                store.term(c)
            ));
        }
        for cond in &self.conditions {
            let mut current = "?x".to_owned();
            let k = cond.path.len();
            for (i, step) in cond.path.iter().enumerate() {
                let is_last = i + 1 == k;
                let prop = store.term(step.prop);
                // the terminal node: a constant for Value constraints, a
                // variable otherwise
                let next = if is_last {
                    match &cond.constraint {
                        Constraint::Value(v) => store.term(*v).to_string(),
                        _ => fresh(),
                    }
                } else {
                    fresh()
                };
                if step.inverse {
                    patterns.push(format!("{next} {prop} {current} ."));
                } else {
                    patterns.push(format!("{current} {prop} {next} ."));
                }
                if is_last {
                    match &cond.constraint {
                        Constraint::Value(_) => {}
                        Constraint::OneOf(set) => {
                            let list = set
                                .iter()
                                .map(|v| store.term(*v).to_string())
                                .collect::<Vec<_>>()
                                .join(", ");
                            filters.push(format!("{next} IN ({list})"));
                        }
                        Constraint::Range { min, max } => {
                            if let Some(m) = min {
                                filters.push(format!("{next} >= {}", m.to_term()));
                            }
                            if let Some(m) = max {
                                filters.push(format!("{next} <= {}", m.to_term()));
                            }
                        }
                    }
                }
                current = next;
            }
        }
        if patterns.is_empty() && values_clause.is_none() {
            patterns.push("?x ?p ?o .".to_owned());
        }
        let mut q = String::from("SELECT DISTINCT ?x\nWHERE {\n");
        if let Some(v) = &values_clause {
            q.push_str("  ");
            q.push_str(v);
            q.push('\n');
        }
        for p in &patterns {
            q.push_str("  ");
            q.push_str(p);
            q.push('\n');
        }
        if !filters.is_empty() {
            q.push_str(&format!("  FILTER({})\n", filters.join(" && ")));
        }
        q.push_str("}\n");
        q
    }

    /// Human-readable description of the state (used in session breadcrumbs).
    pub fn describe(&self, store: &Store) -> String {
        let mut parts = Vec::new();
        if let Some(seed) = &self.seed {
            parts.push(format!("seed of {} results", seed.len()));
        }
        if let Some(c) = self.class {
            parts.push(format!("type={}", store.term(c).display_name()));
        }
        for cond in &self.conditions {
            let path = cond
                .path
                .iter()
                .map(|s| {
                    let name = store.term(s.prop).display_name();
                    if s.inverse {
                        format!("^{name}")
                    } else {
                        name
                    }
                })
                .collect::<Vec<_>>()
                .join("/");
            let c = match &cond.constraint {
                Constraint::Value(v) => store.term(*v).display_name(),
                Constraint::OneOf(set) => format!("one of {} values", set.len()),
                Constraint::Range { min, max } => format!(
                    "[{}..{}]",
                    min.as_ref().map(|v| v.render()).unwrap_or_default(),
                    max.as_ref().map(|v| v.render()).unwrap_or_default()
                ),
            };
            parts.push(format!("{path}={c}"));
        }
        if parts.is_empty() {
            "all resources".to_owned()
        } else {
            parts.join(", ")
        }
    }
}

/// A state of the interaction: extension (focus resources) + intention.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub ext: ExtSet,
    pub intent: Intent,
}

impl State {
    /// The artificial initial state `s0`: every named individual, or every
    /// subject when no `owl:NamedIndividual` typing exists (§5.3.2).
    pub fn initial(store: &Store) -> Self {
        let named = store
            .lookup_iri(rdfa_model::vocab::owl::NAMED_INDIVIDUAL)
            .map(|ni| store.instances_set(ni))
            .unwrap_or_default();
        let ext = if named.is_empty() {
            // SPO iteration is ascending by subject, so adjacent dedup suffices
            ExtSet::from_sorted_iter(store.iter_explicit().map(|[s, _, _]| s))
        } else {
            named
        };
        State { ext, intent: Intent::default() }
    }

    /// Objects of the right frame, as terms.
    pub fn resources<'a>(&'a self, store: &'a Store) -> impl Iterator<Item = &'a Term> + 'a {
        self.ext.iter().map(|id| store.term(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 2 .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:Lenovo .
               ex:DELL ex:origin ex:USA .
            "#
        ))
        .unwrap();
        s
    }

    #[test]
    fn initial_state_covers_all_subjects() {
        let s = store();
        let st = State::initial(&s);
        assert!(st.ext.len() >= 3);
        assert_eq!(st.intent, Intent::default());
    }

    #[test]
    fn intent_to_sparql_renders_conditions() {
        let s = store();
        let laptop = s.lookup_iri(&format!("{EX}Laptop")).unwrap();
        let man = s.lookup_iri(&format!("{EX}manufacturer")).unwrap();
        let origin = s.lookup_iri(&format!("{EX}origin")).unwrap();
        let usa = s.lookup_iri(&format!("{EX}USA")).unwrap();
        let intent = Intent {
            seed: None,
            class: Some(laptop),
            conditions: vec![Condition {
                path: vec![PathStep::fwd(man), PathStep::fwd(origin)],
                constraint: Constraint::Value(usa),
            }],
        };
        let q = intent.to_sparql(&s);
        assert!(q.contains("?x <http://e/manufacturer> ?v1 ."), "{q}");
        assert!(q.contains("?v1 <http://e/origin> <http://e/USA> ."), "{q}");
        // and the query actually evaluates to the same extension
        let results = rdfa_sparql::Engine::builder(&s).build().run(&q).unwrap();
        assert_eq!(results.solutions().unwrap().len(), 1);
    }

    #[test]
    fn intent_range_filter_renders() {
        let s = store();
        let usb = s.lookup_iri(&format!("{EX}usb")).unwrap();
        let intent = Intent {
            seed: None,
            class: None,
            conditions: vec![Condition {
                path: vec![PathStep::fwd(usb)],
                constraint: Constraint::Range {
                    min: Some(Value::Int(2)),
                    max: Some(Value::Int(4)),
                },
            }],
        };
        let q = intent.to_sparql(&s);
        assert!(q.contains(">="), "{q}");
        assert!(q.contains("<="), "{q}");
    }

    #[test]
    fn describe_is_readable() {
        let s = store();
        let man = s.lookup_iri(&format!("{EX}manufacturer")).unwrap();
        let dell = s.lookup_iri(&format!("{EX}DELL")).unwrap();
        let intent = Intent {
            seed: None,
            class: None,
            conditions: vec![Condition {
                path: vec![PathStep::fwd(man)],
                constraint: Constraint::Value(dell),
            }],
        };
        assert_eq!(intent.describe(&s), "manufacturer=DELL");
    }
}
