//! Transition-marker computation — the algorithms of §5.4 that build the
//! left frame of the GUI (Fig 5.4, Fig 5.5).
//!
//! The per-state cost is dominated by one independent unit of work per
//! maximal class (the class-marker subtree) and per maximal property (the
//! facet's value counts + subproperty subtree). [`class_markers_opts`] and
//! [`property_facets_opts`] fan those units out across scoped threads —
//! work-stealing over a shared unit index, results merged back **by unit
//! slot** and then sorted by display name, so output is byte-identical to
//! the sequential computation regardless of thread count. A deadline can be
//! attached (like the SPARQL engine's evaluation limits); expiry aborts all
//! workers and surfaces as a [`FacetError`].

use crate::ops::{joins_path, joins_with_counts};
use crate::state::PathStep;
use crate::FacetError;
use rdfa_store::{ExtSet, Store, TermId};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Below this many triples the auto thread mode stays sequential — spawning
/// threads costs more than the whole computation.
const PAR_MIN_TRIPLES: usize = 4096;

/// Tuning knobs for marker computation, configured like the engine builder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FacetOptions {
    /// Worker threads; `0` = available parallelism.
    pub threads: usize,
    /// Abort marker computation when it runs longer than this.
    pub deadline: Option<Duration>,
}

impl FacetOptions {
    /// Worker-thread count for `n_units` independent units over a store of
    /// `store_len` triples. Auto mode (`threads == 0`) stays sequential on
    /// small stores; an explicit count is always honored (tests force the
    /// parallel path on tiny fixtures this way).
    fn effective_threads(&self, n_units: usize, store_len: usize) -> usize {
        let t = match self.threads {
            0 if store_len < PAR_MIN_TRIPLES => 1,
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            t => t,
        };
        t.min(n_units.max(1))
    }

    fn expiry(&self) -> Option<Instant> {
        self.deadline.map(|d| Instant::now() + d)
    }
}

fn deadline_error() -> FacetError {
    FacetError::new("marker computation exceeded the configured deadline")
}

fn expired(expiry: Option<Instant>) -> bool {
    expiry.is_some_and(|d| Instant::now() > d)
}

/// Run `n` independent units, possibly across scoped worker threads, and
/// return their results in unit order (deterministic merge). The first
/// failing unit stops all workers and its error is returned.
fn run_units<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<Option<T>>, FacetError>
where
    T: Send,
    F: Fn(usize) -> Result<Option<T>, FacetError> + Sync,
{
    /// Each worker's share: `(unit index, unit result)` pairs.
    type Partial<T> = Vec<(usize, Option<T>)>;
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(f(i)?);
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let workers = threads.min(n);
    let partials: Vec<Result<Partial<T>, FacetError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, stop, f) = (&next, &stop, &f);
                    scope.spawn(move || {
                        let mut mine: Partial<T> = Vec::new();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match f(i) {
                                Ok(v) => mine.push((i, v)),
                                Err(e) => {
                                    stop.store(true, Ordering::Relaxed);
                                    return Err(e);
                                }
                            }
                        }
                        Ok(mine)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("marker worker panicked"))
                .collect()
        });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for partial in partials {
        for (i, v) in partial? {
            slots[i] = v;
        }
    }
    Ok(slots)
}

/// A class-based transition marker: a class, its instance count restricted
/// to the current extension, and its direct subclasses (the hierarchical
/// layout of the reflexive-transitive reduction, §5.3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMarker {
    pub class: TermId,
    pub count: usize,
    pub children: Vec<ClassMarker>,
}

/// Compute the class-marker tree for an extension: maximal classes at the
/// top, subclasses nested, **zero-count classes pruned** (the never-empty
/// guarantee). Sequential, no deadline — see [`class_markers_opts`].
pub fn class_markers(store: &Store, ext: &ExtSet) -> Vec<ClassMarker> {
    class_markers_opts(store, ext, FacetOptions { threads: 1, deadline: None })
        .expect("no deadline configured")
}

/// [`class_markers`] with thread/deadline options; one unit of work per
/// maximal class.
pub fn class_markers_opts(
    store: &Store,
    ext: &ExtSet,
    opts: FacetOptions,
) -> Result<Vec<ClassMarker>, FacetError> {
    let expiry = opts.expiry();
    let roots = store.maximal_classes();
    let threads = opts.effective_threads(roots.len(), store.len());
    let mut dense = ext.clone();
    dense.densify(store.term_count());
    let slots = run_units(roots.len(), threads, |i| {
        build_class_marker(store, &dense, roots[i], &mut BTreeSet::new(), expiry)
    })?;
    let mut out: Vec<ClassMarker> = slots.into_iter().flatten().collect();
    out.sort_by_key(|m| store.term(m.class).display_name());
    Ok(out)
}

fn build_class_marker(
    store: &Store,
    ext: &ExtSet,
    class: TermId,
    seen: &mut BTreeSet<TermId>,
    expiry: Option<Instant>,
) -> Result<Option<ClassMarker>, FacetError> {
    if expired(expiry) {
        return Err(deadline_error());
    }
    if !seen.insert(class) {
        return Ok(None); // cycle guard
    }
    // merge-count the class's sorted instance run against the extension
    let wk = store.well_known();
    let count = store
        .subjects_for_po(wk.rdf_type, class)
        .filter(|&s| ext.contains(s))
        .count();
    let mut children: Vec<ClassMarker> = Vec::new();
    for sub in store.direct_subclasses(class) {
        if let Some(m) = build_class_marker(store, ext, sub, seen, expiry)? {
            children.push(m);
        }
    }
    children.sort_by_key(|m| store.term(m.class).display_name());
    seen.remove(&class);
    if count == 0 {
        return Ok(None);
    }
    Ok(Some(ClassMarker { class, count, children }))
}

/// A property facet: the property, its value markers (value, count), and
/// nested subproperties.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyFacet {
    pub property: TermId,
    /// Value markers: `(value, |Restrict(E, p : v)|)`, non-zero only.
    pub values: Vec<(TermId, usize)>,
    /// Direct subproperties with their own facets.
    pub children: Vec<PropertyFacet>,
}

impl PropertyFacet {
    /// Total number of distinct values offered.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }
}

/// Compute the property facets for an extension: one facet per maximal
/// property applicable to `E` (i.e. `Joins(E, p) ≠ ∅`), with per-value
/// counts (Fig 5.4 c) and the subproperty hierarchy. Sequential — see
/// [`property_facets_opts`].
pub fn property_facets(store: &Store, ext: &ExtSet) -> Vec<PropertyFacet> {
    property_facets_opts(store, ext, FacetOptions { threads: 1, deadline: None })
        .expect("no deadline configured")
}

/// [`property_facets`] with thread/deadline options; one unit of work per
/// maximal property.
pub fn property_facets_opts(
    store: &Store,
    ext: &ExtSet,
    opts: FacetOptions,
) -> Result<Vec<PropertyFacet>, FacetError> {
    let expiry = opts.expiry();
    let roots = store.maximal_properties();
    let threads = opts.effective_threads(roots.len(), store.len());
    let mut dense = ext.clone();
    dense.densify(store.term_count());
    let slots = run_units(roots.len(), threads, |i| {
        build_property_facet(store, &dense, roots[i], &mut BTreeSet::new(), expiry)
    })?;
    let mut out: Vec<PropertyFacet> = slots.into_iter().flatten().collect();
    out.sort_by_key(|f| store.term(f.property).display_name());
    Ok(out)
}

fn build_property_facet(
    store: &Store,
    ext: &ExtSet,
    property: TermId,
    seen: &mut BTreeSet<TermId>,
    expiry: Option<Instant>,
) -> Result<Option<PropertyFacet>, FacetError> {
    if expired(expiry) {
        return Err(deadline_error());
    }
    if !seen.insert(property) {
        return Ok(None);
    }
    let step = PathStep::fwd(property);
    let mut values = joins_with_counts(store, ext, step);
    values.sort_by(|a, b| {
        store
            .term(a.0)
            .display_name()
            .cmp(&store.term(b.0).display_name())
    });
    let mut children: Vec<PropertyFacet> = Vec::new();
    for sub in store.direct_subproperties(property) {
        if let Some(f) = build_property_facet(store, ext, sub, seen, expiry)? {
            children.push(f);
        }
    }
    seen.remove(&property);
    if values.is_empty() && children.is_empty() {
        return Ok(None);
    }
    Ok(Some(PropertyFacet { property, values, children }))
}

/// One class group of a grouped facet: `(class, total count, members)`.
pub type ValueGroup = (TermId, usize, Vec<(TermId, usize)>);

/// Value markers of one facet grouped under the values' classes —
/// Fig 5.4 (d): under `by hardDrive`, the drives appear nested below their
/// types (`SSD (2)` → `SSD1 (1)`, `SSD2 (1)`; `NVMe (1)` → `NVMe1 (1)`).
/// Values without a class are listed at the top level.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedValues {
    /// Class groups: `(class, members' total count, members)`.
    pub groups: Vec<ValueGroup>,
    /// Values with no (non-trivial) class.
    pub ungrouped: Vec<(TermId, usize)>,
}

/// Group a facet's value markers by the values' most specific classes
/// (Fig 5.4 d). Counts are `|Restrict(E, p : v)|` as in the flat facet.
pub fn grouped_values(store: &Store, ext: &ExtSet, property: TermId) -> GroupedValues {
    let step = PathStep::fwd(property);
    let values = joins_with_counts(store, ext, step);
    let mut groups: Vec<ValueGroup> = Vec::new();
    let mut ungrouped = Vec::new();
    for (v, n) in values {
        // most specific class: an entailed class with no entailed subclass
        // among the value's classes
        let classes = store.classes_of(v);
        let specific = classes
            .iter()
            .copied()
            .find(|&c| {
                let subs = store.subclass_closure(c);
                classes.iter().all(|&d| d == c || !subs.contains(&d))
            });
        match specific {
            Some(c) => {
                if let Some(slot) = groups.iter_mut().find(|(gc, _, _)| *gc == c) {
                    slot.1 += n;
                    slot.2.push((v, n));
                } else {
                    groups.push((c, n, vec![(v, n)]));
                }
            }
            None => ungrouped.push((v, n)),
        }
    }
    for (_, _, members) in &mut groups {
        members.sort_by(|a, b| {
            store.term(a.0).display_name().cmp(&store.term(b.0).display_name())
        });
    }
    groups.sort_by_key(|a| store.term(a.0).display_name());
    ungrouped.sort_by_key(|a| store.term(a.0).display_name());
    GroupedValues { groups, ungrouped }
}

/// Facets over **inverse** properties (`Pr⁻¹` of §5.3.1): for each property
/// with values *pointing at* the extension, the subjects linking in, with
/// counts. These power the entity-type switch (e.g. from companies to the
/// laptops they manufacture).
pub fn inverse_property_facets(store: &Store, ext: &ExtSet) -> Vec<PropertyFacet> {
    let mut dense = ext.clone();
    dense.densify(store.term_count());
    let mut out: Vec<PropertyFacet> = store
        .properties()
        .into_iter()
        .filter_map(|p| {
            let step = PathStep::inv(p);
            let mut values = joins_with_counts(store, &dense, step);
            if values.is_empty() {
                return None;
            }
            values.sort_by(|a, b| {
                store.term(a.0).display_name().cmp(&store.term(b.0).display_name())
            });
            Some(PropertyFacet { property: p, values, children: Vec::new() })
        })
        .collect();
    out.sort_by_key(|f| store.term(f.property).display_name());
    out
}

/// Path-expansion markers (Fig 5.5): the terminal marker set `M_k` of a
/// property path, with the count of extension elements reaching each value.
pub fn expand_path(
    store: &Store,
    ext: &ExtSet,
    path: &[PathStep],
) -> Vec<(TermId, usize)> {
    if path.len() == 1 {
        // single-step facet: one pass suffices
        let mut out = joins_with_counts(store, ext, path[0]);
        out.sort_by(|a, b| {
            store
                .term(a.0)
                .display_name()
                .cmp(&store.term(b.0).display_name())
        });
        return out;
    }
    let terminals = joins_path(store, ext, path);
    let mut out: Vec<(TermId, usize)> = terminals
        .iter()
        .map(|v| {
            let vset: ExtSet = [v].into_iter().collect();
            // the path is non-empty here, so restrict_path cannot fail
            let reachers = crate::ops::restrict_path(store, ext, path, &vset)
                .map_or(0, |e| e.len());
            (v, reachers)
        })
        .filter(|&(_, n)| n > 0)
        .collect();
    out.sort_by(|a, b| {
        store
            .term(a.0)
            .display_name()
            .cmp(&store.term(b.0).display_name())
    });
    out
}

/// Render a marker tree as indented text (used by the examples to reproduce
/// Fig 5.4).
pub fn render_class_markers(store: &Store, markers: &[ClassMarker], indent: usize) -> String {
    let mut out = String::new();
    for m in markers {
        out.push_str(&" ".repeat(indent * 2));
        out.push_str(&format!(
            "{} ({})\n",
            store.term(m.class).display_name(),
            m.count
        ));
        out.push_str(&render_class_markers(store, &m.children, indent + 1));
    }
    out
}

/// Render a grouped-values facet as indented text (Fig 5.4 d).
pub fn render_grouped_values(store: &Store, property: TermId, gv: &GroupedValues) -> String {
    let total: usize = gv
        .groups
        .iter()
        .map(|(_, n, _)| n)
        .chain(gv.ungrouped.iter().map(|(_, n)| n))
        .sum();
    let mut out = format!("by {} ({total})\n", store.term(property).display_name());
    for (class, n, members) in &gv.groups {
        out.push_str(&format!("  {} ({n})\n", store.term(*class).display_name()));
        for (v, m) in members {
            out.push_str(&format!("    {} ({m})\n", store.term(*v).display_name()));
        }
    }
    for (v, m) in &gv.ungrouped {
        out.push_str(&format!("  {} ({m})\n", store.term(*v).display_name()));
    }
    out
}

/// Render property facets as indented text (Fig 5.4 c).
pub fn render_property_facets(store: &Store, facets: &[PropertyFacet], indent: usize) -> String {
    let mut out = String::new();
    for f in facets {
        out.push_str(&" ".repeat(indent * 2));
        out.push_str(&format!(
            "by {} ({})\n",
            store.term(f.property).display_name(),
            f.value_count()
        ));
        for (v, n) in &f.values {
            out.push_str(&" ".repeat((indent + 1) * 2));
            out.push_str(&format!("{} ({})\n", store.term(*v).display_name(), n));
        }
        out.push_str(&render_property_facets(store, &f.children, indent + 1));
    }
    out
}

/// The seed `BTreeSet` marker computation, kept verbatim as the baseline for
/// differential tests and `facet_bench` (built on [`crate::ops::reference`]).
pub mod reference {
    use super::{ClassMarker, PropertyFacet};
    use crate::ops::reference::joins_with_counts;
    use crate::state::PathStep;
    use rdfa_store::{Store, TermId};
    use std::collections::BTreeSet;

    /// Seed class-marker computation: per-root recursion with
    /// `instances().intersection(ext)` counting.
    pub fn class_markers(store: &Store, ext: &BTreeSet<TermId>) -> Vec<ClassMarker> {
        let mut roots: Vec<ClassMarker> = store
            .maximal_classes()
            .into_iter()
            .filter_map(|c| build_class_marker(store, ext, c, &mut BTreeSet::new()))
            .collect();
        roots.sort_by_key(|m| store.term(m.class).display_name());
        roots
    }

    fn build_class_marker(
        store: &Store,
        ext: &BTreeSet<TermId>,
        class: TermId,
        seen: &mut BTreeSet<TermId>,
    ) -> Option<ClassMarker> {
        if !seen.insert(class) {
            return None;
        }
        let count = store.instances(class).intersection(ext).count();
        let mut children: Vec<ClassMarker> = store
            .direct_subclasses(class)
            .into_iter()
            .filter_map(|sub| build_class_marker(store, ext, sub, seen))
            .collect();
        children.sort_by_key(|m| store.term(m.class).display_name());
        seen.remove(&class);
        if count == 0 {
            return None;
        }
        Some(ClassMarker { class, count, children })
    }

    /// Seed property-facet computation over `BTreeMap` counting.
    pub fn property_facets(store: &Store, ext: &BTreeSet<TermId>) -> Vec<PropertyFacet> {
        let mut out: Vec<PropertyFacet> = store
            .maximal_properties()
            .into_iter()
            .filter_map(|p| build_property_facet(store, ext, p, &mut BTreeSet::new()))
            .collect();
        out.sort_by_key(|f| store.term(f.property).display_name());
        out
    }

    fn build_property_facet(
        store: &Store,
        ext: &BTreeSet<TermId>,
        property: TermId,
        seen: &mut BTreeSet<TermId>,
    ) -> Option<PropertyFacet> {
        if !seen.insert(property) {
            return None;
        }
        let step = PathStep::fwd(property);
        let mut values: Vec<(TermId, usize)> =
            joins_with_counts(store, ext, step).into_iter().collect();
        values.sort_by(|a, b| {
            store
                .term(a.0)
                .display_name()
                .cmp(&store.term(b.0).display_name())
        });
        let children: Vec<PropertyFacet> = store
            .direct_subproperties(property)
            .into_iter()
            .filter_map(|sub| build_property_facet(store, ext, sub, seen))
            .collect();
        seen.remove(&property);
        if values.is_empty() && children.is_empty() {
            return None;
        }
        Some(PropertyFacet { property, values, children })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://e/";

    /// The running-example instance data of Fig 5.3 (abridged).
    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               ex:Laptop rdfs:subClassOf ex:Product .
               ex:HDType rdfs:subClassOf ex:Product .
               ex:SSD rdfs:subClassOf ex:HDType .
               ex:NVMe rdfs:subClassOf ex:HDType .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:hardDrive ex:ssd1 ; ex:usb 2 .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:hardDrive ex:ssd2 ; ex:usb 2 .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:Lenovo ; ex:hardDrive ex:nvme1 ; ex:usb 4 .
               ex:ssd1 a ex:SSD . ex:ssd2 a ex:SSD . ex:nvme1 a ex:NVMe .
               ex:DELL ex:origin ex:USA . ex:Lenovo ex:origin ex:China .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup_iri(&format!("{EX}{local}")).unwrap()
    }

    fn all(s: &Store) -> ExtSet {
        ExtSet::from_sorted_iter(s.iter_explicit().map(|[x, _, _]| x))
    }

    fn laptops(s: &Store) -> ExtSet {
        s.instances_set(id(s, "Laptop"))
    }

    #[test]
    fn class_tree_matches_fig_5_4() {
        let s = store();
        let markers = class_markers(&s, &all(&s));
        let product = markers.iter().find(|m| m.class == id(&s, "Product")).unwrap();
        assert_eq!(product.count, 6); // 3 laptops + 3 drives
        let names: Vec<String> = product
            .children
            .iter()
            .map(|c| s.term(c.class).display_name())
            .collect();
        assert_eq!(names, vec!["HDType", "Laptop"]);
        let hdtype = &product.children[0];
        assert_eq!(hdtype.count, 3);
        assert_eq!(hdtype.children.len(), 2); // SSD (2), NVMe (1)
    }

    #[test]
    fn zero_count_classes_pruned() {
        let s = store();
        let markers = class_markers(&s, &laptops(&s));
        // within the laptop extension, HDType has no instances
        let product = markers.iter().find(|m| m.class == id(&s, "Product")).unwrap();
        assert!(product.children.iter().all(|c| c.class != id(&s, "HDType")));
    }

    #[test]
    fn property_facets_with_counts() {
        let s = store();
        let facets = property_facets(&s, &laptops(&s));
        let man = facets
            .iter()
            .find(|f| f.property == id(&s, "manufacturer"))
            .unwrap();
        assert_eq!(man.values.len(), 2);
        let dell = man.values.iter().find(|(v, _)| *v == id(&s, "DELL")).unwrap();
        assert_eq!(dell.1, 2);
        // usb facet counts: 2→2 laptops, 4→1 laptop
        let usb = facets.iter().find(|f| f.property == id(&s, "usb")).unwrap();
        assert_eq!(usb.values.iter().map(|(_, n)| n).sum::<usize>(), 3);
    }

    #[test]
    fn never_empty_guarantee() {
        let s = store();
        for f in property_facets(&s, &laptops(&s)) {
            for (_, n) in &f.values {
                assert!(*n > 0);
            }
        }
    }

    /// Parallel computation (explicit thread count forces the threaded path
    /// even on this tiny fixture) yields byte-identical output, and both
    /// agree with the seed reference implementation.
    #[test]
    fn parallel_matches_sequential_and_reference() {
        let s = store();
        let ext = all(&s);
        let ext_ref = ext.to_btree_set();
        let seq_c = class_markers(&s, &ext);
        let seq_f = property_facets(&s, &ext);
        for threads in [2, 4, 8] {
            let opts = FacetOptions { threads, deadline: None };
            assert_eq!(class_markers_opts(&s, &ext, opts).unwrap(), seq_c, "{threads} threads");
            assert_eq!(property_facets_opts(&s, &ext, opts).unwrap(), seq_f, "{threads} threads");
        }
        assert_eq!(reference::class_markers(&s, &ext_ref), seq_c);
        assert_eq!(reference::property_facets(&s, &ext_ref), seq_f);
    }

    /// An already-expired deadline aborts with an error, sequentially and in
    /// parallel.
    #[test]
    fn deadline_expiry_errors() {
        let s = store();
        let ext = all(&s);
        for threads in [1, 4] {
            let opts = FacetOptions { threads, deadline: Some(Duration::ZERO) };
            let err = class_markers_opts(&s, &ext, opts).unwrap_err();
            assert!(err.message.contains("deadline"), "{err}");
            assert!(property_facets_opts(&s, &ext, opts).is_err());
        }
    }

    #[test]
    fn path_expansion_markers_fig_5_5() {
        let s = store();
        let path = [PathStep::fwd(id(&s, "manufacturer")), PathStep::fwd(id(&s, "origin"))];
        let markers = expand_path(&s, &laptops(&s), &path);
        assert_eq!(markers.len(), 2);
        let usa = markers.iter().find(|(v, _)| *v == id(&s, "USA")).unwrap();
        assert_eq!(usa.1, 2); // two DELL laptops reach USA
    }

    #[test]
    fn grouped_values_match_fig_5_4_d() {
        let s = store();
        let gv = grouped_values(&s, &laptops(&s), id(&s, "hardDrive"));
        // Fig 5.4 (d): SSD group with 2 members, NVMe group with 1
        assert_eq!(gv.groups.len(), 2);
        let ssd = gv
            .groups
            .iter()
            .find(|(c, _, _)| *c == id(&s, "SSD"))
            .expect("SSD group");
        assert_eq!(ssd.1, 2);
        assert_eq!(ssd.2.len(), 2);
        let nvme = gv
            .groups
            .iter()
            .find(|(c, _, _)| *c == id(&s, "NVMe"))
            .expect("NVMe group");
        assert_eq!(nvme.1, 1);
        assert!(gv.ungrouped.is_empty());
    }

    #[test]
    fn grouped_values_handles_untyped() {
        let s = store();
        // manufacturer values DELL/Lenovo have no classes in this fixture
        let gv = grouped_values(&s, &laptops(&s), id(&s, "manufacturer"));
        assert!(gv.groups.is_empty());
        assert_eq!(gv.ungrouped.len(), 2);
    }

    #[test]
    fn inverse_facets_switch_entity_type() {
        let s = store();
        // focus on companies; the inverse manufacturer facet exposes the
        // products made by each
        let companies: ExtSet = [id(&s, "DELL"), id(&s, "Lenovo")].into_iter().collect();
        let inv = inverse_property_facets(&s, &companies);
        let man = inv
            .iter()
            .find(|f| f.property == id(&s, "manufacturer"))
            .expect("inverse manufacturer facet");
        // laptops pointing at the two companies
        assert_eq!(man.values.len(), 3);
        for &(_, n) in &man.values {
            assert!(n > 0);
        }
    }

    #[test]
    fn rendering_contains_counts() {
        let s = store();
        let text = render_class_markers(&s, &class_markers(&s, &all(&s)), 0);
        assert!(text.contains("Product (6)"), "{text}");
        assert!(text.contains("SSD (2)"), "{text}");
        let ftext = render_property_facets(&s, &property_facets(&s, &laptops(&s)), 0);
        assert!(ftext.contains("by manufacturer"), "{ftext}");
        assert!(ftext.contains("DELL (2)"), "{ftext}");
    }
}
