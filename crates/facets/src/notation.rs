//! SPARQL expressions of the model's notations — Tables 5.1 and 5.2.
//!
//! The paper's implementation section shows how each primitive of the formal
//! model (`inst(c)`, `Joins(E, p)`, `Restrict(E, p:v)`, count information,
//! maximal classes, …) is expressible as a SPARQL query, assuming the
//! current state's extension is stored in a temporary class `temp`. This
//! module generates those queries, enabling a *SPARQL-only* evaluation of
//! the interaction (the alternative architecture the dissertation contrasts
//! with the in-memory algorithms of §5.4), and a store helper that
//! materializes the temp class.
//!
//! The builders splice caller-supplied IRIs into `<…>` IRIREF tokens, so
//! every IRI is validated first: an embedded `>` (or a space, quote, or
//! control character) would otherwise terminate the token early and let the
//! remainder be parsed as query syntax — the SPARQL analogue of SQL
//! injection. Invalid IRIs are rejected with a [`FacetError`].

use crate::FacetError;
use rdfa_model::Term;
use rdfa_store::{ExtSet, Store};

/// The temporary class IRI holding the current extension (Table 5.1).
pub const TEMP_CLASS: &str = "urn:rdfa:temp";

/// Check that `iri` can be safely embedded in a SPARQL `<…>` IRIREF token:
/// non-empty and free of the characters the IRIREF production forbids
/// (`< > " { } | ^ \` + backtick, spaces, and control characters).
pub fn validate_iri(iri: &str) -> Result<(), FacetError> {
    if iri.is_empty() {
        return Err(FacetError::new("empty IRI in query builder"));
    }
    if let Some(bad) = iri
        .chars()
        .find(|c| matches!(c, '<' | '>' | '"' | '{' | '}' | '|' | '^' | '`' | '\\' | ' ') || c.is_control())
    {
        return Err(FacetError::new(format!(
            "IRI {iri:?} contains {bad:?}, which is not allowed inside a SPARQL IRIREF"
        )));
    }
    Ok(())
}

/// Validate a term that will be rendered into a query: IRI terms go through
/// [`validate_iri`]; literals and blank nodes render through the model's
/// own escaping and need no check here.
fn validate_term(term: &Term) -> Result<(), FacetError> {
    match term.as_iri() {
        Some(iri) => validate_iri(iri),
        None => Ok(()),
    }
}

/// Materialize the extension as `?x rdf:type <temp>` triples in a copy of
/// the store — the storage convention of Table 5.1.
pub fn store_with_temp(store: &Store, extension: &ExtSet) -> Store {
    let mut out = store.clone();
    let temp = out.intern(&Term::iri(TEMP_CLASS));
    let wk = out.well_known();
    for e in extension {
        out.insert_ids([e, wk.rdf_type, temp]);
    }
    out.materialize_inference();
    out
}

/// `inst(c)` — the instances of a class.
pub fn q_instances(class_iri: &str) -> Result<String, FacetError> {
    validate_iri(class_iri)?;
    Ok(format!(
        "SELECT DISTINCT ?x WHERE {{ ?x <{t}> <{class_iri}> . }}",
        t = rdfa_model::vocab::rdf::TYPE
    ))
}

/// `E` — the current extension (the temp class contents).
pub fn q_extension() -> String {
    q_instances(TEMP_CLASS).expect("TEMP_CLASS is a valid IRI")
}

/// `Joins(E, p)` — the values linked to the extension by `p`.
pub fn q_joins(property_iri: &str) -> Result<String, FacetError> {
    validate_iri(property_iri)?;
    Ok(format!(
        "SELECT DISTINCT ?v WHERE {{ ?x <{t}> <{temp}> . ?x <{property_iri}> ?v . }}",
        t = rdfa_model::vocab::rdf::TYPE,
        temp = TEMP_CLASS
    ))
}

/// `Joins(E, p)` with count information — the value markers of the facet
/// (the `count(E, p, v)` column of Table 5.1).
pub fn q_joins_with_counts(property_iri: &str) -> Result<String, FacetError> {
    validate_iri(property_iri)?;
    Ok(format!(
        "SELECT ?v (COUNT(DISTINCT ?x) AS ?count) WHERE {{ ?x <{t}> <{temp}> . ?x <{property_iri}> ?v . }} GROUP BY ?v",
        t = rdfa_model::vocab::rdf::TYPE,
        temp = TEMP_CLASS
    ))
}

/// `Restrict(E, p : v)` — the extension restricted by a value click.
pub fn q_restrict_value(property_iri: &str, value: &Term) -> Result<String, FacetError> {
    validate_iri(property_iri)?;
    validate_term(value)?;
    Ok(format!(
        "SELECT DISTINCT ?x WHERE {{ ?x <{t}> <{temp}> . ?x <{property_iri}> {value} . }}",
        t = rdfa_model::vocab::rdf::TYPE,
        temp = TEMP_CLASS
    ))
}

/// `Restrict(E, c)` — the extension restricted to instances of a class.
pub fn q_restrict_class(class_iri: &str) -> Result<String, FacetError> {
    validate_iri(class_iri)?;
    Ok(format!(
        "SELECT DISTINCT ?x WHERE {{ ?x <{t}> <{temp}> . ?x <{t}> <{class_iri}> . }}",
        t = rdfa_model::vocab::rdf::TYPE,
        temp = TEMP_CLASS
    ))
}

/// The applicable classes with counts over the extension (the class facet of
/// Table 5.2).
pub fn q_classes_with_counts() -> String {
    format!(
        "SELECT ?c (COUNT(DISTINCT ?x) AS ?count) WHERE {{ ?x <{t}> <{temp}> . ?x <{t}> ?c . }} GROUP BY ?c",
        t = rdfa_model::vocab::rdf::TYPE,
        temp = TEMP_CLASS
    )
}

/// Path expansion markers `Joins(Joins(E, p1), p2)` with counts (Fig 5.5 via
/// a SPARQL property path).
pub fn q_path_markers(path_iris: &[&str]) -> Result<String, FacetError> {
    if path_iris.is_empty() {
        return Err(FacetError::new("empty property path in query builder"));
    }
    for iri in path_iris {
        validate_iri(iri)?;
    }
    let path = path_iris
        .iter()
        .map(|p| format!("<{p}>"))
        .collect::<Vec<_>>()
        .join("/");
    Ok(format!(
        "SELECT ?v (COUNT(DISTINCT ?x) AS ?count) WHERE {{ ?x <{t}> <{temp}> . ?x {path} ?v . }} GROUP BY ?v",
        t = rdfa_model::vocab::rdf::TYPE,
        temp = TEMP_CLASS
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::state::PathStep;
    use rdfa_sparql::Engine;
    use std::collections::BTreeSet;

    const EX: &str = "http://e/";

    fn store() -> (Store, ExtSet) {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:Lenovo .
               ex:DELL ex:origin ex:USA . ex:Lenovo ex:origin ex:China .
            "#
        ))
        .unwrap();
        let laptops = s.instances_set(s.lookup_iri(&format!("{EX}Laptop")).unwrap());
        (s, laptops)
    }

    /// Table 5.2's claim: the SPARQL-only evaluation of each notation agrees
    /// with the in-memory algorithms of §5.4.
    #[test]
    fn sparql_only_joins_agree_with_ops() {
        let (s, ext) = store();
        let temp_store = store_with_temp(&s, &ext);
        let engine = Engine::builder(&temp_store).build();
        let man = format!("{EX}manufacturer");
        let sols = engine.run(&q_joins(&man).unwrap()).unwrap();
        let via_sparql: BTreeSet<String> = sols
            .solutions()
            .unwrap()
            .column("v")
            .map(|t| t.display_name())
            .collect();
        let step = PathStep::fwd(s.lookup_iri(&man).unwrap());
        let via_ops: BTreeSet<String> = ops::joins(&s, &ext, step)
            .iter()
            .map(|id| s.term(id).display_name())
            .collect();
        assert_eq!(via_sparql, via_ops);
    }

    #[test]
    fn sparql_only_counts_agree() {
        let (s, ext) = store();
        let temp_store = store_with_temp(&s, &ext);
        let engine = Engine::builder(&temp_store).build();
        let sols = engine
            .run(&q_joins_with_counts(&format!("{EX}manufacturer")).unwrap())
            .unwrap();
        let rows = sols.into_solutions().unwrap();
        let get = |name: &str| -> i64 {
            rows.rows()
                .iter()
                .find(|r| r[0].as_ref().unwrap().display_name() == name)
                .and_then(|r| r[1].as_ref())
                .map(|t| t.display_name().parse().unwrap())
                .unwrap()
        };
        assert_eq!(get("DELL"), 2);
        assert_eq!(get("Lenovo"), 1);
    }

    #[test]
    fn sparql_only_restrict_agrees() {
        let (s, ext) = store();
        let temp_store = store_with_temp(&s, &ext);
        let engine = Engine::builder(&temp_store).build();
        let q = q_restrict_value(&format!("{EX}manufacturer"), &Term::iri(format!("{EX}DELL")))
            .unwrap();
        let n = engine.run(&q).unwrap().solutions().unwrap().len();
        assert_eq!(n, 2);
    }

    #[test]
    fn sparql_only_path_markers_agree() {
        let (s, ext) = store();
        let temp_store = store_with_temp(&s, &ext);
        let engine = Engine::builder(&temp_store).build();
        let man = format!("{EX}manufacturer");
        let origin = format!("{EX}origin");
        let sols = engine.run(&q_path_markers(&[&man, &origin]).unwrap()).unwrap();
        let rows = sols.into_solutions().unwrap();
        assert_eq!(rows.len(), 2);
        // agree with the in-memory expansion
        let path = [
            PathStep::fwd(s.lookup_iri(&man).unwrap()),
            PathStep::fwd(s.lookup_iri(&origin).unwrap()),
        ];
        let markers = crate::markers::expand_path(&s, &ext, &path);
        assert_eq!(markers.len(), rows.len());
    }

    #[test]
    fn temp_class_does_not_leak_into_source() {
        let (s, ext) = store();
        let n_before = s.len();
        let _ = store_with_temp(&s, &ext);
        assert_eq!(s.len(), n_before);
    }

    /// The injection the validation exists to stop: an IRI with an embedded
    /// `>` would close the IRIREF token and smuggle arbitrary query text.
    #[test]
    fn builders_reject_malformed_iris() {
        let attack = "http://e/x> ?y . } UNION { ?a ?b ?c";
        assert!(q_instances(attack).is_err());
        assert!(q_joins(attack).is_err());
        assert!(q_joins_with_counts(attack).is_err());
        assert!(q_restrict_class(attack).is_err());
        assert!(q_restrict_value(attack, &Term::iri("http://e/v")).is_err());
        assert!(q_restrict_value("http://e/p", &Term::iri(attack)).is_err());
        assert!(q_path_markers(&["http://e/p", attack]).is_err());
        assert!(q_path_markers(&[]).is_err());
        for bad in ["", "http://e/a b", "http://e/a\"b", "http://e/a\nb", "http://e/a\u{7f}b"] {
            assert!(validate_iri(bad).is_err(), "{bad:?} accepted");
        }
        assert!(validate_iri("http://e/ok#frag?q=1").is_ok());
    }
}
