//! # rdfa-facets — the core model for faceted search over RDF
//!
//! Implements the general interaction model of \[114\] that the paper builds
//! on (§5.2.1, §5.3): the state space of a faceted-exploration session, where
//! each **state** has an *extension* (the set of resources in focus) and an
//! *intention* (a query whose answer is the extension), and **transitions**
//! are user-clickable markers:
//!
//! - *class-based* markers — the (maximal) classes with their instance
//!   counts, expandable along `rdfs:subClassOf` (Fig 5.4 a/b);
//! - *property-based* markers — for each applicable property, its joined
//!   values with counts (Fig 5.4 c);
//! - *path-expansion* markers — property paths `p1/p2/…/pk` whose terminal
//!   value sets `M_k` can be clicked, with the selection propagated back via
//!   `M'_i = Restrict(M_i, p_{i+1} : M'_{i+1})` (Eq. 5.1, Fig 5.5);
//! - *value range* filters (the `⧩` button of §5.1, Example 3).
//!
//! The model guarantees **no empty results**: only markers with non-zero
//! counts are offered, so every reachable state has a non-empty extension.
//!
//! ```
//! use rdfa_store::Store;
//! use rdfa_facets::FacetedSession;
//!
//! let mut store = Store::new();
//! store.load_turtle(r#"
//!   @prefix ex: <http://example.org/> .
//!   ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL .
//!   ex:l2 a ex:Laptop ; ex:manufacturer ex:Lenovo .
//! "#).unwrap();
//! let mut session = FacetedSession::start(&store);
//! let laptop = store.lookup_iri("http://example.org/Laptop").unwrap();
//! session.select_class(laptop).unwrap();
//! assert_eq!(session.extension().len(), 2);
//! ```

pub mod buckets;
pub mod cache;
pub mod markers;
pub mod notation;
pub mod ops;
pub mod session;
pub mod state;

pub use buckets::{bucket_values, Bucket};
pub use cache::{FacetCache, FacetCacheStats, DEFAULT_FACET_CACHE_ENTRIES};
pub use markers::{
    class_markers, class_markers_opts, expand_path, grouped_values, inverse_property_facets,
    property_facets, property_facets_opts, ClassMarker, FacetOptions, GroupedValues,
    PropertyFacet,
};
pub use ops::{joins, joins_path, restrict_class, restrict_path, restrict_value};
pub use rdfa_store::ExtSet;
pub use session::FacetedSession;
pub use state::{Condition, Constraint, Intent, PathStep, State};

/// Errors from session operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FacetError {
    pub message: String,
}

impl FacetError {
    pub fn new(message: impl Into<String>) -> Self {
        FacetError { message: message.into() }
    }
}

impl std::fmt::Display for FacetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "facet error: {}", self.message)
    }
}

impl std::error::Error for FacetError {}
