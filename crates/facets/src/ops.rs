//! The `Restrict` and `Joins` operators of §5.3.1 — the algebra underlying
//! all transitions.
//!
//! The operators work on sorted [`ExtSet`] extensions and evaluate as
//! **merge-joins over sorted posting runs** (the store's POS/SPO
//! permutations, fused across the explicit and inferred layers), instead of
//! probing the index once per extension element. Each operator picks between
//! two physical plans:
//!
//! - *seek*: per extension element, range-scan just that element's `p`-edges
//!   (wins when the extension is far smaller than the predicate's run);
//! - *scan*: one pass over the predicate's whole posting run, testing the
//!   other side against the extension (O(1) once the extension is densified
//!   to a bitmap).
//!
//! The old `BTreeSet`-based implementations are preserved verbatim in
//! [`reference`] as the differential-testing and benchmarking baseline.

use crate::state::PathStep;
use crate::FacetError;
use rdfa_model::Value;
use rdfa_store::{CountKey, ExtSet, Store, TermId};

/// A posting run this many times larger than the extension makes per-element
/// seeks cheaper than one scan (mirrors the store kernel's heuristic).
const SEEK_FACTOR: usize = 32;

/// Decide seek-vs-scan for an operator touching `p` with an `ext_len`-sized
/// extension, by probing the run length only up to the break-even point.
fn prefer_seek(store: &Store, p: TermId, ext_len: usize) -> bool {
    let budget = ext_len.saturating_mul(SEEK_FACTOR).saturating_add(1);
    store.predicate_len_capped(p, budget) >= budget
}

/// A clone of `ext` densified to a bitmap when worthwhile — scans test
/// membership once per posting-run edge, so the O(1) probe pays for itself.
fn densified(store: &Store, ext: &ExtSet) -> ExtSet {
    let mut dense = ext.clone();
    dense.densify(store.term_count());
    dense
}

/// `Restrict(E, p : v)` — elements of `E` with a `p`-edge to `v`
/// (direction-aware: an inverse step follows `p` backwards). A galloping
/// intersection of the extension with the edge's posting run.
pub fn restrict_value(store: &Store, ext: &ExtSet, step: PathStep, v: TermId) -> ExtSet {
    let run = if step.inverse {
        ExtSet::from_sorted_iter(store.objects_for_sp(v, step.prop))
    } else {
        ExtSet::from_sorted_iter(store.subjects_for_po(step.prop, v))
    };
    run.intersect(ext)
}

/// `Restrict(E, p : vset)` — elements of `E` with a `p`-edge to any of `vset`.
pub fn restrict_value_set(
    store: &Store,
    ext: &ExtSet,
    step: PathStep,
    vset: &ExtSet,
) -> ExtSet {
    if prefer_seek(store, step.prop, ext.len()) {
        // seek each element's own edges; output stays in extension order
        let vdense = densified(store, vset);
        ExtSet::from_sorted_iter(ext.iter().filter(|&e| {
            if step.inverse {
                store.subjects_for_po(step.prop, e).any(|s| vdense.contains(s))
            } else {
                store.objects_for_sp(e, step.prop).any(|o| vdense.contains(o))
            }
        }))
    } else {
        let edense = densified(store, ext);
        let vdense = densified(store, vset);
        if step.inverse {
            // pairs (o, s): edge s→o with s ∈ vset keeps o — ascending by o
            ExtSet::from_sorted_iter(
                store
                    .predicate_pairs(step.prop)
                    .filter(|&(o, s)| vdense.contains(s) && edense.contains(o))
                    .map(|(o, _)| o),
            )
        } else {
            store
                .predicate_pairs(step.prop)
                .filter(|&(o, s)| vdense.contains(o) && edense.contains(s))
                .map(|(_, s)| s)
                .collect()
        }
    }
}

/// `Restrict(E, c)` — elements of `E` that are (entailed) instances of `c`:
/// the class's sorted instance run intersected with the extension.
pub fn restrict_class(store: &Store, ext: &ExtSet, c: TermId) -> ExtSet {
    store.instances_set(c).intersect(ext)
}

/// `Joins(E, p)` — values linked to elements of `E` by `p` (§5.3.1).
pub fn joins(store: &Store, ext: &ExtSet, step: PathStep) -> ExtSet {
    if prefer_seek(store, step.prop, ext.len()) {
        let mut out: Vec<TermId> = Vec::new();
        for e in ext.iter() {
            if step.inverse {
                out.extend(store.subjects_for_po(step.prop, e));
            } else {
                out.extend(store.objects_for_sp(e, step.prop));
            }
        }
        out.into_iter().collect()
    } else {
        let edense = densified(store, ext);
        if step.inverse {
            store
                .predicate_pairs(step.prop)
                .filter(|&(o, _)| edense.contains(o))
                .map(|(_, s)| s)
                .collect()
        } else {
            // ascending by object already: dedup happens in from_sorted_iter
            ExtSet::from_sorted_iter(
                store
                    .predicate_pairs(step.prop)
                    .filter(|&(_, s)| edense.contains(s))
                    .map(|(o, _)| o),
            )
        }
    }
}

/// `Joins(E, p)` together with the marker counts `|Restrict(E, p : v)|` for
/// every value — the computation behind every facet's value list (Fig 5.4 c),
/// delegated to the store's unified counting kernel. Ascending by value id
/// (the same order the old `BTreeMap` yielded).
pub fn joins_with_counts(
    store: &Store,
    ext: &ExtSet,
    step: PathStep,
) -> Vec<(TermId, usize)> {
    let key = if step.inverse { CountKey::Subject } else { CountKey::Object };
    store.edge_counts(step.prop, key, Some(ext))
}

/// `Joins` along a path: `Joins(…Joins(E, p1)…, pk)` — the marker set `M_k`
/// of §5.3.2. The frontier is moved, never cloned.
pub fn joins_path(store: &Store, ext: &ExtSet, path: &[PathStep]) -> ExtSet {
    let mut frontier: Option<ExtSet> = None;
    for &step in path {
        let next = joins(store, frontier.as_ref().unwrap_or(ext), step);
        let empty = next.is_empty();
        frontier = Some(next);
        if empty {
            break;
        }
    }
    frontier.unwrap_or_else(|| ext.clone())
}

/// Restrict `E` through a path to a chosen terminal value — the
/// back-propagation of Eq. 5.1: `M'_k = {v}`, `M'_i = Restrict(M_i, p_{i+1} :
/// M'_{i+1})`, extension `Restrict(E, p_1 : M'_1)`.
///
/// Errors on an empty path (there is no first step to restrict through).
pub fn restrict_path(
    store: &Store,
    ext: &ExtSet,
    path: &[PathStep],
    terminal: &ExtSet,
) -> Result<ExtSet, FacetError> {
    if path.is_empty() {
        return Err(FacetError::new("restrict_path needs a non-empty path"));
    }
    // compute marker sets M_1 … M_{k-1}
    let mut markers: Vec<ExtSet> = Vec::with_capacity(path.len());
    for (i, &step) in path.iter().enumerate() {
        let frontier = if i == 0 { ext } else { &markers[i - 1] };
        markers.push(joins(store, frontier, step));
    }
    // back-propagate M'_i
    let mut restricted = terminal.clone();
    for i in (0..path.len() - 1).rev() {
        restricted = restrict_value_set(store, &markers[i], path[i + 1], &restricted);
    }
    Ok(restrict_value_set(store, ext, path[0], &restricted))
}

/// Restrict `E` by a numeric/date range on a path's terminal value: elements
/// with at least one terminal value `v` with `min ≤ v ≤ max` (either bound
/// optional).
pub fn restrict_range(
    store: &Store,
    ext: &ExtSet,
    path: &[PathStep],
    min: Option<&Value>,
    max: Option<&Value>,
) -> ExtSet {
    let in_range = |id: TermId| -> bool {
        let v = Value::from_term(store.term(id));
        let ge_min = min.is_none_or(|m| {
            matches!(v.compare(m), Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal))
        });
        let le_max = max.is_none_or(|m| {
            matches!(v.compare(m), Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal))
        });
        ge_min && le_max
    };
    // terminal values that qualify
    let terminal =
        ExtSet::from_sorted_iter(joins_path(store, ext, path).iter().filter(|&t| in_range(t)));
    if terminal.is_empty() {
        return ExtSet::new();
    }
    if path.len() == 1 {
        restrict_value_set(store, ext, path[0], &terminal)
    } else {
        restrict_path(store, ext, path, &terminal)
            .expect("path has at least two steps")
    }
}

/// The seed `BTreeSet` implementations of every operator, kept verbatim as
/// the reference semantics: differential tests check the merge-join operators
/// against these on random graphs, and `facet_bench` uses them as the
/// before-optimization baseline.
pub mod reference {
    use crate::state::PathStep;
    use rdfa_model::Value;
    use rdfa_store::{Store, TermId};
    use std::collections::BTreeSet;

    /// `Restrict(E, p : v)` by per-element entailed-membership probes.
    pub fn restrict_value(
        store: &Store,
        ext: &BTreeSet<TermId>,
        step: PathStep,
        v: TermId,
    ) -> BTreeSet<TermId> {
        ext.iter()
            .copied()
            .filter(|&e| {
                if step.inverse {
                    store.contains([v, step.prop, e])
                } else {
                    store.contains([e, step.prop, v])
                }
            })
            .collect()
    }

    /// `Restrict(E, p : vset)` by per-element edge enumeration.
    pub fn restrict_value_set(
        store: &Store,
        ext: &BTreeSet<TermId>,
        step: PathStep,
        vset: &BTreeSet<TermId>,
    ) -> BTreeSet<TermId> {
        ext.iter()
            .copied()
            .filter(|&e| joins_step(store, e, step).any(|x| vset.contains(&x)))
            .collect()
    }

    /// `Restrict(E, c)` by per-element `rdf:type` probes.
    pub fn restrict_class(store: &Store, ext: &BTreeSet<TermId>, c: TermId) -> BTreeSet<TermId> {
        let wk = store.well_known();
        ext.iter()
            .copied()
            .filter(|&e| store.contains([e, wk.rdf_type, c]))
            .collect()
    }

    /// One-step joins from a single node.
    fn joins_step(store: &Store, e: TermId, step: PathStep) -> impl Iterator<Item = TermId> + '_ {
        let (s, o) = if step.inverse { (None, Some(e)) } else { (Some(e), None) };
        store
            .matching(s, Some(step.prop), o)
            .map(move |[s2, _, o2]| if step.inverse { s2 } else { o2 })
    }

    /// `Joins(E, p)` by per-element index probes.
    pub fn joins(store: &Store, ext: &BTreeSet<TermId>, step: PathStep) -> BTreeSet<TermId> {
        let mut out = BTreeSet::new();
        for &e in ext {
            out.extend(joins_step(store, e, step));
        }
        out
    }

    /// `Joins(E, p)` with per-value counts via `BTreeMap` accumulation.
    pub fn joins_with_counts(
        store: &Store,
        ext: &BTreeSet<TermId>,
        step: PathStep,
    ) -> std::collections::BTreeMap<TermId, usize> {
        let mut counts = std::collections::BTreeMap::new();
        for &e in ext {
            for v in joins_step(store, e, step) {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Path joins with a per-step frontier clone (the seed behaviour).
    pub fn joins_path(
        store: &Store,
        ext: &BTreeSet<TermId>,
        path: &[PathStep],
    ) -> BTreeSet<TermId> {
        let mut frontier = ext.clone();
        for &step in path {
            frontier = joins(store, &frontier, step);
            if frontier.is_empty() {
                break;
            }
        }
        frontier
    }

    /// Back-propagating path restriction (Eq. 5.1), seed implementation.
    /// Callers must pass a non-empty path.
    pub fn restrict_path(
        store: &Store,
        ext: &BTreeSet<TermId>,
        path: &[PathStep],
        terminal: &BTreeSet<TermId>,
    ) -> BTreeSet<TermId> {
        assert!(!path.is_empty(), "restrict_path needs a non-empty path");
        let mut markers: Vec<BTreeSet<TermId>> = Vec::with_capacity(path.len());
        let mut frontier = ext.clone();
        for &step in path {
            frontier = joins(store, &frontier, step);
            markers.push(frontier.clone());
        }
        let mut restricted = terminal.clone();
        for i in (0..path.len() - 1).rev() {
            restricted = restrict_value_set(store, &markers[i], path[i + 1], &restricted);
        }
        restrict_value_set(store, ext, path[0], &restricted)
    }

    /// Range restriction, seed implementation.
    pub fn restrict_range(
        store: &Store,
        ext: &BTreeSet<TermId>,
        path: &[PathStep],
        min: Option<&Value>,
        max: Option<&Value>,
    ) -> BTreeSet<TermId> {
        let in_range = |id: TermId| -> bool {
            let v = Value::from_term(store.term(id));
            let ge_min = min.is_none_or(|m| {
                matches!(
                    v.compare(m),
                    Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
                )
            });
            let le_max = max.is_none_or(|m| {
                matches!(
                    v.compare(m),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                )
            });
            ge_min && le_max
        };
        let terminal: BTreeSet<TermId> = joins_path(store, ext, path)
            .into_iter()
            .filter(|&t| in_range(t))
            .collect();
        if terminal.is_empty() {
            return BTreeSet::new();
        }
        if path.len() == 1 {
            restrict_value_set(store, ext, path[0], &terminal)
        } else {
            restrict_path(store, ext, path, &terminal)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::Term;
    use std::collections::BTreeSet;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 2 .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:Lenovo ; ex:usb 4 .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 3 .
               ex:DELL ex:origin ex:USA .
               ex:Lenovo ex:origin ex:China .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup(&Term::iri(format!("{EX}{local}"))).unwrap()
    }

    fn laptops(s: &Store) -> ExtSet {
        ["l1", "l2", "l3"].iter().map(|l| id(s, l)).collect()
    }

    fn step(s: &Store, local: &str) -> PathStep {
        PathStep { prop: id(s, local), inverse: false }
    }

    #[test]
    fn joins_collects_values() {
        let s = store();
        let vals = joins(&s, &laptops(&s), step(&s, "manufacturer"));
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn restrict_by_value() {
        let s = store();
        let e = restrict_value(&s, &laptops(&s), step(&s, "manufacturer"), id(&s, "DELL"));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn joins_path_two_steps() {
        let s = store();
        let vals = joins_path(&s, &laptops(&s), &[step(&s, "manufacturer"), step(&s, "origin")]);
        assert_eq!(vals.len(), 2); // USA, China
    }

    #[test]
    fn restrict_path_back_propagates() {
        let s = store();
        let usa: ExtSet = [id(&s, "USA")].into_iter().collect();
        let e = restrict_path(
            &s,
            &laptops(&s),
            &[step(&s, "manufacturer"), step(&s, "origin")],
            &usa,
        )
        .unwrap();
        assert_eq!(e, [id(&s, "l1"), id(&s, "l3")].into_iter().collect());
    }

    #[test]
    fn restrict_path_rejects_empty_path() {
        let s = store();
        let usa: ExtSet = [id(&s, "USA")].into_iter().collect();
        let err = restrict_path(&s, &laptops(&s), &[], &usa).unwrap_err();
        assert!(err.message.contains("non-empty"), "{err}");
    }

    #[test]
    fn inverse_step_walks_backwards() {
        let s = store();
        let dell: ExtSet = [id(&s, "DELL")].into_iter().collect();
        let inv = PathStep { prop: id(&s, "manufacturer"), inverse: true };
        let who = joins(&s, &dell, inv);
        assert_eq!(who, [id(&s, "l1"), id(&s, "l3")].into_iter().collect());
    }

    #[test]
    fn counts_are_ascending_and_exact() {
        let s = store();
        let counts = joins_with_counts(&s, &laptops(&s), step(&s, "manufacturer"));
        assert!(counts.windows(2).all(|w| w[0].0 < w[1].0));
        let dell = counts.iter().find(|(v, _)| *v == id(&s, "DELL")).unwrap();
        assert_eq!(dell.1, 2);
    }

    #[test]
    fn range_restriction() {
        let s = store();
        let e = restrict_range(
            &s,
            &laptops(&s),
            &[step(&s, "usb")],
            Some(&Value::Int(2)),
            Some(&Value::Int(3)),
        );
        assert_eq!(e, [id(&s, "l1"), id(&s, "l3")].into_iter().collect());
        // open-ended range
        let e2 = restrict_range(&s, &laptops(&s), &[step(&s, "usb")], Some(&Value::Int(4)), None);
        assert_eq!(e2, [id(&s, "l2")].into_iter().collect());
    }

    #[test]
    fn restrict_class_filters() {
        let s = store();
        let mut mixed = laptops(&s).to_sorted_vec();
        mixed.push(id(&s, "DELL"));
        let mixed: ExtSet = mixed.into_iter().collect();
        let e = restrict_class(&s, &mixed, id(&s, "Laptop"));
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn empty_path_join_is_empty() {
        let s = store();
        let vals = joins_path(&s, &ExtSet::new(), &[step(&s, "manufacturer")]);
        assert!(vals.is_empty());
    }

    /// Every operator agrees with its [`reference`] counterpart on the
    /// fixture (the broader random-graph differential suite lives in the
    /// workspace-level tests).
    #[test]
    fn agrees_with_reference_on_fixture() {
        let s = store();
        let ext = laptops(&s);
        let ext_ref = ext.to_btree_set();
        for prop in ["manufacturer", "usb"] {
            for inverse in [false, true] {
                let st = PathStep { prop: id(&s, prop), inverse };
                assert_eq!(
                    joins(&s, &ext, st).to_btree_set(),
                    reference::joins(&s, &ext_ref, st)
                );
                let counts: Vec<(TermId, usize)> =
                    reference::joins_with_counts(&s, &ext_ref, st).into_iter().collect();
                assert_eq!(joins_with_counts(&s, &ext, st), counts);
            }
        }
        let path = [step(&s, "manufacturer"), step(&s, "origin")];
        assert_eq!(
            joins_path(&s, &ext, &path).to_btree_set(),
            reference::joins_path(&s, &ext_ref, &path)
        );
        let usa: BTreeSet<TermId> = [id(&s, "USA")].into_iter().collect();
        assert_eq!(
            restrict_path(&s, &ext, &path, &ExtSet::from(&usa)).unwrap().to_btree_set(),
            reference::restrict_path(&s, &ext_ref, &path, &usa)
        );
    }
}
