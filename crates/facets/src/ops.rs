//! The `Restrict` and `Joins` operators of §5.3.1 — the algebra underlying
//! all transitions.

use crate::state::PathStep;
use rdfa_model::Value;
use rdfa_store::{Store, TermId};
use std::collections::BTreeSet;

/// `Restrict(E, p : v)` — elements of `E` with a `p`-edge to `v`
/// (direction-aware: an inverse step follows `p` backwards).
pub fn restrict_value(store: &Store, ext: &BTreeSet<TermId>, step: PathStep, v: TermId) -> BTreeSet<TermId> {
    ext.iter()
        .copied()
        .filter(|&e| {
            if step.inverse {
                store.contains([v, step.prop, e])
            } else {
                store.contains([e, step.prop, v])
            }
        })
        .collect()
}

/// `Restrict(E, p : vset)` — elements of `E` with a `p`-edge to any of `vset`.
pub fn restrict_value_set(
    store: &Store,
    ext: &BTreeSet<TermId>,
    step: PathStep,
    vset: &BTreeSet<TermId>,
) -> BTreeSet<TermId> {
    ext.iter()
        .copied()
        .filter(|&e| {
            joins_step(store, e, step).any(|x| vset.contains(&x))
        })
        .collect()
}

/// `Restrict(E, c)` — elements of `E` that are (entailed) instances of `c`.
pub fn restrict_class(store: &Store, ext: &BTreeSet<TermId>, c: TermId) -> BTreeSet<TermId> {
    let wk = store.well_known();
    ext.iter()
        .copied()
        .filter(|&e| store.contains([e, wk.rdf_type, c]))
        .collect()
}

/// One-step joins from a single node.
fn joins_step(store: &Store, e: TermId, step: PathStep) -> impl Iterator<Item = TermId> + '_ {
    let (s, o) = if step.inverse { (None, Some(e)) } else { (Some(e), None) };
    store
        .matching(s, Some(step.prop), o)
        .map(move |[s2, _, o2]| if step.inverse { s2 } else { o2 })
}

/// `Joins(E, p)` — values linked to elements of `E` by `p` (§5.3.1).
pub fn joins(store: &Store, ext: &BTreeSet<TermId>, step: PathStep) -> BTreeSet<TermId> {
    let mut out = BTreeSet::new();
    for &e in ext {
        out.extend(joins_step(store, e, step));
    }
    out
}

/// `Joins(E, p)` together with the marker counts `|Restrict(E, p : v)|` for
/// every value, in **one pass** over the extension's `p`-edges — the
/// computation behind every facet's value list (Fig 5.4 c). Each extension
/// element contributes at most once per value (triples are a set), so
/// incrementing per edge is exact.
pub fn joins_with_counts(
    store: &Store,
    ext: &BTreeSet<TermId>,
    step: PathStep,
) -> std::collections::BTreeMap<TermId, usize> {
    let mut counts = std::collections::BTreeMap::new();
    for &e in ext {
        for v in joins_step(store, e, step) {
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    counts
}

/// `Joins` along a path: `Joins(…Joins(E, p1)…, pk)` — the marker set `M_k`
/// of §5.3.2.
pub fn joins_path(store: &Store, ext: &BTreeSet<TermId>, path: &[PathStep]) -> BTreeSet<TermId> {
    let mut frontier = ext.clone();
    for &step in path {
        frontier = joins(store, &frontier, step);
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// Restrict `E` through a path to a chosen terminal value — the
/// back-propagation of Eq. 5.1: `M'_k = {v}`, `M'_i = Restrict(M_i, p_{i+1} :
/// M'_{i+1})`, extension `Restrict(E, p_1 : M'_1)`.
pub fn restrict_path(
    store: &Store,
    ext: &BTreeSet<TermId>,
    path: &[PathStep],
    terminal: &BTreeSet<TermId>,
) -> BTreeSet<TermId> {
    assert!(!path.is_empty(), "restrict_path needs a non-empty path");
    // compute marker sets M_1 … M_{k-1}
    let mut markers: Vec<BTreeSet<TermId>> = Vec::with_capacity(path.len());
    let mut frontier = ext.clone();
    for &step in path {
        frontier = joins(store, &frontier, step);
        markers.push(frontier.clone());
    }
    // back-propagate M'_i
    let mut restricted = terminal.clone();
    for i in (0..path.len() - 1).rev() {
        restricted = restrict_value_set(store, &markers[i], path[i + 1], &restricted);
    }
    restrict_value_set(store, ext, path[0], &restricted)
}

/// Restrict `E` by a numeric/date range on a path's terminal value: elements
/// with at least one terminal value `v` with `min ≤ v ≤ max` (either bound
/// optional).
pub fn restrict_range(
    store: &Store,
    ext: &BTreeSet<TermId>,
    path: &[PathStep],
    min: Option<&Value>,
    max: Option<&Value>,
) -> BTreeSet<TermId> {
    let in_range = |id: TermId| -> bool {
        let v = Value::from_term(store.term(id));
        let ge_min = min.is_none_or(|m| {
            matches!(v.compare(m), Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal))
        });
        let le_max = max.is_none_or(|m| {
            matches!(v.compare(m), Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal))
        });
        ge_min && le_max
    };
    // terminal values that qualify
    let terminal: BTreeSet<TermId> = joins_path(store, ext, path)
        .into_iter()
        .filter(|&t| in_range(t))
        .collect();
    if terminal.is_empty() {
        return BTreeSet::new();
    }
    if path.len() == 1 {
        restrict_value_set(store, ext, path[0], &terminal)
    } else {
        restrict_path(store, ext, path, &terminal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::Term;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 2 .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:Lenovo ; ex:usb 4 .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:usb 3 .
               ex:DELL ex:origin ex:USA .
               ex:Lenovo ex:origin ex:China .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup(&Term::iri(format!("{EX}{local}"))).unwrap()
    }

    fn laptops(s: &Store) -> BTreeSet<TermId> {
        ["l1", "l2", "l3"].iter().map(|l| id(s, l)).collect()
    }

    fn step(s: &Store, local: &str) -> PathStep {
        PathStep { prop: id(s, local), inverse: false }
    }

    #[test]
    fn joins_collects_values() {
        let s = store();
        let vals = joins(&s, &laptops(&s), step(&s, "manufacturer"));
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn restrict_by_value() {
        let s = store();
        let e = restrict_value(&s, &laptops(&s), step(&s, "manufacturer"), id(&s, "DELL"));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn joins_path_two_steps() {
        let s = store();
        let vals = joins_path(&s, &laptops(&s), &[step(&s, "manufacturer"), step(&s, "origin")]);
        assert_eq!(vals.len(), 2); // USA, China
    }

    #[test]
    fn restrict_path_back_propagates() {
        let s = store();
        let usa: BTreeSet<TermId> = [id(&s, "USA")].into_iter().collect();
        let e = restrict_path(
            &s,
            &laptops(&s),
            &[step(&s, "manufacturer"), step(&s, "origin")],
            &usa,
        );
        assert_eq!(e, [id(&s, "l1"), id(&s, "l3")].into_iter().collect());
    }

    #[test]
    fn inverse_step_walks_backwards() {
        let s = store();
        let dell: BTreeSet<TermId> = [id(&s, "DELL")].into_iter().collect();
        let inv = PathStep { prop: id(&s, "manufacturer"), inverse: true };
        let who = joins(&s, &dell, inv);
        assert_eq!(who, [id(&s, "l1"), id(&s, "l3")].into_iter().collect());
    }

    #[test]
    fn range_restriction() {
        let s = store();
        let e = restrict_range(
            &s,
            &laptops(&s),
            &[step(&s, "usb")],
            Some(&Value::Int(2)),
            Some(&Value::Int(3)),
        );
        assert_eq!(e, [id(&s, "l1"), id(&s, "l3")].into_iter().collect());
        // open-ended range
        let e2 = restrict_range(&s, &laptops(&s), &[step(&s, "usb")], Some(&Value::Int(4)), None);
        assert_eq!(e2, [id(&s, "l2")].into_iter().collect());
    }

    #[test]
    fn restrict_class_filters() {
        let s = store();
        let mut mixed = laptops(&s);
        mixed.insert(id(&s, "DELL"));
        let e = restrict_class(&s, &mixed, id(&s, "Laptop"));
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn empty_path_join_is_empty() {
        let s = store();
        let vals = joins_path(&s, &BTreeSet::new(), &[step(&s, "manufacturer")]);
        assert!(vals.is_empty());
    }
}
