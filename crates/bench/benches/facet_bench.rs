//! Faceted-search state-computation benchmarks (E10, §6.4): the cost of
//! building the left frame — class markers, property facets with counts,
//! path expansion — as the KG grows.

use rdfa_bench::microbench::{black_box, BenchmarkId, Criterion};
use rdfa_bench::{criterion_group, criterion_main};
use rdfa_datagen::{ProductsGenerator, EX};
use rdfa_facets::{class_markers, expand_path, property_facets, PathStep};
use rdfa_store::Store;

fn store(n: usize) -> Store {
    let mut s = Store::new();
    s.load_graph(&ProductsGenerator::new(n, 1).generate());
    s
}

fn bench_state_computation(c: &mut Criterion) {
    let mut group = c.benchmark_group("facet_state");
    group.sample_size(20);
    for n in [500usize, 2_000, 8_000] {
        let s = store(n);
        let laptop = s.lookup_iri(&format!("{EX}Laptop")).unwrap();
        let ext = s.instances(laptop);
        group.bench_with_input(BenchmarkId::new("class_markers", n), &s, |b, s| {
            b.iter(|| black_box(class_markers(s, &ext).len()))
        });
        group.bench_with_input(BenchmarkId::new("property_facets", n), &s, |b, s| {
            b.iter(|| black_box(property_facets(s, &ext).len()))
        });
        let path = [
            PathStep::fwd(s.lookup_iri(&format!("{EX}manufacturer")).unwrap()),
            PathStep::fwd(s.lookup_iri(&format!("{EX}origin")).unwrap()),
        ];
        group.bench_with_input(BenchmarkId::new("expand_path", n), &s, |b, s| {
            b.iter(|| black_box(expand_path(s, &ext, &path).len()))
        });
    }
    group.finish();
}

/// Ablation: memoized session facets vs recomputation — the efficiency
/// iteration of the dissertation's system (3).
fn bench_session_cache(c: &mut Criterion) {
    use rdfa_facets::FacetedSession;
    let s = store(4_000);
    let laptop = s.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let mut group = c.benchmark_group("session_cache");
    group.sample_size(20);
    group.bench_function("cached_facets", |b| {
        let mut session = FacetedSession::start(&s);
        session.select_class(laptop).unwrap();
        let _ = session.facets(); // warm the cache
        b.iter(|| black_box(session.facets().len()))
    });
    group.bench_function("fresh_facets", |b| {
        let session = FacetedSession::start(&s);
        let ext = s.instances(laptop);
        let _ = session;
        b.iter(|| black_box(property_facets(&s, &ext).len()))
    });
    group.finish();
}

fn bench_keyword_index(c: &mut Criterion) {
    use rdfa_store::KeywordIndex;
    let s = store(4_000);
    c.bench_function("keyword_index_build_4k", |b| {
        b.iter(|| black_box(KeywordIndex::build(&s).len()))
    });
    let idx = KeywordIndex::build(&s);
    c.bench_function("keyword_search", |b| {
        b.iter(|| black_box(idx.search("laptop company usa").len()))
    });
}

fn bench_buckets(c: &mut Criterion) {
    use rdfa_facets::{bucket_values, PathStep as PS};
    let s = store(4_000);
    let laptop = s.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let ext = s.instances(laptop);
    let path = [PS::fwd(s.lookup_iri(&format!("{EX}price")).unwrap())];
    c.bench_function("bucket_values_4k", |b| {
        b.iter(|| black_box(bucket_values(&s, &ext, &path, 6).len()))
    });
}

criterion_group!(
    benches,
    bench_state_computation,
    bench_session_cache,
    bench_keyword_index,
    bench_buckets
);
criterion_main!(benches);
