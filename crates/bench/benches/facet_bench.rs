//! Interactive-facet latency benchmark (E10, §6.4): the cost of building
//! the left frame — class markers plus property facets with counts — for
//! one state, comparing
//!
//! 1. the seed `BTreeSet` path (`markers::reference`),
//! 2. the sorted-dense merge-join path with parallel marker computation,
//! 3. the same path answered from a warm generation-keyed [`FacetCache`].
//!
//! Asserts the new path reproduces the seed output byte-identically at each
//! scale, then writes `BENCH_4.json` with timings and speedups so CI can
//! archive the artifact.
//!
//! Run with `cargo bench --bench facet_bench`.

use rdfa_datagen::{ProductsGenerator, EX};
use rdfa_facets::{markers, FacetCache, FacetOptions};
use rdfa_store::Store;
use std::time::Instant;

/// Median wall-clock seconds over `reps` runs of `f`.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct ScaleResult {
    triples: usize,
    ext_len: usize,
    reps: usize,
    reference_secs: f64,
    merge_join_secs: f64,
    cached_secs: f64,
}

fn bench_scale(n_products: usize, reps: usize, threads: usize) -> ScaleResult {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(n_products, 1).generate());
    let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let ext_ref = store.instances(laptop);
    let ext = store.instances_set(laptop);
    assert_eq!(ext.to_btree_set(), ext_ref);
    let opts = FacetOptions { threads, deadline: None };

    // correctness gate: the merge-join/parallel path must reproduce the
    // seed implementation byte-identically
    let classes_ref = markers::reference::class_markers(&store, &ext_ref);
    let facets_ref = markers::reference::property_facets(&store, &ext_ref);
    let classes_new = markers::class_markers_opts(&store, &ext, opts).unwrap();
    let facets_new = markers::property_facets_opts(&store, &ext, opts).unwrap();
    assert_eq!(classes_ref, classes_new, "class markers diverged from seed");
    assert_eq!(facets_ref, facets_new, "property facets diverged from seed");

    let reference_secs = median_secs(reps, || {
        markers::reference::class_markers(&store, &ext_ref);
        markers::reference::property_facets(&store, &ext_ref);
    });
    let merge_join_secs = median_secs(reps, || {
        markers::class_markers_opts(&store, &ext, opts).unwrap();
        markers::property_facets_opts(&store, &ext, opts).unwrap();
    });
    let cache = FacetCache::new(16);
    cache.class_markers(&store, &ext, opts).unwrap(); // warm
    cache.property_facets(&store, &ext, opts).unwrap();
    let cached_secs = median_secs(reps, || {
        cache.class_markers(&store, &ext, opts).unwrap();
        cache.property_facets(&store, &ext, opts).unwrap();
    });
    let stats = cache.stats();
    assert_eq!(stats.misses, 2, "cache warmed exactly once per kind");

    ScaleResult {
        triples: store.len(),
        ext_len: ext.len(),
        reps,
        reference_secs,
        merge_join_secs,
        cached_secs,
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // ~9 triples per product: 6,300 → ~57k triples, 55,400 → ~500k triples
    let small = bench_scale(7_100, 9, threads);
    let large = bench_scale(62_400, 5, threads);

    let scale_json = |s: &ScaleResult| {
        format!(
            "{{\n    \"triples\": {},\n    \"extension\": {},\n    \"reps\": {},\n    \"reference_secs\": {:.6},\n    \"merge_join_parallel_secs\": {:.6},\n    \"cached_secs\": {:.6},\n    \"speedup_merge_join_vs_reference\": {:.3},\n    \"speedup_cached_vs_reference\": {:.1}\n  }}",
            s.triples,
            s.ext_len,
            s.reps,
            s.reference_secs,
            s.merge_join_secs,
            s.cached_secs,
            s.reference_secs / s.merge_join_secs,
            s.reference_secs / s.cached_secs,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"facet_markers_merge_join_parallel_cache\",\n  \"threads\": {threads},\n  \"small\": {},\n  \"large\": {}\n}}\n",
        scale_json(&small),
        scale_json(&large)
    );
    // repo root when run via cargo, current dir otherwise
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_4.json");
    std::fs::write(&out, &json).expect("write BENCH_4.json");
    println!("{json}");
    println!("wrote {}", out.display());
}
