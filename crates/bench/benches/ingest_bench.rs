//! Bulk-ingest benchmark (PR 5): the seed ingest path versus the parallel
//! bulk pipeline — chunked zero-copy parsing, sharded interning, sort-based
//! index builds — on the products KG serialized as N-Triples.
//!
//! Four contenders at each scale:
//!
//! 1. `seed`: the ingest implementation exactly as it stood before this PR,
//!    vendored below in [`seed_path`] — whole-document parse into owned
//!    heap-allocated `Term`s, a `HashMap<Term, TermId>` interner that clones
//!    every new term twice, and per-triple `BTreeSet` inserts. This is the
//!    pinned baseline: the PR also rebuilt the lexer and interner that the
//!    *in-tree* per-triple loader now shares, so timing only the in-tree
//!    path would understate the end-to-end change at the load sites.
//! 2. `per_triple`: today's in-tree `Store::load_ntriples` (seed algorithm,
//!    but running on this PR's lexer and id-keyed interner) — isolates how
//!    much of the win comes from shared-component rework alone.
//! 3. `bulk x1`: the bulk pipeline pinned to one worker thread (isolating
//!    the algorithmic wins: zero-copy lexing, dedup-once interning, sorted
//!    bulk index construction).
//! 4. `bulk xN`: the bulk pipeline with eight workers.
//!
//! Before timing anything, asserts every contender produces the same store:
//! identical term tables (same ids in the same order), identical explicit
//! triple sets, and for the in-tree contenders identical generation and
//! entailed counts. Writes `BENCH_5.json` so CI can archive the artifact.
//!
//! Run with `cargo bench -p rdfa-bench --bench ingest_bench`.

use rdfa_datagen::ProductsGenerator;
use rdfa_model::ntriples;
use rdfa_store::{LoadOptions, Store, TermId};
use std::time::Instant;

/// The ingest path exactly as it stood at the seed commit, vendored as the
/// pinned pre-PR baseline. Parser, interner and insert loop mirror the old
/// `ntriples::parse` / `Interner` / `Store::load_ntriples` line for line;
/// only the error plumbing is collapsed (this benchmark feeds it known-good
/// input, so error paths never execute and cannot affect timing). The one
/// omission is the RDFS closure recomputation at the end of a load — that
/// work is identical in every contender, so leaving it out of the baseline
/// biases the comparison *against* the bulk pipeline.
mod seed_path {
    use rdfa_model::term::unescape_literal_checked;
    use rdfa_model::vocab::xsd;
    use rdfa_model::{Literal, Term, Triple};
    use std::collections::{BTreeSet, HashMap};

    fn take_term(rest: &mut &str) -> Option<Term> {
        *rest = rest.trim_start();
        let s = *rest;
        if let Some(body) = s.strip_prefix('<') {
            let end = body.find('>')?;
            *rest = &body[end + 1..];
            Some(Term::iri(&body[..end]))
        } else if let Some(body) = s.strip_prefix("_:") {
            let end = body
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
                .unwrap_or(body.len());
            *rest = &body[end..];
            Some(Term::blank(&body[..end]))
        } else if let Some(body) = s.strip_prefix('"') {
            // scan for closing quote honouring backslash escapes
            let mut escaped = false;
            let mut end = None;
            for (i, c) in body.char_indices() {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i);
                    break;
                }
            }
            let end = end?;
            let lexical = unescape_literal_checked(&body[..end]).ok()?;
            let mut tail = &body[end + 1..];
            let term = if let Some(t) = tail.strip_prefix("^^<") {
                let close = t.find('>')?;
                let dt = &t[..close];
                tail = &t[close + 1..];
                Term::Literal(Literal::typed(lexical, dt))
            } else if let Some(t) = tail.strip_prefix('@') {
                let end = t
                    .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                    .unwrap_or(t.len());
                let lang = &t[..end];
                tail = &t[end..];
                Term::Literal(Literal::lang_string(lexical, lang))
            } else {
                Term::Literal(Literal::typed(lexical, xsd::STRING))
            };
            *rest = tail;
            Some(term)
        } else {
            None
        }
    }

    fn parse_line(line: &str) -> Option<Triple> {
        let mut rest = line;
        let subject = take_term(&mut rest)?;
        let predicate = take_term(&mut rest)?;
        let object = take_term(&mut rest)?;
        (rest.trim() == ".").then(|| Triple::new(subject, predicate, object))
    }

    fn parse(input: &str) -> Vec<Triple> {
        let input = input.strip_prefix('\u{feff}').unwrap_or(input);
        let mut triples = Vec::new();
        for line in input.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            triples.push(parse_line(line).expect("baseline parse"));
        }
        triples
    }

    /// The seed-commit store shape: `Vec<Term>` + `HashMap<Term, id>`
    /// interner (SipHash over the full term, two clones per new term) and
    /// three `BTreeSet` permutations grown one triple at a time.
    #[derive(Default)]
    pub struct SeedStore {
        pub terms: Vec<Term>,
        ids: HashMap<Term, u32>,
        pub spo: BTreeSet<[u32; 3]>,
        pos: BTreeSet<[u32; 3]>,
        osp: BTreeSet<[u32; 3]>,
        pub generation: u64,
    }

    impl SeedStore {
        /// Mirrors `Store::new`: the seed store pre-interned the well-known
        /// RDFS/OWL vocabulary, so ids line up with the in-tree stores.
        pub fn new() -> Self {
            use rdfa_model::vocab::{owl, rdf, rdfs};
            let mut s = SeedStore::default();
            for iri in [
                rdf::TYPE,
                rdfs::SUB_CLASS_OF,
                rdfs::SUB_PROPERTY_OF,
                rdfs::DOMAIN,
                rdfs::RANGE,
                rdfs::CLASS,
                rdf::PROPERTY,
                owl::FUNCTIONAL_PROPERTY,
            ] {
                s.get_or_intern(&Term::iri(iri));
            }
            s
        }

        fn get_or_intern(&mut self, term: &Term) -> u32 {
            if let Some(&id) = self.ids.get(term) {
                return id;
            }
            let id = self.terms.len() as u32;
            self.terms.push(term.clone());
            self.ids.insert(term.clone(), id);
            id
        }

        pub fn load_ntriples(&mut self, text: &str) -> usize {
            let triples = parse(text);
            let n = triples.len();
            for t in &triples {
                let s = self.get_or_intern(&t.subject);
                let p = self.get_or_intern(&t.predicate);
                let o = self.get_or_intern(&t.object);
                let added = self.spo.insert([s, p, o]);
                self.pos.insert([p, o, s]);
                self.osp.insert([o, s, p]);
                if added {
                    self.generation += 1;
                }
            }
            n
        }
    }
}

/// Time `f`, dropping whatever it built *outside* the measured window —
/// tearing down a half-gigabyte store is not part of ingest.
fn time_one<T>(f: impl FnOnce() -> T) -> f64 {
    let t0 = Instant::now();
    let built = f();
    let secs = t0.elapsed().as_secs_f64();
    drop(built);
    secs
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn assert_identical(reference: &Store, got: &Store, ctx: &str) {
    assert_eq!(reference.term_count(), got.term_count(), "{ctx}: term count");
    for i in 0..reference.term_count() {
        let id = TermId(i as u32);
        assert_eq!(reference.term(id), got.term(id), "{ctx}: term id {i}");
    }
    assert_eq!(reference.generation(), got.generation(), "{ctx}: generation");
    assert_eq!(reference.len_entailed(), got.len_entailed(), "{ctx}: entailed");
    let a: Vec<_> = reference.iter_explicit().collect();
    let b: Vec<_> = got.iter_explicit().collect();
    assert_eq!(a, b, "{ctx}: explicit SPO scan");
}

/// The vendored baseline must agree with the in-tree store on term ids
/// (same terms, same order — the bulk pipeline's canonical-order guarantee
/// extends all the way back to the seed commit) and on the explicit set.
fn assert_baseline_matches(baseline: &seed_path::SeedStore, reference: &Store) {
    assert_eq!(baseline.terms.len(), reference.term_count(), "baseline: term count");
    for (i, t) in baseline.terms.iter().enumerate() {
        assert_eq!(t, reference.term(TermId(i as u32)), "baseline: term id {i}");
    }
    let got: Vec<_> = baseline.spo.iter().map(|&[s, p, o]| [TermId(s), TermId(p), TermId(o)]).collect();
    let want: Vec<_> = reference.iter_explicit().collect();
    assert_eq!(baseline.generation as usize, want.len(), "baseline: one bump per added triple");
    assert_eq!(got, want, "baseline: explicit SPO scan");
}

struct ScaleResult {
    triples: usize,
    terms: usize,
    bytes: usize,
    reps: usize,
    seed_secs: f64,
    per_triple_secs: f64,
    bulk1_secs: f64,
    bulkn_secs: f64,
}

fn bench_scale(n_products: usize, reps: usize, threads: usize) -> ScaleResult {
    let graph = ProductsGenerator::new(n_products, 1).generate();
    let text = ntriples::serialize(&graph);
    drop(graph);

    // correctness gate: every contender must produce the same store
    let mut reference = Store::new();
    let n = reference.load_ntriples(&text).expect("per-triple load");
    let mut baseline = seed_path::SeedStore::new();
    assert_eq!(baseline.load_ntriples(&text), n, "baseline triple count");
    assert_baseline_matches(&baseline, &reference);
    drop(baseline);
    for t in [1, threads] {
        let mut bulk = Store::new();
        let stats = bulk.bulk_load_ntriples(&text, LoadOptions::with_threads(t)).expect("bulk");
        assert_eq!(stats.triples, n, "triple count with {t} threads");
        assert_identical(&reference, &bulk, &format!("bulk x{t}"));
    }

    // interleave the contenders within each rep — shared-box CPU throttling
    // drifts on a seconds timescale, so adjacent measurements see the same
    // conditions while widely separated ones do not
    let mut seed_samples = Vec::with_capacity(reps);
    let mut per_triple_samples = Vec::with_capacity(reps);
    let mut bulk1_samples = Vec::with_capacity(reps);
    let mut bulkn_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        seed_samples.push(time_one(|| {
            let mut s = seed_path::SeedStore::new();
            s.load_ntriples(&text);
            s
        }));
        per_triple_samples.push(time_one(|| {
            let mut s = Store::new();
            s.load_ntriples(&text).unwrap();
            s
        }));
        bulk1_samples.push(time_one(|| {
            let mut s = Store::new();
            s.bulk_load_ntriples(&text, LoadOptions::with_threads(1)).unwrap();
            s
        }));
        bulkn_samples.push(time_one(|| {
            let mut s = Store::new();
            s.bulk_load_ntriples(&text, LoadOptions::with_threads(threads)).unwrap();
            s
        }));
    }

    ScaleResult {
        triples: n,
        terms: reference.term_count(),
        bytes: text.len(),
        reps,
        seed_secs: median(seed_samples),
        per_triple_secs: median(per_triple_samples),
        bulk1_secs: median(bulk1_samples),
        bulkn_secs: median(bulkn_samples),
    }
}

fn main() {
    let threads = 8;
    // ~8 triples per product: 7,100 → ~57k triples, 63,500 → ~509k triples
    let small = bench_scale(7_100, 7, threads);
    let large = bench_scale(63_500, 5, threads);
    assert!(
        large.triples >= 500_000,
        "large scale must hold at least 500k triples, got {}",
        large.triples
    );

    let scale_json = |s: &ScaleResult| {
        format!(
            "{{\n    \"triples\": {},\n    \"terms\": {},\n    \"ntriples_bytes\": {},\n    \"reps\": {},\n    \"seed_secs\": {:.6},\n    \"per_triple_secs\": {:.6},\n    \"bulk_1thread_secs\": {:.6},\n    \"bulk_{}threads_secs\": {:.6},\n    \"speedup_bulk1_vs_seed\": {:.3},\n    \"speedup_bulk{}_vs_seed\": {:.3}\n  }}",
            s.triples,
            s.terms,
            s.bytes,
            s.reps,
            s.seed_secs,
            s.per_triple_secs,
            s.bulk1_secs,
            threads,
            s.bulkn_secs,
            s.seed_secs / s.bulk1_secs,
            threads,
            s.seed_secs / s.bulkn_secs,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"parallel_bulk_ingest\",\n  \"threads\": {threads},\n  \"small\": {},\n  \"large\": {}\n}}\n",
        scale_json(&small),
        scale_json(&large)
    );
    // repo root when run via cargo, current dir otherwise
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_5.json");
    std::fs::write(&out, &json).expect("write BENCH_5.json");
    println!("{json}");
    println!("wrote {}", out.display());
}
