//! Store microbenchmarks: load throughput, pattern matching, and the RDFS
//! closure ablation (materialization cost vs entailed-query speed).

use rdfa_bench::microbench::{black_box, BenchmarkId, Criterion};
use rdfa_bench::{criterion_group, criterion_main};
use rdfa_datagen::{ProductsGenerator, EX};
use rdfa_store::Store;

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_load");
    group.sample_size(20);
    for n in [200usize, 1_000, 5_000] {
        let graph = ProductsGenerator::new(n, 1).generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                let mut store = Store::new();
                store.load_graph(black_box(graph));
                black_box(store.len())
            })
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(5_000, 1).generate());
    let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
    let price = store.lookup_iri(&format!("{EX}price")).unwrap();
    let wk = store.well_known();

    let mut group = c.benchmark_group("store_match");
    group.sample_size(20);
    group.bench_function("by_predicate_object(type,Laptop)", |b| {
        b.iter(|| store.matching(None, Some(wk.rdf_type), Some(laptop)).count())
    });
    group.bench_function("by_predicate(price)", |b| {
        b.iter(|| store.matching(None, Some(price), None).count())
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| store.matching(None, None, None).count())
    });
    group.finish();
}

/// Ablation: the cost of materializing the RDFS closure up front, and the
/// payoff — entailed `instances()` queries become single index scans.
fn bench_inference_ablation(c: &mut Criterion) {
    let graph = ProductsGenerator::new(5_000, 1).generate();
    let mut group = c.benchmark_group("inference_ablation");
    group.sample_size(20);
    group.bench_function("materialize_closure", |b| {
        let mut store = Store::new();
        for t in graph.iter() {
            store.insert(t);
        }
        b.iter(|| {
            store.materialize_inference();
            black_box(store.len_entailed())
        })
    });
    group.bench_function("entailed_instances_query", |b| {
        let mut store = Store::new();
        store.load_graph(&graph);
        let product = store.lookup_iri(&format!("{EX}Product")).unwrap();
        b.iter(|| black_box(store.instances(product).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_load, bench_matching, bench_inference_ablation);
criterion_main!(benches);
