//! Visualization benchmarks: the spiral layout's near-linear behaviour
//! (the companion paper's efficiency claim) and the 3D scene builder.

use rdfa_bench::microbench::{black_box, BenchmarkId, Criterion};
use rdfa_bench::{criterion_group, criterion_main};
use rdfa_viz::{spiral_layout, urban_layout};

fn bench_spiral(c: &mut Criterion) {
    let mut group = c.benchmark_group("spiral_layout");
    group.sample_size(20);
    for n in [50usize, 200, 800] {
        // power-law sizes, the paper's motivating distribution
        let values: Vec<f64> = (1..=n).map(|i| 1000.0 / i as f64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            b.iter(|| black_box(spiral_layout(values, 1.0).len()))
        });
    }
    group.finish();
}

fn bench_urban(c: &mut Criterion) {
    let entities: Vec<(String, Vec<f64>)> = (0..200)
        .map(|i| (format!("e{i}"), vec![i as f64, (200 - i) as f64, 50.0]))
        .collect();
    let features = vec!["a".to_string(), "b".to_string(), "c".to_string()];
    c.bench_function("urban_layout_200", |b| {
        b.iter(|| black_box(urban_layout(&entities, &features, 2.0, 1.0, 10.0).len()))
    });
}

criterion_group!(benches, bench_spiral, bench_urban);
criterion_main!(benches);
