//! SPARQL engine benchmarks over the workload queries, including the BGP
//! join-order ablation (selectivity reordering on vs off — DESIGN.md).

use rdfa_bench::microbench::{black_box, Criterion};
use rdfa_bench::{criterion_group, criterion_main};
use rdfa_bench::queries::workload;
use rdfa_datagen::{ProductsGenerator, EX};
use rdfa_sparql::Engine;
use rdfa_store::Store;

fn store(n: usize) -> Store {
    let mut s = Store::new();
    s.load_graph(&ProductsGenerator::new(n, 1).generate());
    s
}

fn bench_workload(c: &mut Criterion) {
    let s = store(2_000);
    let mut group = c.benchmark_group("sparql_workload");
    group.sample_size(20);
    for wq in workload() {
        group.bench_function(wq.id, |b| {
            let engine = Engine::builder(&s).build();
            b.iter(|| black_box(engine.run(&wq.sparql).unwrap()))
        });
    }
    group.finish();
}

/// The flagship Fig 1.3-style query, where join order matters most: a long
/// chain with selective constants at the end.
fn bench_join_order_ablation(c: &mut Criterion) {
    let s = store(2_000);
    let q = format!(
        r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
           PREFIX ex: <{EX}>
           SELECT ?m (AVG(?p) as ?avg)
           WHERE {{
             ?s rdf:type ex:Laptop.
             ?s ex:manufacturer ?m.
             ?m ex:origin ex:USA.
             ?s ex:price ?p.
             ?s ex:USBPorts ?u.
             ?s ex:hardDrive ?hd.
             ?hd rdf:type ex:SSD.
             FILTER (?u >= 2).
           }} GROUP BY ?m"#
    );
    let mut group = c.benchmark_group("join_order_ablation");
    group.sample_size(20);
    group.bench_function("reordered", |b| {
        let engine = Engine::builder(&s).reorder_bgp(true).build();
        b.iter(|| black_box(engine.run(&q).unwrap()))
    });
    group.bench_function("naive_order", |b| {
        let engine = Engine::builder(&s).reorder_bgp(false).build();
        b.iter(|| black_box(engine.run(&q).unwrap()))
    });
    group.finish();
}

fn bench_property_paths(c: &mut Criterion) {
    let s = store(2_000);
    let q = format!(
        "PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x ex:manufacturer/ex:origin/ex:locatedAt ex:Asia . }}"
    );
    c.bench_function("property_path_3_steps", |b| {
        let engine = Engine::builder(&s).build();
        b.iter(|| black_box(engine.run(&q).unwrap()))
    });
}

criterion_group!(benches, bench_workload, bench_join_order_ablation, bench_property_paths);
criterion_main!(benches);
