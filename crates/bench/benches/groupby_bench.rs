//! Group-by microbenchmark: term-space evaluator vs the ID-space batched
//! engine at 1 and N worker threads, over a store big enough to clear the
//! parallel-aggregation threshold. Asserts all three configurations return
//! the same (sorted) result rows, then writes `BENCH_3.json` with the
//! timings and speedups so CI can archive the artifact.
//!
//! Run with `cargo bench --bench groupby_bench`.

use rdfa_datagen::{ProductsGenerator, EX};
use rdfa_sparql::{Engine, ExecMode, Solutions};
use rdfa_store::Store;
use std::time::Instant;

const REPS: usize = 9;

fn canon(sols: &Solutions) -> Vec<Vec<Option<String>>> {
    let mut rows: Vec<Vec<Option<String>>> = sols
        .rows()
        .iter()
        .map(|r| r.iter().map(|c| c.as_ref().map(|t| format!("{t:?}"))).collect())
        .collect();
    rows.sort();
    rows
}

/// Median wall-clock seconds over `REPS` runs of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    // ~7 triples per product → ~50k triples
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(7_000, 1).generate());
    let n_triples = store.len();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let query = format!(
        "PREFIX ex: <{EX}> \
         SELECT ?m ?u (COUNT(?x) AS ?n) (AVG(?p) AS ?avg) (MIN(?p) AS ?lo) (MAX(?p) AS ?hi) \
         WHERE {{ ?x ex:manufacturer ?m ; ex:USBPorts ?u ; ex:price ?p . }} \
         GROUP BY ?m ?u"
    );

    let run = |mode: ExecMode, threads: usize| -> Solutions {
        Engine::builder(&store)
            .execution(mode)
            .threads(threads)
            .build()
            .run(&query)
            .expect("group-by query must evaluate")
            .into_solutions()
            .unwrap()
    };

    // correctness gate first: all three configurations, identical rows
    let term_rows = canon(&run(ExecMode::TermSpace, 1));
    let seq_rows = canon(&run(ExecMode::IdSpace, 1));
    let par_rows = canon(&run(ExecMode::IdSpace, threads));
    assert_eq!(term_rows, seq_rows, "id-space(1) diverged from term-space");
    assert_eq!(term_rows, par_rows, "id-space({threads}) diverged from term-space");
    let groups = term_rows.len();

    let term = median_secs(|| {
        run(ExecMode::TermSpace, 1);
    });
    let idspace_1 = median_secs(|| {
        run(ExecMode::IdSpace, 1);
    });
    let idspace_n = median_secs(|| {
        run(ExecMode::IdSpace, threads);
    });

    let speedup_vs_term = term / idspace_n;
    let speedup_vs_seq = idspace_1 / idspace_n;
    let json = format!(
        "{{\n  \"bench\": \"groupby_parallel_hash_aggregation\",\n  \"triples\": {n_triples},\n  \"groups\": {groups},\n  \"reps\": {REPS},\n  \"threads\": {threads},\n  \"term_space_secs\": {term:.6},\n  \"id_space_1_thread_secs\": {idspace_1:.6},\n  \"id_space_n_threads_secs\": {idspace_n:.6},\n  \"speedup_id_space_n_vs_term_space\": {speedup_vs_term:.3},\n  \"speedup_id_space_n_vs_1_thread\": {speedup_vs_seq:.3}\n}}\n"
    );
    // repo root when run via cargo, current dir otherwise
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_3.json");
    std::fs::write(&out, &json).expect("write BENCH_3.json");
    println!("{json}");
    println!("wrote {}", out.display());
}
