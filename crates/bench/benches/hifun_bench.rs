//! HIFUN benchmarks: translation cost (it is pure string assembly and must
//! be negligible) and the two evaluation strategies of Fig 8.3.

use rdfa_bench::microbench::{black_box, Criterion};
use rdfa_bench::{criterion_group, criterion_main};
use rdfa_datagen::{InvoicesGenerator, EX};
use rdfa_hifun::{direct, translate, AggOp, AttrPath, CondOp, HifunQuery};
use rdfa_model::Term;
use rdfa_sparql::Engine;
use rdfa_store::Store;

fn invoices(n: usize) -> Store {
    let mut s = Store::new();
    s.load_graph(&InvoicesGenerator::new(n, 1).generate());
    s
}

fn query() -> HifunQuery {
    HifunQuery::new(AggOp::Sum)
        .group_by(AttrPath::prop(format!("{EX}takesPlaceAt")))
        .group_by(AttrPath::props(&[&format!("{EX}delivers"), &format!("{EX}brand")]))
        .measure(AttrPath::prop(format!("{EX}inQuantity")))
        .having(0, CondOp::Gt, Term::integer(100))
}

fn bench_translation(c: &mut Criterion) {
    let q = query();
    c.bench_function("hifun_to_sparql_translation", |b| {
        b.iter(|| black_box(translate::to_sparql(&q)))
    });
}

fn bench_strategies(c: &mut Criterion) {
    let s = invoices(5_000);
    let q = query();
    let sparql = translate::to_sparql(&q);
    let mut group = c.benchmark_group("evaluation_strategy");
    group.sample_size(20);
    group.bench_function("translated_sparql", |b| {
        let engine = Engine::builder(&s).build();
        b.iter(|| black_box(engine.run(&sparql).unwrap()))
    });
    group.bench_function("direct_hifun", |b| {
        b.iter(|| black_box(direct::evaluate(&s, &q).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_translation, bench_strategies);
criterion_main!(benches);
