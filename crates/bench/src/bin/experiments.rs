//! Experiment harness CLI — regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p rdfa-bench --bin experiments -- all          # everything
//! cargo run -p rdfa-bench --bin experiments -- table6.1     # peak hours
//! cargo run -p rdfa-bench --bin experiments -- table6.2     # off-peak
//! cargo run -p rdfa-bench --bin experiments -- fig8.1       # per-task study
//! cargo run -p rdfa-bench --bin experiments -- fig8.2       # study totals
//! cargo run -p rdfa-bench --bin experiments -- fig8.3       # impl. strategies
//! cargo run -p rdfa-bench --bin experiments -- robustness   # retry vs no-retry
//! cargo run -p rdfa-bench --bin experiments -- durability   # WAL fsync policies
//! ```
//!
//! Add `--full` for the large (≈1M-triple) scale of the efficiency tables.
//! Add `--faults` to run the efficiency tables through the fault-injecting
//! endpoint (30% transient faults) with a retrying client; the tables then
//! footer with fault/retry counts.

use rdfa_bench::experiments;
use rdfa_datagen::{FaultModel, LatencyModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let faults = if args.iter().any(|a| a == "--faults") {
        FaultModel::transient(0.3)
    } else {
        FaultModel::none()
    };
    let which: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "--full" && *a != "--faults")
        .collect();
    let what = which.first().copied().unwrap_or("all");

    let reps = 3;
    match what {
        "table6.1" => print!(
            "{}",
            experiments::efficiency_table(LatencyModel::peak(), "peak hours (Table 6.1)", full, reps, faults)
        ),
        "table6.2" => print!(
            "{}",
            experiments::efficiency_table(LatencyModel::off_peak(), "off-peak hours (Table 6.2)", full, reps, faults)
        ),
        "fig8.1" => print!("{}", experiments::fig8_1(20, 42)),
        "fig8.2" => print!("{}", experiments::fig8_2(20, 42)),
        "fig8.3" => print!("{}", experiments::fig8_3(2_000, reps)),
        "robustness" => print!("{}", experiments::robustness_table(2_000, 0.3, 42)),
        "durability" => print!(
            "{}",
            rdfa_bench::durability::durability_table(if full { 5_000 } else { 500 })
        ),
        "all" => {
            println!(
                "{}",
                experiments::efficiency_table(LatencyModel::peak(), "peak hours (Table 6.1)", full, reps, faults)
            );
            println!(
                "{}",
                experiments::efficiency_table(LatencyModel::off_peak(), "off-peak hours (Table 6.2)", full, reps, faults)
            );
            println!("{}", experiments::fig8_1(20, 42));
            println!("{}", experiments::fig8_2(20, 42));
            println!("{}", experiments::fig8_3(2_000, reps));
            println!("{}", experiments::robustness_table(2_000, 0.3, 42));
            print!(
                "{}",
                rdfa_bench::durability::durability_table(if full { 5_000 } else { 500 })
            );
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'. one of: all table6.1 table6.2 fig8.1 fig8.2 fig8.3 robustness durability [--full] [--faults]"
            );
            std::process::exit(2);
        }
    }
}
