//! A minimal, dependency-free micro-benchmark harness with a
//! criterion-compatible API surface.
//!
//! The workspace's benches (`crates/bench/benches/*.rs`) are plain
//! `harness = false` binaries; they need wall-clock medians, not
//! statistical machinery, and they must build offline. This module provides
//! the exact subset of the `criterion` API they call — `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — timing each body with an
//! adaptive batch size (batches grow until one batch takes ≥ 1 ms so the
//! timer's resolution doesn't dominate) and reporting min/median/max.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level driver handed to each registered bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 30 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.default_sample_size, f);
        self
    }
}

/// A named group; only carries the group label and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Benchmark a closure parameterized by `input` under `group/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (purely cosmetic here; criterion requires it).
    pub fn finish(&mut self) {}
}

/// A benchmark label, optionally `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", function_name.into()) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Collects timing samples for one benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, batching calls adaptively so one batch takes ≥ 1 ms.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // calibration: double the batch until it is long enough to time
        let mut iters: u32 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { sample_size, samples: Vec::with_capacity(sample_size) };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples — body never called iter)");
        return;
    }
    bencher.samples.sort();
    let min = bencher.samples[0];
    let max = *bencher.samples.last().unwrap();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{label:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Group bench functions into a single callable, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::microbench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups, like criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(200).to_string(), "200");
    }
}
