//! The simulated task-based evaluation (Figures 8.1/8.2; DESIGN.md
//! substitution 2).
//!
//! The paper's §8.1 evaluates 11 tasks with 20 users, reporting per-task
//! completion rates and 1–5 ratings. The tasks are re-encoded here as click
//! programs against the real system; each program's execution is the ground
//! truth (it exercises the full state-machine → HIFUN → SPARQL → answer
//! path and doubles as an implementability check, §8.2). The *human* layer —
//! slips and subjective ratings — is a stochastic model calibrated to the
//! paper's reported shape: completion near-perfect for plain faceted tasks,
//! dipping slightly for the novel analytics actions, ratings averaging ≈4.3.

use rdfa_prng::StdRng;
use rdfa_core::{AnalyticsSession, GroupSpec, MeasureSpec};
use rdfa_datagen::{ProductsGenerator, EX};
use rdfa_facets::{FacetedSession, PathStep};
use rdfa_hifun::{AggOp, CondOp, DerivedFn};
use rdfa_model::{Term, Value};
use rdfa_store::Store;

/// One evaluation task: a description, its UI action count (difficulty),
/// whether it needs the *novel* analytics actions, and the click program.
pub struct Task {
    pub id: &'static str,
    pub description: &'static str,
    pub actions: usize,
    pub novel: bool,
    /// Execute the task against the store; returns the result-set/answer
    /// size, or an error when the system cannot express it.
    pub run: fn(&Store) -> Result<usize, String>,
}

fn id_of(store: &Store, local: &str) -> Result<rdfa_store::TermId, String> {
    store
        .lookup_iri(&format!("{EX}{local}"))
        .ok_or_else(|| format!("resource {local} not present in this KG"))
}

/// The eleven tasks, ordered roughly by difficulty as in Fig 8.1: plain
/// faceted search first, analytics next, path/derived/nested analytics last.
pub fn tasks() -> Vec<Task> {
    vec![
        Task {
            id: "T1",
            description: "find all laptops (class click)",
            actions: 1,
            novel: false,
            run: |s| {
                let mut fs = FacetedSession::start(s);
                fs.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                Ok(fs.extension().len())
            },
        },
        Task {
            id: "T2",
            description: "laptops of a given manufacturer (facet value click)",
            actions: 2,
            novel: false,
            run: |s| {
                let mut fs = FacetedSession::start(s);
                fs.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                fs.select_value(id_of(s, "manufacturer")?, id_of(s, "Company0")?)
                    .map_err(|e| e.message)?;
                Ok(fs.extension().len())
            },
        },
        Task {
            id: "T3",
            description: "laptops with 2–4 USB ports (range filter)",
            actions: 2,
            novel: false,
            run: |s| {
                let mut fs = FacetedSession::start(s);
                fs.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                fs.select_range(
                    &[PathStep::fwd(id_of(s, "USBPorts")?)],
                    Some(Value::Int(2)),
                    Some(Value::Int(4)),
                )
                .map_err(|e| e.message)?;
                Ok(fs.extension().len())
            },
        },
        Task {
            id: "T4",
            description: "laptops whose manufacturer is from the USA (path expansion)",
            actions: 3,
            novel: false,
            run: |s| {
                let mut fs = FacetedSession::start(s);
                fs.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                fs.select_path_value(
                    &[PathStep::fwd(id_of(s, "manufacturer")?), PathStep::fwd(id_of(s, "origin")?)],
                    id_of(s, "USA")?,
                )
                .map_err(|e| e.message)?;
                Ok(fs.extension().len())
            },
        },
        Task {
            id: "T5",
            description: "count laptops per manufacturer (G + count)",
            actions: 3,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.add_grouping(GroupSpec::property(id_of(s, "manufacturer")?));
                a.set_ops(vec![AggOp::Count]);
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
        Task {
            id: "T6",
            description: "average price of laptops (⨊ avg, no grouping)",
            actions: 3,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.set_measure(MeasureSpec::property(id_of(s, "price")?));
                a.set_ops(vec![AggOp::Avg]);
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
        Task {
            id: "T7",
            description: "avg price by manufacturer (G + ⨊)",
            actions: 4,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.add_grouping(GroupSpec::property(id_of(s, "manufacturer")?));
                a.set_measure(MeasureSpec::property(id_of(s, "price")?));
                a.set_ops(vec![AggOp::Avg]);
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
        Task {
            id: "T8",
            description: "avg/sum/max price by manufacturer and origin (Fig 6.2)",
            actions: 6,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.add_grouping(GroupSpec::property(id_of(s, "manufacturer")?));
                a.add_grouping(GroupSpec::path(vec![
                    id_of(s, "manufacturer")?,
                    id_of(s, "origin")?,
                ]));
                a.set_measure(MeasureSpec::property(id_of(s, "price")?));
                a.set_ops(vec![AggOp::Avg, AggOp::Sum, AggOp::Max]);
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
        Task {
            id: "T9",
            description: "count laptops by release year (derived attribute)",
            actions: 4,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.add_grouping(
                    GroupSpec::property(id_of(s, "releaseDate")?).with_derived(DerivedFn::Year),
                );
                a.set_ops(vec![AggOp::Count]);
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
        Task {
            id: "T10",
            description: "avg price by origin for laptops with ≥2 USB ports (filter + path G)",
            actions: 6,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.select_range(
                    &[PathStep::fwd(id_of(s, "USBPorts")?)],
                    Some(Value::Int(2)),
                    None,
                )
                .map_err(|e| e.message)?;
                a.add_grouping(GroupSpec::path(vec![
                    id_of(s, "manufacturer")?,
                    id_of(s, "origin")?,
                ]));
                a.set_measure(MeasureSpec::property(id_of(s, "price")?));
                a.set_ops(vec![AggOp::Avg]);
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
        Task {
            id: "T11",
            description: "manufacturers whose avg price exceeds a threshold (HAVING via reload)",
            actions: 7,
            novel: true,
            run: |s| {
                let mut a = AnalyticsSession::start(s);
                a.select_class(id_of(s, "Laptop")?).map_err(|e| e.message)?;
                a.add_grouping(GroupSpec::property(id_of(s, "manufacturer")?));
                a.set_measure(MeasureSpec::property(id_of(s, "price")?));
                a.set_ops(vec![AggOp::Avg]);
                a.add_having(0, CondOp::Ge, Term::integer(1200));
                Ok(a.run().map_err(|e| e.message)?.len())
            },
        },
    ]
}

/// Per-task outcome of the simulated study.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    pub id: &'static str,
    pub description: &'static str,
    /// Users (of `n_users`) who completed the task.
    pub completed: usize,
    pub n_users: usize,
    /// Mean 1–5 rating across users.
    pub mean_rating: f64,
    /// Size of the (system-computed) ground-truth answer.
    pub answer_size: usize,
}

impl TaskOutcome {
    /// Completion percentage.
    pub fn completion_pct(&self) -> f64 {
        100.0 * self.completed as f64 / self.n_users as f64
    }
}

/// Run the simulated study: `n_users` stochastic users per task over a
/// generated products KG. Every task is first executed by the system itself
/// (the implementability check of §8.2); a task the system cannot answer
/// scores zero.
pub fn run_study(n_users: usize, seed: u64) -> Vec<TaskOutcome> {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(200, seed).generate());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    tasks()
        .into_iter()
        .map(|task| {
            let answer = (task.run)(&store);
            let (answer_size, feasible) = match answer {
                Ok(n) => (n, true),
                Err(_) => (0, false),
            };
            let mut completed = 0usize;
            let mut ratings = 0.0f64;
            for _ in 0..n_users {
                // per-action slip: 1.5% base, +2% on the novel analytics
                // actions (calibrated to Fig 8.1's shape)
                let slip: f64 = 0.015 + if task.novel { 0.02 } else { 0.0 };
                let p_success = (1.0 - slip).powi(task.actions as i32);
                let success = feasible && rng.gen_bool(p_success.clamp(0.0, 1.0));
                if success {
                    completed += 1;
                }
                let base = 5.0 - 0.12 * task.actions as f64 - if task.novel { 0.25 } else { 0.0 };
                let noise: f64 = rng.gen_range(-0.35..0.35);
                let penalty = if success { 0.0 } else { 1.2 };
                ratings += (base + noise - penalty).clamp(1.0, 5.0);
            }
            TaskOutcome {
                id: task.id,
                description: task.description,
                completed,
                n_users,
                mean_rating: ratings / n_users as f64,
                answer_size,
            }
        })
        .collect()
}

/// §8.2 implementability: every task must be expressible and answerable by
/// the system itself (independent of the user model).
pub fn implementability_check(store: &Store) -> Vec<(&'static str, Result<usize, String>)> {
    tasks().into_iter().map(|t| (t.id, (t.run)(store))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_datagen::products_fixture;

    #[test]
    fn all_tasks_implementable_on_generated_kg() {
        let mut store = Store::new();
        // seed chosen so the 4-company backbone includes a USA-origin
        // company (T4 clicks manufacturer/origin = USA)
        store.load_graph(&ProductsGenerator::new(150, 4).generate());
        for (id, result) in implementability_check(&store) {
            assert!(result.is_ok(), "task {id} failed: {result:?}");
            assert!(result.unwrap() > 0, "task {id} returned an empty answer");
        }
    }

    #[test]
    fn all_tasks_implementable_on_fixture() {
        // the small Fig 5.3 fixture lacks Company0; swap the value-click task
        // target accordingly by checking only that the system responds
        let mut store = Store::new();
        store.load_graph(&products_fixture());
        let results = implementability_check(&store);
        // T2 targets Company0 which the fixture doesn't have — every other
        // task must succeed
        for (id, result) in results {
            if id == "T2" {
                continue;
            }
            assert!(result.is_ok(), "task {id} failed on fixture: {result:?}");
        }
    }

    #[test]
    fn study_shape_matches_paper() {
        let outcomes = run_study(20, 42);
        assert_eq!(outcomes.len(), 11);
        let total_completion: f64 =
            outcomes.iter().map(TaskOutcome::completion_pct).sum::<f64>() / outcomes.len() as f64;
        let total_rating: f64 =
            outcomes.iter().map(|o| o.mean_rating).sum::<f64>() / outcomes.len() as f64;
        // the paper reports high acceptance: most tasks completed, ratings ≈4+
        assert!(total_completion > 80.0, "completion {total_completion}");
        assert!(total_rating > 3.5, "rating {total_rating}");
        // plain faceted tasks should not complete worse than the hardest
        // analytics task
        let t1 = outcomes.iter().find(|o| o.id == "T1").unwrap().completion_pct();
        let t11 = outcomes.iter().find(|o| o.id == "T11").unwrap().completion_pct();
        assert!(t1 >= t11);
    }

    #[test]
    fn study_deterministic_per_seed() {
        let a = run_study(20, 7);
        let b = run_study(20, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.completed, y.completed);
            assert!((x.mean_rating - y.mean_rating).abs() < 1e-12);
        }
    }
}
