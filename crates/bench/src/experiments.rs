//! Table/figure printers: each function regenerates one artifact of the
//! paper's evaluation (see DESIGN.md E1–E5).

use crate::queries::workload;
use crate::userstudy::{run_study, TaskOutcome};
use rdfa_core::{AnalyticsSession, EvalStrategy, GroupSpec, MeasureSpec};
use rdfa_datagen::{
    FaultModel, LatencyModel, ProductsGenerator, RetryPolicy, RetryingClient, SimulatedEndpoint,
    EX,
};
use rdfa_hifun::AggOp;
use rdfa_store::Store;
use std::time::Instant;

/// Dataset scales for the efficiency tables (product counts; ≈9 triples per
/// product).
pub fn scales(full: bool) -> Vec<usize> {
    if full {
        vec![1_000, 5_000, 20_000, 100_000]
    } else {
        vec![1_000, 5_000, 20_000]
    }
}

fn build(n_products: usize) -> Store {
    let mut store = Store::new();
    store.load_graph(&ProductsGenerator::new(n_products, 42).generate());
    store
}

/// Tables 6.1 / 6.2: mean end-to-end latency (ms) of the workload queries
/// against the simulated endpoint, per dataset scale, at the given latency
/// profile. When `faults` is active every request goes through a
/// [`RetryingClient`] and the table footer reports fault/retry counts.
/// Returns the table as text (also printed by the binary).
pub fn efficiency_table(
    model: LatencyModel,
    label: &str,
    full: bool,
    reps: usize,
    faults: FaultModel,
) -> String {
    efficiency_table_at(&scales(full), model, label, reps, faults)
}

fn efficiency_table_at(
    sizes: &[usize],
    model: LatencyModel,
    label: &str,
    reps: usize,
    faults: FaultModel,
) -> String {
    let stores: Vec<(usize, Store)> = sizes.iter().map(|&n| (n, build(n))).collect();
    let mut out = String::new();
    out.push_str(&format!("Efficiency — {label} (mean of {reps} runs, ms: compute + simulated network)\n"));
    out.push_str(&format!("{:<4} {:<46}", "id", "query"));
    for (n, store) in &stores {
        out.push_str(&format!(" {:>16}", format!("{}k trpl", store.len() / 1000)));
        let _ = n;
    }
    out.push('\n');
    out.push_str(&"-".repeat(52 + 17 * stores.len()));
    out.push('\n');
    let mut client = RetryingClient::new(RetryPolicy::default(), 17);
    let mut gave_up = 0u32;
    for wq in workload() {
        out.push_str(&format!("{:<4} {:<46}", wq.id, wq.description));
        for (i, (_, store)) in stores.iter().enumerate() {
            let mut endpoint = SimulatedEndpoint::with_faults(store, model, faults, 7 + i as u64);
            let mut total_ms = 0.0;
            let mut ok_reps = 0usize;
            for _ in 0..reps {
                if faults.is_active() {
                    match client.execute(&mut endpoint, &wq.sparql) {
                        Ok(r) => {
                            total_ms += r.total().as_secs_f64() * 1000.0;
                            ok_reps += 1;
                        }
                        Err(_) => gave_up += 1,
                    }
                } else {
                    let r = endpoint
                        .query(&wq.sparql)
                        .unwrap_or_else(|e| panic!("{}: {e}", wq.id));
                    total_ms += r.total().as_secs_f64() * 1000.0;
                    ok_reps += 1;
                }
            }
            if ok_reps > 0 {
                out.push_str(&format!(" {:>16.1}", total_ms / ok_reps as f64));
            } else {
                out.push_str(&format!(" {:>16}", "-"));
            }
        }
        out.push('\n');
    }
    if faults.is_active() {
        let s = client.stats();
        out.push_str(&format!(
            "faults active (error {:.0}%, timeout {:.0}%): {} attempts, {} transient faults retried, {} timeouts, {} gave up, simulated backoff {:.0} ms\n",
            faults.error_prob * 100.0,
            faults.timeout_prob * 100.0,
            s.attempts,
            s.transient_faults,
            s.timeouts,
            gave_up,
            s.backoff.as_secs_f64() * 1000.0,
        ));
    }
    out
}

/// Robustness experiment: the E1 workload against an endpoint injecting
/// transient faults at `fault_rate`, comparing a client that retries with
/// exponential backoff against one that gives up on the first failure.
/// Fully seeded, so the table is reproducible.
pub fn robustness_table(n_products: usize, fault_rate: f64, seed: u64) -> String {
    let store = build(n_products);
    let faults = FaultModel::transient(fault_rate);
    let mut naive_ep = SimulatedEndpoint::with_faults(&store, LatencyModel::off_peak(), faults, seed);
    let mut retry_ep = SimulatedEndpoint::with_faults(&store, LatencyModel::off_peak(), faults, seed);
    let mut client = RetryingClient::new(RetryPolicy::default(), seed ^ 0x5eed);
    let mut out = String::new();
    out.push_str(&format!(
        "Robustness — E1 workload under {:.0}% transient faults (seed {seed})\n",
        fault_rate * 100.0
    ));
    out.push_str(&format!("{:<4} {:<46} {:>9} {:>9}\n", "id", "query", "no-retry", "retry"));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    let mut naive_failures = 0u32;
    for wq in workload() {
        let naive_ok = naive_ep.request(&wq.sparql).is_ok();
        if !naive_ok {
            naive_failures += 1;
        }
        let retry_ok = client.execute(&mut retry_ep, &wq.sparql).is_ok();
        out.push_str(&format!(
            "{:<4} {:<46} {:>9} {:>9}\n",
            wq.id,
            wq.description,
            if naive_ok { "ok" } else { "FAIL" },
            if retry_ok { "ok" } else { "FAIL" },
        ));
    }
    let s = client.stats();
    out.push_str(&format!(
        "no-retry failed {naive_failures}/10; retry client: {} attempts, {} faults absorbed, {} gave up, simulated backoff {:.0} ms\n",
        s.attempts,
        s.transient_faults + s.timeouts,
        s.exhausted,
        s.backoff.as_secs_f64() * 1000.0,
    ));
    out
}

/// Figure 8.1: per-task completion percentage and mean rating.
pub fn fig8_1(n_users: usize, seed: u64) -> String {
    let outcomes = run_study(n_users, seed);
    let mut out = String::new();
    out.push_str(&format!(
        "Task-based evaluation — {n_users} simulated users per task (Fig 8.1)\n"
    ));
    out.push_str(&format!(
        "{:<4} {:<64} {:>12} {:>8}\n",
        "task", "description", "completion %", "rating"
    ));
    out.push_str(&"-".repeat(92));
    out.push('\n');
    for o in &outcomes {
        out.push_str(&format!(
            "{:<4} {:<64} {:>12.1} {:>8.2}\n",
            o.id,
            o.description,
            o.completion_pct(),
            o.mean_rating
        ));
    }
    out
}

/// Figure 8.2: total completion and total rating.
pub fn fig8_2(n_users: usize, seed: u64) -> String {
    let outcomes = run_study(n_users, seed);
    let (c, r) = totals(&outcomes);
    format!(
        "Totals (Fig 8.2): task completion {:.1}%  —  mean user rating {:.2}/5\n",
        c, r
    )
}

/// Mean completion % and mean rating across tasks.
pub fn totals(outcomes: &[TaskOutcome]) -> (f64, f64) {
    let c = outcomes.iter().map(TaskOutcome::completion_pct).sum::<f64>() / outcomes.len() as f64;
    let r = outcomes.iter().map(|o| o.mean_rating).sum::<f64>() / outcomes.len() as f64;
    (c, r)
}

/// Figure 8.3: the alternative implementation — evaluating the state's
/// analytic intention by HIFUN→SPARQL translation vs direct functional
/// evaluation, wall-clock compared on the same click sequences.
pub fn fig8_3(n_products: usize, reps: usize) -> String {
    let store = build(n_products);
    let id = |local: &str| store.lookup_iri(&format!("{EX}{local}")).unwrap();
    type Scenario<'a> = (&'a str, Box<dyn Fn(&mut AnalyticsSession)>);
    let scenarios: Vec<Scenario> = vec![
        (
            "avg price by manufacturer",
            Box::new(|a: &mut AnalyticsSession| {
                a.add_grouping(GroupSpec::property(
                    a.store().lookup_iri(&format!("{EX}manufacturer")).unwrap(),
                ));
                a.set_measure(MeasureSpec::property(
                    a.store().lookup_iri(&format!("{EX}price")).unwrap(),
                ));
                a.set_ops(vec![AggOp::Avg]);
            }),
        ),
        (
            "count by manufacturer origin (path)",
            Box::new(|a: &mut AnalyticsSession| {
                let man = a.store().lookup_iri(&format!("{EX}manufacturer")).unwrap();
                let origin = a.store().lookup_iri(&format!("{EX}origin")).unwrap();
                a.add_grouping(GroupSpec::path(vec![man, origin]));
                a.set_ops(vec![AggOp::Count]);
            }),
        ),
        (
            "avg+sum+max price by manufacturer",
            Box::new(|a: &mut AnalyticsSession| {
                let man = a.store().lookup_iri(&format!("{EX}manufacturer")).unwrap();
                let price = a.store().lookup_iri(&format!("{EX}price")).unwrap();
                a.add_grouping(GroupSpec::property(man));
                a.set_measure(MeasureSpec::property(price));
                a.set_ops(vec![AggOp::Avg, AggOp::Sum, AggOp::Max]);
            }),
        ),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "Alternative implementation (Fig 8.3) — {} triples, mean of {reps} runs\n",
        store.len()
    ));
    out.push_str(&format!(
        "{:<40} {:>22} {:>22}\n",
        "scenario", "HIFUN→SPARQL (ms)", "direct HIFUN (ms)"
    ));
    out.push_str(&"-".repeat(88));
    out.push('\n');
    for (name, setup) in &scenarios {
        let mut times = [0.0f64; 2];
        for (i, strategy) in [EvalStrategy::TranslatedSparql, EvalStrategy::DirectHifun]
            .into_iter()
            .enumerate()
        {
            for _ in 0..reps {
                let mut a = AnalyticsSession::start(&store).with_strategy(strategy);
                a.select_class(id("Laptop")).unwrap();
                setup(&mut a);
                let start = Instant::now();
                let frame = a.run().unwrap();
                times[i] += start.elapsed().as_secs_f64() * 1000.0;
                assert!(!frame.is_empty());
            }
            times[i] /= reps as f64;
        }
        out.push_str(&format!("{:<40} {:>22.2} {:>22.2}\n", name, times[0], times[1]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_table_renders_all_queries() {
        // minimal sizes/reps so the test stays fast
        let text = efficiency_table_for_test();
        for id in ["Q1", "Q5", "Q10"] {
            assert!(text.contains(id), "{text}");
        }
    }

    fn efficiency_table_for_test() -> String {
        let store = build(200);
        let mut endpoint = SimulatedEndpoint::new(&store, LatencyModel::off_peak(), 1);
        let mut out = String::new();
        for wq in workload() {
            let r = endpoint.query(&wq.sparql).unwrap();
            out.push_str(&format!("{} {:.1}\n", wq.id, r.total().as_secs_f64() * 1000.0));
        }
        out
    }

    #[test]
    fn fig8_outputs_render() {
        let f1 = fig8_1(5, 1);
        assert!(f1.contains("T11"));
        let f2 = fig8_2(5, 1);
        assert!(f2.contains("Totals"));
    }

    #[test]
    fn fig8_3_both_strategies_nonzero() {
        let text = fig8_3(200, 1);
        assert!(text.contains("avg price by manufacturer"));
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    fn retrying_client_beats_naive_on_e1_mix_under_faults() {
        // ISSUE acceptance: 30% transient faults, fixed seed — a no-retry
        // client observably fails part of the E1 mix while the retrying
        // client completes all ten queries
        let store = build(200);
        let faults = FaultModel::transient(0.3);
        let mut naive = SimulatedEndpoint::with_faults(&store, LatencyModel::local(), faults, 42);
        let naive_failures =
            workload().iter().filter(|wq| naive.request(&wq.sparql).is_err()).count();
        assert!(naive_failures > 0, "seed 42 must inject at least one fault into 10 requests");
        let mut ep = SimulatedEndpoint::with_faults(&store, LatencyModel::local(), faults, 42);
        let mut client = RetryingClient::new(RetryPolicy::default(), 7);
        for wq in workload() {
            assert!(client.execute(&mut ep, &wq.sparql).is_ok(), "{} failed with retries", wq.id);
        }
        let stats = client.stats();
        assert!(stats.transient_faults > 0, "retries must actually have absorbed faults");
        assert_eq!(stats.exhausted, 0);
    }

    #[test]
    fn robustness_table_renders_and_is_deterministic() {
        let t1 = robustness_table(200, 0.3, 42);
        let t2 = robustness_table(200, 0.3, 42);
        assert_eq!(t1, t2);
        assert!(t1.contains("Q1") && t1.contains("Q10"), "{t1}");
        assert!(t1.contains("no-retry failed"), "{t1}");
    }

    #[test]
    fn efficiency_table_reports_fault_counts_when_active() {
        let text = efficiency_table_at(
            &[200],
            LatencyModel::local(),
            "faulty (test)",
            1,
            FaultModel::transient(0.3),
        );
        assert!(text.contains("faults active"), "{text}");
        assert!(text.contains("attempts"), "{text}");
        // and stays silent when no faults are injected
        let clean =
            efficiency_table_at(&[200], LatencyModel::local(), "clean (test)", 1, FaultModel::none());
        assert!(!clean.contains("faults active"));
    }

    #[test]
    fn peak_table_exceeds_off_peak_on_average() {
        // one scale, few reps: peak mean must exceed off-peak mean
        let store = build(300);
        let avg = |model: LatencyModel| -> f64 {
            let mut ep = SimulatedEndpoint::new(&store, model, 3);
            workload()
                .iter()
                .map(|wq| ep.query(&wq.sparql).unwrap().total().as_secs_f64())
                .sum::<f64>()
        };
        assert!(avg(LatencyModel::peak()) > avg(LatencyModel::off_peak()));
    }
}
