//! Open-loop sustained-load driver for an HTTP endpoint.
//!
//! Closed-loop load generators (N workers in a request → response → repeat
//! loop) suffer *coordinated omission*: when the server stalls, the
//! generator stalls with it, so the offered load silently drops exactly
//! when the system is slowest and tail latencies come out flattering. This
//! driver is open-loop: request start times are drawn from a Poisson
//! process (exponential inter-arrival at a configured target rate) fixed
//! *before* any response is seen, and every arrival gets its own client
//! thread. A slow server faces a growing backlog, exactly like production.
//!
//! The driver mixes three traffic classes (query / update / facet) by
//! weight and can inject client-side chaos through the same
//! [`FaultModel`] the simulated-endpoint harness uses:
//!
//! - `error_prob` → the client disconnects mid-stream after reading a few
//!   bytes of the response (the server must cancel the query and release
//!   its admission slot);
//! - `timeout_prob` → the client is a slow reader (1 byte per
//!   `slow_read_delay`), which the server must shed via its write timeout
//!   rather than letting it pin a worker.
//!
//! Results aggregate into a [`LoadReport`]: p50/p99/p999 latency over
//! completed requests, shed rate, and per-outcome counts.

use rdfa_datagen::FaultModel;
use rdfa_prng::StdRng;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Relative weights for the three traffic classes. They need not sum to 1;
/// a zero weight disables the class.
#[derive(Debug, Clone, Copy)]
pub struct MixWeights {
    pub query: f64,
    pub update: f64,
    pub facet: f64,
}

impl Default for MixWeights {
    fn default() -> Self {
        // read-mostly interactive traffic: mostly queries, some facet
        // navigation, occasional updates
        MixWeights { query: 0.7, update: 0.1, facet: 0.2 }
    }
}

/// The request templates the driver cycles through, one pool per class.
/// Queries and facets are `GET` paths (already percent-encoded); updates
/// are SPARQL Update bodies `POST`ed to `/v1/update`.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    pub query_paths: Vec<String>,
    pub update_bodies: Vec<String>,
    pub facet_paths: Vec<String>,
}

/// Open-loop driver configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Target arrival rate (requests/second) of the Poisson process.
    pub target_rps: f64,
    /// How long to keep generating arrivals.
    pub duration: Duration,
    /// Traffic-class mix.
    pub mix: MixWeights,
    /// Client-side chaos: `error_prob` → mid-stream disconnect,
    /// `timeout_prob` → slow reader.
    pub faults: FaultModel,
    /// Pause between 1-byte reads for the slow-reader chaos client.
    pub slow_read_delay: Duration,
    /// Sips a slow reader takes before giving up and disconnecting; bounds
    /// how long a chaos client can outlive the schedule when the server's
    /// response fits in kernel socket buffers (nothing left to shed).
    pub slow_read_max_sips: usize,
    /// Per-request client socket timeout (a request slower than this is
    /// counted as a client-side timeout, not left hanging).
    pub client_timeout: Duration,
    /// Seed for arrivals, mix selection, and fault injection: the same
    /// seed offers the same request sequence.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            target_rps: 50.0,
            duration: Duration::from_secs(5),
            mix: MixWeights::default(),
            faults: FaultModel::none(),
            slow_read_delay: Duration::from_millis(250),
            slow_read_max_sips: 40,
            client_timeout: Duration::from_secs(30),
            seed: 0x10ad,
        }
    }
}

/// How a single request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// `200` and the body fully drained.
    Ok,
    /// `503` — shed by admission control (or the accept-queue overflow).
    Shed,
    /// Any other HTTP status.
    HttpError,
    /// Chaos client hung up mid-stream on purpose.
    InjectedDisconnect,
    /// Chaos slow-read session ended early: the server cut the connection
    /// (write-timeout shed — the desired behaviour) or the sip budget ran
    /// out with the body still incomplete.
    SlowReaderCut,
    /// Transport-level failure: connect refused/reset, client timeout.
    Transport,
}

/// One request's record: what it was, how it ended, how long it took from
/// scheduled start (queueing delay included — that is the point of
/// open-loop measurement) to last byte.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub outcome: Outcome,
    pub latency: Duration,
}

/// Aggregated results of one sustained-load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Arrivals the Poisson schedule offered.
    pub offered: u64,
    /// Requests that completed with `200` + full body.
    pub completed: u64,
    pub shed: u64,
    pub http_errors: u64,
    pub injected_disconnects: u64,
    pub slow_reader_cuts: u64,
    pub transport_errors: u64,
    /// Wall-clock of the whole run (last response, not last arrival).
    pub elapsed: Duration,
    /// Achieved arrival rate (offered / schedule window).
    pub achieved_rps: f64,
    /// Latency percentiles over *completed* requests, in milliseconds.
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    /// shed / offered.
    pub shed_rate: f64,
}

impl LoadReport {
    /// Render as a JSON object (no trailing newline) for bench artifacts.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"offered\": {},\n    \"completed\": {},\n    \"shed\": {},\n    \"http_errors\": {},\n    \"injected_disconnects\": {},\n    \"slow_reader_cuts\": {},\n    \"transport_errors\": {},\n    \"elapsed_ms\": {},\n    \"achieved_rps\": {:.1},\n    \"p50_ms\": {:.2},\n    \"p99_ms\": {:.2},\n    \"p999_ms\": {:.2},\n    \"shed_rate\": {:.4}\n  }}",
            self.offered,
            self.completed,
            self.shed,
            self.http_errors,
            self.injected_disconnects,
            self.slow_reader_cuts,
            self.transport_errors,
            self.elapsed.as_millis(),
            self.achieved_rps,
            self.p50_ms,
            self.p99_ms,
            self.p999_ms,
            self.shed_rate,
        )
    }
}

/// Draw one exponential inter-arrival gap for rate `rps`.
fn interarrival(rng: &mut StdRng, rps: f64) -> Duration {
    // u ∈ [0,1): clamp away from 1 so ln never sees 0
    let u = rng.next_f64().min(1.0 - 1e-12);
    Duration::from_secs_f64((-(1.0 - u).ln() / rps).min(10.0))
}

/// Nearest-rank percentile (q in [0,1]) of a sorted slice.
fn percentile(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e3
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Query,
    Update,
    Facet,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chaos {
    None,
    Disconnect,
    SlowRead,
}

/// Pick a traffic class by weight, skipping classes with an empty pool.
fn pick_class(rng: &mut StdRng, mix: MixWeights, wl: &Workload) -> Option<Class> {
    let w = [
        (Class::Query, if wl.query_paths.is_empty() { 0.0 } else { mix.query }),
        (Class::Update, if wl.update_bodies.is_empty() { 0.0 } else { mix.update }),
        (Class::Facet, if wl.facet_paths.is_empty() { 0.0 } else { mix.facet }),
    ];
    let total: f64 = w.iter().map(|(_, x)| x.max(0.0)).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.next_f64() * total;
    for (class, weight) in w {
        let weight = weight.max(0.0);
        if x < weight {
            return Some(class);
        }
        x -= weight;
    }
    Some(Class::Facet)
}

/// Execute one request against `addr` and classify the outcome. `started`
/// is the *scheduled* arrival time, so queueing behind a saturated server
/// is charged to latency (open-loop semantics).
fn run_request(
    addr: SocketAddr,
    request: &[u8],
    chaos: Chaos,
    slow_read_delay: Duration,
    slow_read_max_sips: usize,
    client_timeout: Duration,
    started: Instant,
) -> Sample {
    let finish = |outcome: Outcome| Sample { outcome, latency: started.elapsed() };
    let mut stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(_) => return finish(Outcome::Transport),
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(client_timeout));
    let _ = stream.set_write_timeout(Some(client_timeout));
    if stream.write_all(request).is_err() {
        return finish(Outcome::Transport);
    }

    match chaos {
        Chaos::Disconnect => {
            // read a few bytes so the response has started, then vanish
            let mut head = [0u8; 64];
            let _ = stream.read(&mut head);
            drop(stream);
            finish(Outcome::InjectedDisconnect)
        }
        Chaos::SlowRead => {
            // sip one byte at a time until the server cuts us off (write
            // timeout), the body ends, or the sip budget runs out
            let mut byte = [0u8; 1];
            for _ in 0..slow_read_max_sips {
                match stream.read(&mut byte) {
                    Ok(0) => return finish(Outcome::SlowReaderCut),
                    Ok(_) => std::thread::sleep(slow_read_delay),
                    Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                        return finish(Outcome::Transport)
                    }
                    Err(_) => return finish(Outcome::SlowReaderCut),
                }
            }
            finish(Outcome::SlowReaderCut)
        }
        Chaos::None => {
            let mut body = Vec::new();
            match stream.read_to_end(&mut body) {
                Ok(_) if !body.is_empty() => {
                    let status = body
                        .split(|&b| b == b' ')
                        .nth(1)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .unwrap_or("");
                    match status {
                        "200" => finish(Outcome::Ok),
                        "503" => finish(Outcome::Shed),
                        _ => finish(Outcome::HttpError),
                    }
                }
                _ => finish(Outcome::Transport),
            }
        }
    }
}

/// Run the open-loop workload against `addr` and aggregate a
/// [`LoadReport`]. Arrival times are scheduled up front from the seeded
/// Poisson process; each arrival gets its own thread so a stalled server
/// cannot slow the offered load down.
pub fn run(addr: SocketAddr, workload: &Workload, config: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let samples: Arc<Mutex<Vec<Sample>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    let mut counters = [0usize; 3];
    let mut next_at = Duration::ZERO;
    let mut offered = 0u64;

    while next_at < config.duration {
        let class = match pick_class(&mut rng, config.mix, workload) {
            Some(c) => c,
            None => break,
        };
        let chaos = if rng.gen_bool(config.faults.error_prob.clamp(0.0, 1.0)) {
            Chaos::Disconnect
        } else if rng.gen_bool(config.faults.timeout_prob.clamp(0.0, 1.0)) {
            Chaos::SlowRead
        } else {
            Chaos::None
        };
        let request = match class {
            Class::Query => {
                let i = counters[0];
                counters[0] += 1;
                let path = &workload.query_paths[i % workload.query_paths.len()];
                format!(
                    "GET {path} HTTP/1.1\r\nHost: bench\r\nAccept: text/csv\r\nConnection: close\r\n\r\n"
                )
                .into_bytes()
            }
            Class::Update => {
                let i = counters[1];
                counters[1] += 1;
                let body = &workload.update_bodies[i % workload.update_bodies.len()];
                format!(
                    "POST /v1/update HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .into_bytes()
            }
            Class::Facet => {
                let i = counters[2];
                counters[2] += 1;
                let path = &workload.facet_paths[i % workload.facet_paths.len()];
                format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
                    .into_bytes()
            }
        };

        // open-loop: wait for the scheduled arrival, then fire and forget
        let wait = next_at.saturating_sub(started.elapsed());
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        offered += 1;
        let samples = Arc::clone(&samples);
        let slow_read_delay = config.slow_read_delay;
        let slow_read_max_sips = config.slow_read_max_sips;
        let client_timeout = config.client_timeout;
        handles.push(std::thread::spawn(move || {
            let sample = run_request(
                addr,
                &request,
                chaos,
                slow_read_delay,
                slow_read_max_sips,
                client_timeout,
                Instant::now(),
            );
            samples.lock().unwrap_or_else(|e| e.into_inner()).push(sample);
        }));
        next_at += interarrival(&mut rng, config.target_rps.max(0.1));
    }

    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();
    let samples = samples.lock().unwrap_or_else(|e| e.into_inner());

    let count = |o: Outcome| samples.iter().filter(|s| s.outcome == o).count() as u64;
    let completed = count(Outcome::Ok);
    let shed = count(Outcome::Shed);
    let http_errors = count(Outcome::HttpError);
    let injected_disconnects = count(Outcome::InjectedDisconnect);
    let slow_reader_cuts = count(Outcome::SlowReaderCut);
    let transport_errors = count(Outcome::Transport);

    let mut latencies: Vec<Duration> = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Ok)
        .map(|s| s.latency)
        .collect();
    latencies.sort();

    LoadReport {
        offered,
        completed,
        shed,
        http_errors,
        injected_disconnects,
        slow_reader_cuts,
        transport_errors,
        elapsed,
        achieved_rps: offered as f64 / config.duration.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        p999_ms: percentile(&latencies, 0.999),
        shed_rate: shed as f64 / (offered.max(1)) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interarrival_mean_approximates_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let rps = 200.0;
        let n = 20_000;
        let total: f64 = (0..n).map(|_| interarrival(&mut rng, rps).as_secs_f64()).sum();
        let mean = total / n as f64;
        // exponential(λ=200) has mean 5ms; a 20k sample lands within 5%
        assert!((mean - 1.0 / rps).abs() < 0.05 / rps, "mean gap {mean}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.50), 50.0);
        assert_eq!(percentile(&ms, 0.99), 99.0);
        assert_eq!(percentile(&ms, 0.999), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[Duration::from_millis(7)], 0.999), 7.0);
    }

    #[test]
    fn mix_respects_empty_pools_and_weights() {
        let wl = Workload {
            query_paths: vec!["/v1/query?query=x".into()],
            update_bodies: vec![],
            facet_paths: vec!["/v1/facets".into()],
        };
        let mut rng = StdRng::seed_from_u64(7);
        let mix = MixWeights { query: 1.0, update: 1.0, facet: 1.0 };
        for _ in 0..200 {
            // updates have weight but no pool: never selected
            assert_ne!(pick_class(&mut rng, mix, &wl), Some(Class::Update));
        }
        let none = Workload::default();
        assert_eq!(pick_class(&mut rng, mix, &none), None);
    }

    #[test]
    fn report_json_is_well_formed() {
        let report = LoadReport {
            offered: 10,
            completed: 8,
            shed: 1,
            http_errors: 0,
            injected_disconnects: 1,
            slow_reader_cuts: 0,
            transport_errors: 0,
            elapsed: Duration::from_millis(1234),
            achieved_rps: 9.9,
            p50_ms: 3.0,
            p99_ms: 9.5,
            p999_ms: 9.9,
            shed_rate: 0.1,
        };
        let json = report.to_json();
        assert!(json.contains("\"offered\": 10"));
        assert!(json.contains("\"p999_ms\": 9.90"));
        assert!(json.contains("\"shed_rate\": 0.1000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
