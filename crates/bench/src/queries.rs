//! The efficiency-experiment query workload: the kinds of queries the
//! RDF-Analytics GUI issues during a session (§6.4) — facet/count queries,
//! simple analytic queries, path-expansion analytics, and result-restricted
//! (HAVING) analytics — expressed over the products KG.

use rdfa_datagen::EX;

/// One workload query: a stable id, a human description, and SPARQL text.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub id: &'static str,
    pub description: &'static str,
    pub sparql: String,
}

/// The ten queries of the efficiency workload (Tables 6.1/6.2 rows).
pub fn workload() -> Vec<WorkloadQuery> {
    let q = |id, description, body: String| WorkloadQuery {
        id,
        description,
        sparql: format!(
            "PREFIX ex: <{EX}>\nPREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n{body}"
        ),
    };
    vec![
        q(
            "Q1",
            "class facet: laptops count",
            "SELECT (COUNT(?x) AS ?n) WHERE { ?x rdf:type ex:Laptop . }".into(),
        ),
        q(
            "Q2",
            "property facet: manufacturers with counts",
            "SELECT ?m (COUNT(?x) AS ?n) WHERE { ?x rdf:type ex:Laptop . ?x ex:manufacturer ?m . } GROUP BY ?m".into(),
        ),
        q(
            "Q3",
            "value restriction: laptops of one manufacturer",
            "SELECT ?x WHERE { ?x rdf:type ex:Laptop . ?x ex:manufacturer ex:Company0 . }".into(),
        ),
        q(
            "Q4",
            "range filter: laptops with >= 2 USB ports",
            "SELECT ?x WHERE { ?x ex:USBPorts ?u . FILTER(?u >= 2) }".into(),
        ),
        q(
            "Q5",
            "path expansion markers: origins of manufacturers",
            "SELECT ?c (COUNT(?x) AS ?n) WHERE { ?x rdf:type ex:Laptop . ?x ex:manufacturer ?m . ?m ex:origin ?c . } GROUP BY ?c".into(),
        ),
        q(
            "Q6",
            "simple analytic: avg price by manufacturer",
            "SELECT ?m (AVG(?p) AS ?avg) WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . } GROUP BY ?m".into(),
        ),
        q(
            "Q7",
            "path analytic: avg price by manufacturer origin",
            "SELECT ?c (AVG(?p) AS ?avg) WHERE { ?x rdf:type ex:Laptop . ?x ex:manufacturer ?m . ?m ex:origin ?c . ?x ex:price ?p . } GROUP BY ?c".into(),
        ),
        q(
            "Q8",
            "derived attribute: count by release year",
            "SELECT (YEAR(?d) AS ?y) (COUNT(?x) AS ?n) WHERE { ?x ex:releaseDate ?d . } GROUP BY YEAR(?d)".into(),
        ),
        q(
            "Q9",
            "multi-aggregate with restriction (Fig 6.2 style)",
            "SELECT ?m (AVG(?p) AS ?a) (SUM(?p) AS ?s) (MAX(?p) AS ?x2) WHERE { ?x rdf:type ex:Laptop . ?x ex:manufacturer ?m . ?x ex:price ?p . ?x ex:USBPorts ?u . FILTER(?u >= 2 && ?u <= 4) } GROUP BY ?m".into(),
        ),
        q(
            "Q10",
            "result-restricted analytic (HAVING)",
            "SELECT ?m (AVG(?p) AS ?avg) WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . } GROUP BY ?m HAVING (AVG(?p) > 1200)".into(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_datagen::ProductsGenerator;
    use rdfa_sparql::Engine;
    use rdfa_store::Store;

    #[test]
    fn every_workload_query_parses_and_runs() {
        let mut store = Store::new();
        store.load_graph(&ProductsGenerator::new(100, 5).generate());
        for wq in workload() {
            let result = Engine::builder(&store).build().run(&wq.sparql);
            assert!(result.is_ok(), "{} failed: {:?}", wq.id, result.err());
        }
    }

    #[test]
    fn workload_has_distinct_ids() {
        let w = workload();
        let ids: std::collections::HashSet<_> = w.iter().map(|q| q.id).collect();
        assert_eq!(ids.len(), w.len());
    }
}
