//! Durability microbenchmarks: what each WAL fsync policy costs, and what
//! recovery and checkpointing cost at a given store size.
//!
//! One row per [`FsyncPolicy`]:
//!
//! | column | meaning |
//! |---|---|
//! | append ops/s | logged single-triple inserts per second |
//! | WAL bytes | log size after the append phase |
//! | replay ms | reopen time with the whole workload in the WAL |
//! | checkpoint ms | snapshot + WAL rotation time |
//! | snapshot bytes | size of the resulting snapshot file |
//! | reopen ms | reopen time after the checkpoint (snapshot, empty WAL) |
//!
//! The spread between the `always` and `never` rows is the price of the
//! durability guarantee; `every:N` sits between them with a bounded loss
//! window of N records.

use rdfa_datagen::ProductsGenerator;
use rdfa_store::{FsyncPolicy, PersistConfig, PersistentStore};
use std::path::PathBuf;
use std::time::Instant;

/// One fsync policy's measurements.
#[derive(Debug, Clone)]
pub struct DurabilityRow {
    pub policy: String,
    pub append_ops_per_s: f64,
    pub wal_bytes: u64,
    pub replay_ms: f64,
    pub checkpoint_ms: f64,
    pub snapshot_bytes: u64,
    pub reopen_ms: f64,
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdfa-bench-durability-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn policy_name(p: FsyncPolicy) -> String {
    match p {
        FsyncPolicy::Always => "always".to_owned(),
        FsyncPolicy::EveryN(n) => format!("every:{n}"),
        FsyncPolicy::Never => "never".to_owned(),
    }
}

fn config(fsync: FsyncPolicy) -> PersistConfig {
    PersistConfig { fsync, ..PersistConfig::default() }
}

/// Measure one policy over a `products`-sized workload.
pub fn measure(fsync: FsyncPolicy, products: usize) -> DurabilityRow {
    let dir = bench_dir(&policy_name(fsync));
    let workload = ProductsGenerator::new(products, 7).generate();
    let triples: Vec<_> = workload.into_triples();

    // 1. append phase: every triple is one logged insert
    let mut store = PersistentStore::open(&dir, config(fsync)).expect("open bench store");
    let t0 = Instant::now();
    for t in &triples {
        store.insert(t).expect("logged insert");
    }
    store.sync().expect("final sync");
    let append_s = t0.elapsed().as_secs_f64();
    let wal_bytes = file_size(&dir, "wal.0.log");
    drop(store);

    // 2. recovery with the whole workload in the WAL
    let t0 = Instant::now();
    let store = PersistentStore::open(&dir, config(fsync)).expect("reopen for replay");
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(store.recovery().wal_records_replayed, triples.len() as u64);

    // 3. checkpoint: snapshot + WAL rotation
    let t0 = Instant::now();
    store.checkpoint().expect("checkpoint");
    let checkpoint_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = file_size(&dir, "snapshot.1.bin");
    drop(store);

    // 4. recovery from the snapshot alone
    let t0 = Instant::now();
    let store = PersistentStore::open(&dir, config(fsync)).expect("reopen after checkpoint");
    let reopen_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(store);

    let _ = std::fs::remove_dir_all(&dir);
    DurabilityRow {
        policy: policy_name(fsync),
        append_ops_per_s: triples.len() as f64 / append_s.max(1e-9),
        wal_bytes,
        replay_ms,
        checkpoint_ms,
        snapshot_bytes,
        reopen_ms,
    }
}

fn file_size(dir: &std::path::Path, name: &str) -> u64 {
    std::fs::metadata(dir.join(name)).map(|m| m.len()).unwrap_or(0)
}

/// The durability table: one row per fsync policy over the same workload.
pub fn durability_table(products: usize) -> String {
    let policies = [FsyncPolicy::Always, FsyncPolicy::EveryN(64), FsyncPolicy::Never];
    let rows: Vec<DurabilityRow> = policies.iter().map(|&p| measure(p, products)).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "durability: WAL fsync policy trade-offs ({products} products)\n"
    ));
    out.push_str(
        "| policy   | append ops/s | WAL bytes | replay ms | checkpoint ms | snapshot bytes | reopen ms |\n",
    );
    out.push_str(
        "|----------|-------------:|----------:|----------:|--------------:|---------------:|----------:|\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "| {:<8} | {:>12.0} | {:>9} | {:>9.1} | {:>13.1} | {:>14} | {:>9.1} |\n",
            r.policy,
            r.append_ops_per_s,
            r.wal_bytes,
            r.replay_ms,
            r.checkpoint_ms,
            r.snapshot_bytes,
            r.reopen_ms
        ));
    }
    out.push_str(
        "(append = logged single-triple inserts; replay = reopen with the full workload in the WAL;\n reopen = recovery from the checkpoint snapshot alone)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_table_runs_and_reports_every_policy() {
        let table = durability_table(40);
        assert!(table.contains("always"), "{table}");
        assert!(table.contains("every:64"), "{table}");
        assert!(table.contains("never"), "{table}");
        assert!(table.contains("append ops/s"), "{table}");
    }

    #[test]
    fn measure_produces_sane_numbers() {
        let row = measure(FsyncPolicy::Never, 40);
        assert!(row.append_ops_per_s > 0.0);
        assert!(row.wal_bytes > 0);
        assert!(row.snapshot_bytes > 0);
    }
}
