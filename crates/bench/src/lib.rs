//! # rdfa-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Chapters 6 and 8); see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.
//!
//! - [`queries`] — the query workload Q1–Q10 over the products KG;
//! - [`userstudy`] — the simulated task-based evaluation (Figs 8.1/8.2);
//! - [`experiments`] — the printers for Tables 6.1/6.2 and Figs 8.1–8.3;
//! - [`durability`] — load/replay/checkpoint throughput per WAL fsync policy;
//! - [`load`] — open-loop (Poisson-arrival) sustained-load driver for the
//!   HTTP endpoint, with client-side chaos injection.
//!
//! Run `cargo run -p rdfa-bench --bin experiments -- all` to regenerate
//! everything.

pub mod durability;
pub mod experiments;
pub mod load;
pub mod microbench;
pub mod queries;
pub mod userstudy;
