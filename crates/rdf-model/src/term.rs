//! RDF terms: IRIs, blank nodes, and literals.
//!
//! A term is any element that may appear in a triple. Following the RDF 1.1
//! abstract syntax, subjects are IRIs or blank nodes, predicates are IRIs,
//! and objects may be any term (§2.1 of the paper).

use crate::vocab::xsd;
use std::fmt;

/// A literal: a lexical form plus a datatype IRI and an optional language tag.
///
/// Plain literals are represented with datatype `xsd:string`; language-tagged
/// literals with datatype `rdf:langString` and `lang = Some(..)`, mirroring
/// RDF 1.1 semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form exactly as written, e.g. `"42"` or `"2021-06-10"`.
    pub lexical: String,
    /// Datatype IRI, e.g. `xsd:integer`.
    pub datatype: String,
    /// BCP-47 language tag for `rdf:langString` literals.
    pub lang: Option<String>,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(s: impl Into<String>) -> Self {
        Literal { lexical: s.into(), datatype: xsd::STRING.to_owned(), lang: None }
    }

    /// A typed literal with the given datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), datatype: datatype.into(), lang: None }
    }

    /// A language-tagged string literal.
    pub fn lang_string(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: crate::vocab::rdf::LANG_STRING.to_owned(),
            lang: Some(lang.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), xsd::INTEGER)
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(v: f64) -> Self {
        Literal::typed(format_decimal(v), xsd::DECIMAL)
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(format!("{v:?}"), xsd::DOUBLE)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal::typed(v.to_string(), xsd::BOOLEAN)
    }

    /// An `xsd:date` literal from year/month/day.
    pub fn date(y: i32, m: u8, d: u8) -> Self {
        Literal::typed(format!("{y:04}-{m:02}-{d:02}"), xsd::DATE)
    }

    /// True when the datatype is one of the XSD numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.datatype.as_str(),
            xsd::INTEGER | xsd::DECIMAL | xsd::DOUBLE | xsd::FLOAT | xsd::INT | xsd::LONG
        )
    }
}

/// Format an `f64` as an `xsd:decimal` lexical form (no exponent).
fn format_decimal(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored in full (no namespace compression here).
    Iri(String),
    /// A blank node with its local label (without the `_:` prefix).
    Blank(String),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Construct a blank node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// Construct a plain string literal term.
    pub fn string(s: impl Into<String>) -> Self {
        Term::Literal(Literal::string(s))
    }

    /// Construct an `xsd:integer` literal term.
    pub fn integer(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// Construct an `xsd:decimal` literal term.
    pub fn decimal(v: f64) -> Self {
        Term::Literal(Literal::decimal(v))
    }

    /// Construct an `xsd:boolean` literal term.
    pub fn boolean(v: bool) -> Self {
        Term::Literal(Literal::boolean(v))
    }

    /// Construct an `xsd:date` literal term.
    pub fn date(y: i32, m: u8, d: u8) -> Self {
        Term::Literal(Literal::date(y, m, d))
    }

    /// True for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for [`Term::Literal`].
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True for [`Term::Blank`].
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// A short human-readable rendering: local name for IRIs, lexical form
    /// for literals. Used by facet and answer-frame displays.
    pub fn display_name(&self) -> String {
        match self {
            Term::Iri(s) => local_name(s).to_owned(),
            Term::Blank(b) => format!("_:{b}"),
            Term::Literal(l) => l.lexical.clone(),
        }
    }
}

/// The local part of an IRI: everything after the last `#`, `/`, or `:`
/// (the latter for `urn:`-style IRIs).
pub fn local_name(iri: &str) -> &str {
    let cut = iri.rfind(['#', '/', ':']).map(|i| i + 1).unwrap_or(0);
    &iri[cut..]
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")
        } else if self.datatype != xsd::STRING {
            write!(f, "^^<{}>", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Escape a literal's lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescape a literal lexical form read from N-Triples/Turtle input.
pub fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors_set_datatypes() {
        assert_eq!(Literal::integer(42).datatype, xsd::INTEGER);
        assert_eq!(Literal::boolean(true).lexical, "true");
        assert_eq!(Literal::date(2021, 6, 10).lexical, "2021-06-10");
        assert_eq!(Literal::string("hi").datatype, xsd::STRING);
        let l = Literal::lang_string("bonjour", "fr");
        assert_eq!(l.lang.as_deref(), Some("fr"));
    }

    #[test]
    fn display_renders_nt_syntax() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
        assert_eq!(Term::blank("x").to_string(), "_:x");
        assert_eq!(Term::string("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::integer(5).to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(
            Term::Literal(Literal::lang_string("hi", "en")).to_string(),
            "\"hi\"@en"
        );
    }

    #[test]
    fn local_name_cuts_hash_and_slash() {
        assert_eq!(local_name("http://ex.org/ns#Laptop"), "Laptop");
        assert_eq!(local_name("http://ex.org/ns/Laptop"), "Laptop");
        assert_eq!(local_name("Laptop"), "Laptop");
    }

    #[test]
    fn escape_roundtrip() {
        let s = "line1\nline2\t\"quoted\" back\\slash";
        assert_eq!(unescape_literal(&escape_literal(s)), s);
    }

    #[test]
    fn display_name_prefers_short_forms() {
        assert_eq!(Term::iri("http://ex.org#DELL").display_name(), "DELL");
        assert_eq!(Term::integer(2).display_name(), "2");
    }

    #[test]
    fn decimal_formatting_keeps_point() {
        assert_eq!(Literal::decimal(900.0).lexical, "900.0");
        assert_eq!(Literal::decimal(900.5).lexical, "900.5");
    }
}
