//! RDF terms: IRIs, blank nodes, and literals.
//!
//! A term is any element that may appear in a triple. Following the RDF 1.1
//! abstract syntax, subjects are IRIs or blank nodes, predicates are IRIs,
//! and objects may be any term (§2.1 of the paper).

use crate::vocab::xsd;
use std::fmt;

/// A literal: a lexical form plus a datatype IRI and an optional language tag.
///
/// Plain literals are represented with datatype `xsd:string`; language-tagged
/// literals with datatype `rdf:langString` and `lang = Some(..)`, mirroring
/// RDF 1.1 semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form exactly as written, e.g. `"42"` or `"2021-06-10"`.
    pub lexical: String,
    /// Datatype IRI, e.g. `xsd:integer`.
    pub datatype: String,
    /// BCP-47 language tag for `rdf:langString` literals.
    pub lang: Option<String>,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(s: impl Into<String>) -> Self {
        Literal { lexical: s.into(), datatype: xsd::STRING.to_owned(), lang: None }
    }

    /// A typed literal with the given datatype IRI.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), datatype: datatype.into(), lang: None }
    }

    /// A language-tagged string literal.
    pub fn lang_string(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: crate::vocab::rdf::LANG_STRING.to_owned(),
            lang: Some(lang.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), xsd::INTEGER)
    }

    /// An `xsd:decimal` literal.
    pub fn decimal(v: f64) -> Self {
        Literal::typed(format_decimal(v), xsd::DECIMAL)
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(format!("{v:?}"), xsd::DOUBLE)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal::typed(v.to_string(), xsd::BOOLEAN)
    }

    /// An `xsd:date` literal from year/month/day.
    pub fn date(y: i32, m: u8, d: u8) -> Self {
        Literal::typed(format!("{y:04}-{m:02}-{d:02}"), xsd::DATE)
    }

    /// True when the datatype is one of the XSD numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.datatype.as_str(),
            xsd::INTEGER | xsd::DECIMAL | xsd::DOUBLE | xsd::FLOAT | xsd::INT | xsd::LONG
        )
    }
}

/// Format an `f64` as an `xsd:decimal` lexical form (no exponent).
fn format_decimal(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored in full (no namespace compression here).
    Iri(String),
    /// A blank node with its local label (without the `_:` prefix).
    Blank(String),
    /// A literal value.
    Literal(Literal),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(s: impl Into<String>) -> Self {
        Term::Iri(s.into())
    }

    /// Construct a blank node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// Construct a plain string literal term.
    pub fn string(s: impl Into<String>) -> Self {
        Term::Literal(Literal::string(s))
    }

    /// Construct an `xsd:integer` literal term.
    pub fn integer(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// Construct an `xsd:decimal` literal term.
    pub fn decimal(v: f64) -> Self {
        Term::Literal(Literal::decimal(v))
    }

    /// Construct an `xsd:boolean` literal term.
    pub fn boolean(v: bool) -> Self {
        Term::Literal(Literal::boolean(v))
    }

    /// Construct an `xsd:date` literal term.
    pub fn date(y: i32, m: u8, d: u8) -> Self {
        Term::Literal(Literal::date(y, m, d))
    }

    /// True for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for [`Term::Literal`].
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True for [`Term::Blank`].
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// The IRI string if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal if this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// A short human-readable rendering: local name for IRIs, lexical form
    /// for literals. Used by facet and answer-frame displays.
    pub fn display_name(&self) -> String {
        match self {
            Term::Iri(s) => local_name(s).to_owned(),
            Term::Blank(b) => format!("_:{b}"),
            Term::Literal(l) => l.lexical.clone(),
        }
    }
}

/// The local part of an IRI: everything after the last `#`, `/`, or `:`
/// (the latter for `urn:`-style IRIs).
pub fn local_name(iri: &str) -> &str {
    let cut = iri.rfind(['#', '/', ':']).map(|i| i + 1).unwrap_or(0);
    &iri[cut..]
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(s) => write!(f, "<{s}>"),
            Term::Blank(b) => write!(f, "_:{b}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")
        } else if self.datatype != xsd::STRING {
            write!(f, "^^<{}>", self.datatype)
        } else {
            Ok(())
        }
    }
}

/// Escape a literal's lexical form for N-Triples/Turtle output. Control
/// characters outside the named escapes are written as `\uXXXX` so every
/// lexical form round-trips through the line-based N-Triples grammar.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 || c == '\u{7f}' => {
                out.push_str(&format!("\\u{:04X}", c as u32))
            }
            _ => out.push(c),
        }
    }
    out
}

/// An invalid escape sequence inside a literal, with the byte offset and the
/// offending lexeme fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EscapeError {
    /// Byte offset of the backslash that starts the bad sequence.
    pub pos: usize,
    /// The offending fragment, e.g. `\uD800` or `\uZZ`.
    pub lexeme: String,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for EscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in escape {:?} at offset {}", self.reason, self.lexeme, self.pos)
    }
}

impl std::error::Error for EscapeError {}

/// Unescape a literal lexical form read from N-Triples/Turtle input.
/// Lenient: malformed sequences are passed through verbatim. Use
/// [`unescape_literal_checked`] where malformed input must be rejected.
pub fn unescape_literal(s: &str) -> String {
    match unescape_inner(s, false) {
        Ok(out) => out,
        Err(_) => unreachable!("lenient unescape never fails"),
    }
}

/// Strict unescaping: rejects unknown escapes, truncated `\u`/`\U`
/// sequences, lone surrogates, and out-of-range code points.
pub fn unescape_literal_checked(s: &str) -> Result<String, EscapeError> {
    unescape_inner(s, true)
}

/// Zero-copy variant of [`unescape_literal`]: borrows the input when it
/// contains no backslash (the common case in bulk ingest) and allocates
/// only when unescaping actually rewrites bytes.
pub fn unescape_literal_cow(s: &str) -> std::borrow::Cow<'_, str> {
    if s.contains('\\') {
        std::borrow::Cow::Owned(unescape_literal(s))
    } else {
        std::borrow::Cow::Borrowed(s)
    }
}

/// Zero-copy variant of [`unescape_literal_checked`]; same borrowing rule
/// as [`unescape_literal_cow`].
pub fn unescape_literal_checked_cow(s: &str) -> Result<std::borrow::Cow<'_, str>, EscapeError> {
    if s.contains('\\') {
        unescape_inner(s, true).map(std::borrow::Cow::Owned)
    } else {
        Ok(std::borrow::Cow::Borrowed(s))
    }
}

fn unescape_inner(s: &str, strict: bool) -> Result<String, EscapeError> {
    let mut out = String::with_capacity(s.len());
    let mut iter = s.char_indices().peekable();
    while let Some((pos, c)) = iter.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        let err = |lexeme: &str, reason: &'static str| EscapeError {
            pos,
            lexeme: lexeme.to_owned(),
            reason,
        };
        match iter.next() {
            Some((_, 'n')) => out.push('\n'),
            Some((_, 'r')) => out.push('\r'),
            Some((_, 't')) => out.push('\t'),
            Some((_, 'b')) => out.push('\u{8}'),
            Some((_, 'f')) => out.push('\u{c}'),
            Some((_, '"')) => out.push('"'),
            Some((_, '\'')) => out.push('\''),
            Some((_, '\\')) => out.push('\\'),
            Some((_, u @ ('u' | 'U'))) => {
                let want = if u == 'u' { 4 } else { 8 };
                let mut hex = String::with_capacity(want);
                while hex.len() < want {
                    match iter.peek() {
                        Some(&(_, h)) if h.is_ascii_hexdigit() => {
                            hex.push(h);
                            iter.next();
                        }
                        _ => break,
                    }
                }
                let code = if hex.len() == want {
                    u32::from_str_radix(&hex, 16).ok()
                } else {
                    None
                };
                match code {
                    Some(cp) if (0xD800..=0xDFFF).contains(&cp) => {
                        if strict {
                            return Err(err(
                                &format!("\\{u}{hex}"),
                                "lone surrogate code point",
                            ));
                        }
                        out.push('\u{fffd}');
                    }
                    Some(cp) => match char::from_u32(cp) {
                        Some(ch) => out.push(ch),
                        None => {
                            if strict {
                                return Err(err(
                                    &format!("\\{u}{hex}"),
                                    "code point out of range",
                                ));
                            }
                            out.push('\u{fffd}');
                        }
                    },
                    None => {
                        if strict {
                            return Err(err(
                                &format!("\\{u}{hex}"),
                                "truncated unicode escape",
                            ));
                        }
                        out.push('\\');
                        out.push(u);
                        out.push_str(&hex);
                    }
                }
            }
            Some((_, other)) => {
                if strict {
                    return Err(err(&format!("\\{other}"), "unknown escape"));
                }
                out.push('\\');
                out.push(other);
            }
            None => {
                if strict {
                    return Err(err("\\", "trailing backslash"));
                }
                out.push('\\');
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors_set_datatypes() {
        assert_eq!(Literal::integer(42).datatype, xsd::INTEGER);
        assert_eq!(Literal::boolean(true).lexical, "true");
        assert_eq!(Literal::date(2021, 6, 10).lexical, "2021-06-10");
        assert_eq!(Literal::string("hi").datatype, xsd::STRING);
        let l = Literal::lang_string("bonjour", "fr");
        assert_eq!(l.lang.as_deref(), Some("fr"));
    }

    #[test]
    fn display_renders_nt_syntax() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
        assert_eq!(Term::blank("x").to_string(), "_:x");
        assert_eq!(Term::string("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::integer(5).to_string(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(
            Term::Literal(Literal::lang_string("hi", "en")).to_string(),
            "\"hi\"@en"
        );
    }

    #[test]
    fn local_name_cuts_hash_and_slash() {
        assert_eq!(local_name("http://ex.org/ns#Laptop"), "Laptop");
        assert_eq!(local_name("http://ex.org/ns/Laptop"), "Laptop");
        assert_eq!(local_name("Laptop"), "Laptop");
    }

    #[test]
    fn escape_roundtrip() {
        let s = "line1\nline2\t\"quoted\" back\\slash";
        assert_eq!(unescape_literal(&escape_literal(s)), s);
    }

    #[test]
    fn escape_roundtrip_control_and_unicode() {
        let s = "nul\u{0}bell\u{7}del\u{7f}λ中🦀";
        let escaped = escape_literal(s);
        assert!(escaped.contains("\\u0000"), "{escaped}");
        assert_eq!(unescape_literal(&escaped), s);
        assert_eq!(unescape_literal_checked(&escaped).unwrap(), s);
    }

    #[test]
    fn checked_unescape_rejects_lone_surrogates() {
        let err = unescape_literal_checked("a\\uD800b").unwrap_err();
        assert_eq!(err.reason, "lone surrogate code point");
        assert_eq!(err.lexeme, "\\uD800");
        assert_eq!(err.pos, 1);
        assert!(unescape_literal_checked("\\UDFFFFFFF").is_err());
        // lenient mode substitutes the replacement character instead
        assert_eq!(unescape_literal("a\\uD800b"), "a\u{fffd}b");
    }

    #[test]
    fn checked_unescape_rejects_malformed_sequences() {
        assert_eq!(unescape_literal_checked("\\uZZ").unwrap_err().reason, "truncated unicode escape");
        assert_eq!(unescape_literal_checked("\\u12").unwrap_err().reason, "truncated unicode escape");
        assert_eq!(unescape_literal_checked("\\q").unwrap_err().reason, "unknown escape");
        assert_eq!(unescape_literal_checked("tail\\").unwrap_err().reason, "trailing backslash");
        assert_eq!(unescape_literal_checked("\\u0041\\U0001F980").unwrap(), "A🦀");
    }

    #[test]
    fn cow_unescape_borrows_when_clean() {
        use std::borrow::Cow;
        assert!(matches!(unescape_literal_cow("plain text"), Cow::Borrowed(_)));
        assert!(matches!(unescape_literal_cow("a\\nb"), Cow::Owned(_)));
        assert_eq!(unescape_literal_cow("a\\nb"), unescape_literal("a\\nb"));
        assert!(matches!(unescape_literal_checked_cow("plain").unwrap(), Cow::Borrowed(_)));
        assert_eq!(unescape_literal_checked_cow("a\\tb").unwrap(), "a\tb");
        assert!(unescape_literal_checked_cow("\\uD800").is_err());
    }

    #[test]
    fn display_name_prefers_short_forms() {
        assert_eq!(Term::iri("http://ex.org#DELL").display_name(), "DELL");
        assert_eq!(Term::integer(2).display_name(), "2");
    }

    #[test]
    fn decimal_formatting_keeps_point() {
        assert_eq!(Literal::decimal(900.0).lexical, "900.0");
        assert_eq!(Literal::decimal(900.5).lexical, "900.5");
    }
}
