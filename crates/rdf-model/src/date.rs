//! Minimal proleptic-Gregorian calendar types for `xsd:date` and
//! `xsd:dateTime` literals.
//!
//! The paper's running example filters laptops by `releaseDate` ranges and
//! groups invoices by `month(date)` (§4.2.4, derived attributes), so the
//! engine needs ordered date values and YEAR/MONTH/DAY extraction — but not
//! time zones or leap seconds. We implement exactly that, from scratch.

use std::cmp::Ordering;
use std::fmt;

/// A calendar date (proleptic Gregorian, no time zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Construct a date, validating month/day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Parse `YYYY-MM-DD` (a leading `-` on the year is accepted).
    pub fn parse(s: &str) -> Option<Self> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let mut parts = body.splitn(3, '-');
        let y: i32 = parts.next()?.parse().ok()?;
        let m: u8 = parts.next()?.parse().ok()?;
        let d: u8 = parts.next()?.parse().ok()?;
        Date::new(if neg { -y } else { y }, m, d)
    }

    /// Days since 0000-03-01 (arbitrary epoch); monotone in calendar order.
    /// Standard civil-from-days inverse, used only for ordering & arithmetic.
    pub fn day_number(&self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = (self.month as i64 + 9) % 12;
        let doy = (153 * mp + 2) / 5 + self.day as i64 - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe
    }
}

impl PartialOrd for Date {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Date {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.year, self.month, self.day).cmp(&(other.year, other.month, other.day))
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A date with a time-of-day (`xsd:dateTime`, time zone ignored if present).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DateTime {
    pub date: Date,
    pub hour: u8,
    pub minute: u8,
    /// Seconds scaled by 1000 to carry milliseconds without floats.
    pub millisecond: u32,
}

impl DateTime {
    /// Construct a date-time, validating field ranges.
    pub fn new(date: Date, hour: u8, minute: u8, second: f64) -> Option<Self> {
        if hour > 23 || minute > 59 || !(0.0..60.0).contains(&second) {
            return None;
        }
        Some(DateTime { date, hour, minute, millisecond: (second * 1000.0) as u32 })
    }

    /// Parse `YYYY-MM-DDTHH:MM:SS[.sss][Z|±HH:MM]`; the zone suffix is
    /// accepted and ignored (all generated data is zone-less).
    pub fn parse(s: &str) -> Option<Self> {
        let (date_part, time_part) = s.split_once('T')?;
        let date = Date::parse(date_part)?;
        let time_part = time_part
            .trim_end_matches('Z')
            .split(['+'])
            .next()
            .unwrap_or(time_part);
        let mut it = time_part.splitn(3, ':');
        let h: u8 = it.next()?.parse().ok()?;
        let m: u8 = it.next()?.parse().ok()?;
        let sec: f64 = it.next().unwrap_or("0").parse().ok()?;
        DateTime::new(date, h, m, sec)
    }

    /// Total milliseconds since the `Date::day_number` epoch; monotone.
    pub fn timeline_ms(&self) -> i64 {
        self.date.day_number() * 86_400_000
            + self.hour as i64 * 3_600_000
            + self.minute as i64 * 60_000
            + self.millisecond as i64
    }
}

impl PartialOrd for DateTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DateTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.timeline_ms().cmp(&other.timeline_ms())
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}T{:02}:{:02}:{:02}",
            self.date,
            self.hour,
            self.minute,
            self.millisecond / 1000
        )?;
        if !self.millisecond.is_multiple_of(1000) {
            write!(f, ".{:03}", self.millisecond % 1000)?;
        }
        Ok(())
    }
}

/// True for Gregorian leap years.
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in the given month of the given year.
pub fn days_in_month(y: i32, m: u8) -> u8 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let d = Date::parse("2021-06-10").unwrap();
        assert_eq!(d.to_string(), "2021-06-10");
        let dt = DateTime::parse("2021-06-10T12:30:05").unwrap();
        assert_eq!(dt.to_string(), "2021-06-10T12:30:05");
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::parse("2021-13-01").is_none());
        assert!(Date::parse("2021-02-30").is_none());
        assert!(Date::parse("2021-00-10").is_none());
        assert!(Date::parse("garbage").is_none());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert!(Date::parse("2024-02-29").is_some());
        assert!(Date::parse("2023-02-29").is_none());
    }

    #[test]
    fn ordering_is_calendar_order() {
        let a = Date::parse("2020-12-31").unwrap();
        let b = Date::parse("2021-01-01").unwrap();
        assert!(a < b);
        let x = DateTime::parse("2021-01-01T00:00:00").unwrap();
        let y = DateTime::parse("2021-01-01T00:00:01").unwrap();
        assert!(x < y);
    }

    #[test]
    fn day_number_is_monotone_across_years() {
        let mut prev = Date::parse("1999-12-28").unwrap().day_number();
        for ymd in ["1999-12-29", "1999-12-30", "1999-12-31", "2000-01-01", "2000-01-02"] {
            let n = Date::parse(ymd).unwrap().day_number();
            assert_eq!(n, prev + 1, "at {ymd}");
            prev = n;
        }
    }

    #[test]
    fn datetime_accepts_zone_suffixes() {
        assert!(DateTime::parse("2021-01-01T00:00:00Z").is_some());
        assert!(DateTime::parse("2021-12-31T00:00:00+02:00").is_some());
    }
}
