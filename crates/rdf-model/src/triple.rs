//! Triples and in-memory graphs (unindexed; the indexed store is `rdfa-store`).

use crate::term::Term;
use std::fmt;

/// An RDF triple `(subject, predicate, object)`.
///
/// Formally any element of `(U ∪ B) × U × (U ∪ B ∪ L)` (§2.1); the type does
/// not enforce the positional restrictions so that parsers can report them as
/// errors with context instead.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    /// Construct a triple.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple { subject, predicate, object }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A simple growable set of triples, the unit of parsing and generation.
///
/// Any finite subset of the triple universe is an RDF graph (§2.1). `Graph`
/// preserves insertion order and allows duplicates; deduplication happens on
/// load into the indexed store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    triples: Vec<Triple>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Append one triple.
    pub fn push(&mut self, t: Triple) {
        self.triples.push(t);
    }

    /// Append a `(s, p, o)` built from the given terms.
    pub fn add(&mut self, s: Term, p: Term, o: Term) {
        self.triples.push(Triple::new(s, p, o));
    }

    /// Number of (possibly duplicate) triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Iterate over the triples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Triple> {
        self.triples.iter()
    }

    /// Consume the graph, yielding its triples.
    pub fn into_triples(self) -> Vec<Triple> {
        self.triples
    }

    /// Merge another graph into this one.
    pub fn extend(&mut self, other: Graph) {
        self.triples.extend(other.triples);
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        Graph { triples: iter.into_iter().collect() }
    }
}

impl IntoIterator for Graph {
    type Item = Triple;
    type IntoIter = std::vec::IntoIter<Triple>;
    fn into_iter(self) -> Self::IntoIter {
        self.triples.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_collects_and_iterates_in_order() {
        let mut g = Graph::new();
        g.add(Term::iri("s"), Term::iri("p"), Term::integer(1));
        g.add(Term::iri("s"), Term::iri("p"), Term::integer(2));
        assert_eq!(g.len(), 2);
        let objs: Vec<_> = g.iter().map(|t| t.object.clone()).collect();
        assert_eq!(objs, vec![Term::integer(1), Term::integer(2)]);
    }

    #[test]
    fn triple_display_is_ntriples_like() {
        let t = Triple::new(Term::iri("http://a"), Term::iri("http://b"), Term::string("c"));
        assert_eq!(t.to_string(), "<http://a> <http://b> \"c\" .");
    }
}
