//! Well-known RDF vocabularies used throughout the system.
//!
//! Only the constants the engine actually interprets are listed; user data may
//! of course use any IRIs.

/// The RDF core vocabulary.
pub mod rdf {
    pub const NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    pub const PROPERTY: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";
    pub const LANG_STRING: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";
}

/// RDF Schema: classes, properties, and the subsumption relations the
/// faceted-search model leverages (§5.2.1: `rdfs:subClassOf`,
/// `rdfs:subPropertyOf`, plus `rdfs:domain`/`rdfs:range` inference).
pub mod rdfs {
    pub const NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#Class";
    pub const SUB_CLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    pub const SUB_PROPERTY_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
    pub const DOMAIN: &str = "http://www.w3.org/2000/01/rdf-schema#domain";
    pub const RANGE: &str = "http://www.w3.org/2000/01/rdf-schema#range";
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const RESOURCE: &str = "http://www.w3.org/2000/01/rdf-schema#Resource";
    pub const LITERAL: &str = "http://www.w3.org/2000/01/rdf-schema#Literal";
}

/// XML Schema datatypes.
pub mod xsd {
    pub const NS: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const INT: &str = "http://www.w3.org/2001/XMLSchema#int";
    pub const LONG: &str = "http://www.w3.org/2001/XMLSchema#long";
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const FLOAT: &str = "http://www.w3.org/2001/XMLSchema#float";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
    pub const DATE_TIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const GYEAR: &str = "http://www.w3.org/2001/XMLSchema#gYear";
}

/// The few OWL terms the model recognises (functional properties are the
/// HIFUN applicability criterion of §4.1.1; named individuals seed the
/// initial faceted-search state, §5.3.2).
pub mod owl {
    pub const NS: &str = "http://www.w3.org/2002/07/owl#";
    pub const FUNCTIONAL_PROPERTY: &str = "http://www.w3.org/2002/07/owl#FunctionalProperty";
    pub const NAMED_INDIVIDUAL: &str = "http://www.w3.org/2002/07/owl#NamedIndividual";
    pub const CLASS: &str = "http://www.w3.org/2002/07/owl#Class";
}

#[cfg(test)]
mod tests {
    #[test]
    fn namespaces_prefix_their_terms() {
        assert!(super::rdf::TYPE.starts_with(super::rdf::NS));
        assert!(super::rdfs::SUB_CLASS_OF.starts_with(super::rdfs::NS));
        assert!(super::xsd::INTEGER.starts_with(super::xsd::NS));
        assert!(super::owl::FUNCTIONAL_PROPERTY.starts_with(super::owl::NS));
    }
}
