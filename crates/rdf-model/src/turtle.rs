//! A Turtle-subset parser and serializer.
//!
//! Supported syntax: `@prefix`/`PREFIX` declarations, IRIs (`<...>`),
//! prefixed names (`ex:Laptop`), the `a` keyword, blank node labels (`_:b`),
//! string literals with `^^datatype` or `@lang`, numeric and boolean
//! shorthand, predicate lists (`;`), object lists (`,`), and `#` comments.
//! Not supported (not needed by the system): collections `( )`, anonymous
//! blank nodes `[ ]`, multi-line strings.

use crate::term::{unescape_literal_cow, Literal, Term};
use crate::triple::{Graph, Triple};
use crate::vocab::{rdf, xsd};
use std::collections::HashMap;
use std::fmt;

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurtleError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for TurtleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "turtle parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TurtleError {}

/// Parse a Turtle document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, TurtleError> {
    Parser::new(input).parse_document()
}

/// A lexed token borrowing slices of the input document (the same
/// zero-copy discipline as the N-Triples lexer): raw literal bodies keep
/// their escapes and are only unescaped — and only allocated — when a
/// token is resolved into an owned [`Term`].
#[derive(Debug, Clone, PartialEq)]
enum Tok<'a> {
    Iri(&'a str),
    Prefixed(&'a str, &'a str),
    Blank(&'a str),
    Literal { raw: &'a str, datatype: Option<Box<Tok<'a>>>, lang: Option<&'a str> },
    Number(&'a str),
    Keyword(&'a str), // a, true, false, @prefix, PREFIX
    Punct(char),      // . ; ,
}

struct Parser<'a> {
    input: &'a str,
    /// Byte offset of the scanner cursor.
    pos: usize,
    line: usize,
    prefixes: HashMap<&'a str, &'a str>,
    lookahead: Option<Tok<'a>>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0, line: 1, prefixes: HashMap::new(), lookahead: None }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, TurtleError> {
        Err(TurtleError { line: self.line, message: msg.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Option<Tok<'a>>, TurtleError> {
        if let Some(t) = self.lookahead.take() {
            return Ok(Some(t));
        }
        self.skip_ws();
        let Some(c) = self.peek() else { return Ok(None) };
        match c {
            '<' => {
                self.bump();
                let body = self.rest();
                match body.find('>') {
                    Some(end) => {
                        self.advance_over(&body[..end]);
                        self.pos += 1; // '>'
                        Ok(Some(Tok::Iri(&body[..end])))
                    }
                    None => {
                        self.advance_over(body);
                        self.err("unterminated IRI")
                    }
                }
            }
            '"' => {
                self.bump();
                let body = self.rest();
                let mut escaped = false;
                let mut end = None;
                for (i, c) in body.char_indices() {
                    if c == '\n' {
                        return self.err("newline inside string literal");
                    }
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        end = Some(i);
                        break;
                    }
                }
                let Some(end) = end else {
                    self.advance_over(body);
                    return self.err("unterminated string literal");
                };
                let raw = &body[..end];
                self.pos += end + 1; // body + closing '"' (no newlines inside)
                // optional @lang or ^^datatype suffix
                match self.peek() {
                    Some('@') => {
                        self.bump();
                        let lang = self.take_while(|c| c.is_ascii_alphanumeric() || c == '-');
                        Ok(Some(Tok::Literal { raw, datatype: None, lang: Some(lang) }))
                    }
                    Some('^') => {
                        self.bump();
                        if self.bump() != Some('^') {
                            return self.err("expected ^^ before datatype");
                        }
                        let dt = self
                            .next_tok()?
                            .ok_or(TurtleError { line: self.line, message: "eof after ^^".into() })?;
                        Ok(Some(Tok::Literal { raw, datatype: Some(Box::new(dt)), lang: None }))
                    }
                    _ => Ok(Some(Tok::Literal { raw, datatype: None, lang: None })),
                }
            }
            '_' => {
                self.bump();
                if self.bump() != Some(':') {
                    return self.err("expected ':' after '_' in blank node");
                }
                let label = self.take_while(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
                Ok(Some(Tok::Blank(label)))
            }
            '.' | ';' | ',' => {
                self.bump();
                Ok(Some(Tok::Punct(c)))
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut s = self.take_while(|c| {
                    c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E'
                });
                // a trailing '.' is the statement terminator, not part of the number
                if s.ends_with('.') && !s[..s.len() - 1].contains('.') {
                    s = &s[..s.len() - 1];
                    self.lookahead = Some(Tok::Punct('.'));
                }
                Ok(Some(Tok::Number(s)))
            }
            '@' => {
                let start = self.pos;
                self.bump();
                self.take_while(|c| c.is_ascii_alphanumeric() || c == '_');
                Ok(Some(Tok::Keyword(&self.input[start..self.pos])))
            }
            _ => {
                // prefixed name, keyword, or bare prefix declaration
                let word = self.read_pname();
                if let Some(idx) = word.find(':') {
                    let (p, local) = word.split_at(idx);
                    Ok(Some(Tok::Prefixed(p, &local[1..])))
                } else {
                    Ok(Some(Tok::Keyword(word)))
                }
            }
        }
    }

    /// Advance the cursor over `s` (a prefix of the remaining input),
    /// keeping the line counter in sync with any newlines it contains.
    fn advance_over(&mut self, s: &str) {
        self.line += s.bytes().filter(|&b| b == b'\n').count();
        self.pos += s.len();
    }

    /// The longest prefix of the remaining input whose chars satisfy `f`;
    /// the cursor advances past it.
    fn take_while(&mut self, f: impl Fn(char) -> bool) -> &'a str {
        let body = self.rest();
        let end = body.find(|c| !f(c)).unwrap_or(body.len());
        self.advance_over(&body[..end]);
        &body[..end]
    }

    fn read_pname(&mut self) -> &'a str {
        // '.' inside a local name is allowed in full Turtle; our subset
        // treats it as a terminator, which all generated data respects.
        self.take_while(|c| !(c.is_whitespace() || matches!(c, '.' | ';' | ',' | '<' | '"' | '#')))
    }

    fn resolve(&self, tok: Tok<'a>) -> Result<Term, TurtleError> {
        match tok {
            Tok::Iri(s) => Ok(Term::iri(s)),
            Tok::Prefixed(p, local) => match self.prefixes.get(p) {
                Some(ns) => Ok(Term::Iri(format!("{ns}{local}"))),
                None => Err(TurtleError {
                    line: self.line,
                    message: format!("undeclared prefix '{p}:'"),
                }),
            },
            Tok::Blank(b) => Ok(Term::blank(b)),
            Tok::Literal { raw, datatype, lang } => {
                let lexical = unescape_literal_cow(raw).into_owned();
                if let Some(lang) = lang {
                    Ok(Term::Literal(Literal::lang_string(lexical, lang)))
                } else if let Some(dt) = datatype {
                    let dt_term = self.resolve(*dt)?;
                    match dt_term {
                        Term::Iri(iri) => Ok(Term::Literal(Literal::typed(lexical, iri))),
                        _ => Err(TurtleError {
                            line: self.line,
                            message: "datatype must be an IRI".into(),
                        }),
                    }
                } else {
                    Ok(Term::Literal(Literal::string(lexical)))
                }
            }
            Tok::Number(s) => {
                if s.contains(['.', 'e', 'E']) {
                    Ok(Term::Literal(Literal::typed(s, xsd::DECIMAL)))
                } else {
                    Ok(Term::Literal(Literal::typed(s, xsd::INTEGER)))
                }
            }
            Tok::Keyword(k) if k == "true" || k == "false" => {
                Ok(Term::Literal(Literal::typed(k, xsd::BOOLEAN)))
            }
            Tok::Keyword("a") => Ok(Term::iri(rdf::TYPE)),
            Tok::Keyword(k) => Err(TurtleError {
                line: self.line,
                message: format!("unexpected keyword '{k}'"),
            }),
            Tok::Punct(c) => Err(TurtleError {
                line: self.line,
                message: format!("unexpected '{c}'"),
            }),
        }
    }

    fn parse_document(mut self) -> Result<Graph, TurtleError> {
        let mut graph = Graph::new();
        while let Some(tok) = self.next_tok()? {
            match &tok {
                Tok::Keyword(k) if *k == "@prefix" || k.eq_ignore_ascii_case("prefix") => {
                    self.parse_prefix_decl(k.starts_with('@'))?;
                }
                Tok::Keyword(k) if *k == "@base" || k.eq_ignore_ascii_case("base") => {
                    // consume and ignore the base IRI (all data uses absolute IRIs)
                    let _ = self.next_tok()?;
                    if k.starts_with('@') {
                        self.expect_punct('.')?;
                    }
                }
                _ => {
                    self.parse_statement(tok, &mut graph)?;
                }
            }
        }
        Ok(graph)
    }

    fn parse_prefix_decl(&mut self, at_form: bool) -> Result<(), TurtleError> {
        let name = match self.next_tok()? {
            Some(Tok::Prefixed(p, "")) => p,
            Some(Tok::Keyword(k)) => k, // e.g. `prefix ex <...>` is tolerated
            other => return self.err(format!("expected prefix name, got {other:?}")),
        };
        let iri = match self.next_tok()? {
            Some(Tok::Iri(s)) => s,
            other => return self.err(format!("expected namespace IRI, got {other:?}")),
        };
        self.prefixes.insert(name, iri);
        if at_form {
            self.expect_punct('.')?;
        } else {
            // SPARQL-style PREFIX: optional trailing dot
            if let Some(tok) = self.next_tok()? {
                if tok != Tok::Punct('.') {
                    self.lookahead = Some(tok);
                }
            }
        }
        Ok(())
    }

    fn expect_punct(&mut self, c: char) -> Result<(), TurtleError> {
        match self.next_tok()? {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => self.err(format!("expected '{c}', got {other:?}")),
        }
    }

    fn parse_statement(&mut self, subj_tok: Tok, graph: &mut Graph) -> Result<(), TurtleError> {
        let subject = self.resolve(subj_tok)?;
        loop {
            let pred_tok = match self.next_tok()? {
                Some(t) => t,
                None => return self.err("unexpected end of input in statement"),
            };
            let predicate = self.resolve(pred_tok)?;
            loop {
                let obj_tok = match self.next_tok()? {
                    Some(t) => t,
                    None => return self.err("unexpected end of input before object"),
                };
                let object = self.resolve(obj_tok)?;
                graph.push(Triple::new(subject.clone(), predicate.clone(), object));
                match self.next_tok()? {
                    Some(Tok::Punct(',')) => continue,
                    Some(Tok::Punct(';')) => break,
                    Some(Tok::Punct('.')) => return Ok(()),
                    None => return Ok(()), // tolerate missing final dot
                    other => return self.err(format!("expected , ; or . got {other:?}")),
                }
            }
            // after ';' — allow a dangling ';' before '.'
            if let Some(tok) = self.next_tok()? {
                if tok == Tok::Punct('.') {
                    return Ok(());
                }
                self.lookahead = Some(tok);
            } else {
                return Ok(());
            }
        }
    }
}

/// Serialize a graph to Turtle, grouping triples by subject and compressing
/// IRIs with the provided `prefixes` (pairs of `(prefix, namespace)`).
pub fn serialize(graph: &Graph, prefixes: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (p, ns) in prefixes {
        out.push_str(&format!("@prefix {p}: <{ns}> .\n"));
    }
    if !prefixes.is_empty() {
        out.push('\n');
    }
    let shorten = |t: &Term| -> String {
        match t {
            Term::Iri(s) => {
                if s == rdf::TYPE {
                    return "a".to_owned();
                }
                for (p, ns) in prefixes {
                    if let Some(local) = s.strip_prefix(ns) {
                        if !local.is_empty()
                            && local.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                        {
                            return format!("{p}:{local}");
                        }
                    }
                }
                format!("<{s}>")
            }
            other => other.to_string(),
        }
    };
    let mut sorted: Vec<&Triple> = graph.iter().collect();
    sorted.sort();
    let mut prev_subject: Option<&Term> = None;
    for t in sorted {
        if prev_subject == Some(&t.subject) {
            out.push_str(" ;\n    ");
        } else {
            if prev_subject.is_some() {
                out.push_str(" .\n");
            }
            out.push_str(&shorten(&t.subject));
            out.push_str("\n    ");
            prev_subject = Some(&t.subject);
        }
        out.push_str(&shorten(&t.predicate));
        out.push(' ');
        out.push_str(&shorten(&t.object));
    }
    if prev_subject.is_some() {
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    #[test]
    fn parses_basic_triples() {
        let g = parse(
            r#"@prefix ex: <http://example.org/> .
               ex:laptop1 a ex:Laptop ;
                   ex:price 900 ;
                   ex:manufacturer ex:DELL , ex:Lenovo .
            "#,
        )
        .unwrap();
        assert_eq!(g.len(), 4);
        let t: Vec<_> = g.iter().collect();
        assert_eq!(t[0].predicate, Term::iri(rdf::TYPE));
        assert_eq!(t[1].object, Term::Literal(Literal::typed("900", xsd::INTEGER)));
        assert_eq!(t[3].object, Term::iri(format!("{EX}Lenovo")));
    }

    #[test]
    fn parses_typed_and_lang_literals() {
        let g = parse(
            r#"@prefix ex: <http://example.org/> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               ex:l ex:date "2021-06-10"^^xsd:date ; ex:name "laptop"@en ; ex:w 1.5 ; ex:ok true .
            "#,
        )
        .unwrap();
        let objs: Vec<_> = g.iter().map(|t| t.object.clone()).collect();
        assert_eq!(objs[0], Term::Literal(Literal::typed("2021-06-10", xsd::DATE)));
        assert_eq!(objs[1], Term::Literal(Literal::lang_string("laptop", "en")));
        assert_eq!(objs[2], Term::Literal(Literal::typed("1.5", xsd::DECIMAL)));
        assert_eq!(objs[3], Term::Literal(Literal::typed("true", xsd::BOOLEAN)));
    }

    #[test]
    fn undeclared_prefix_is_an_error() {
        let e = parse("ex:a ex:b ex:c .").unwrap_err();
        assert!(e.message.contains("undeclared prefix"));
    }

    #[test]
    fn comments_and_blank_nodes() {
        let g = parse(
            "# a comment\n_:b1 <http://p> _:b2 . # trailing\n",
        )
        .unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.iter().next().unwrap().subject, Term::blank("b1"));
    }

    #[test]
    fn serialize_then_parse_roundtrip() {
        let mut g = Graph::new();
        g.add(Term::iri(format!("{EX}a")), Term::iri(rdf::TYPE), Term::iri(format!("{EX}C")));
        g.add(Term::iri(format!("{EX}a")), Term::iri(format!("{EX}p")), Term::integer(5));
        g.add(
            Term::iri(format!("{EX}a")),
            Term::iri(format!("{EX}q")),
            Term::string("hello \"world\""),
        );
        let text = serialize(&g, &[("ex", EX)]);
        let g2 = parse(&text).unwrap();
        let mut a: Vec<_> = g.into_triples();
        let mut b: Vec<_> = g2.into_triples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn negative_numbers_and_decimals() {
        let g = parse("<http://s> <http://p> -42 . <http://s> <http://q> -1.5 .").unwrap();
        let objs: Vec<_> = g.iter().map(|t| t.object.clone()).collect();
        assert_eq!(objs[0], Term::Literal(Literal::typed("-42", xsd::INTEGER)));
        assert_eq!(objs[1], Term::Literal(Literal::typed("-1.5", xsd::DECIMAL)));
    }

    #[test]
    fn integer_followed_by_statement_dot() {
        let g = parse("<http://s> <http://p> 7 .").unwrap();
        assert_eq!(
            g.iter().next().unwrap().object,
            Term::Literal(Literal::typed("7", xsd::INTEGER))
        );
    }
}
