//! N-Triples line-based serialization: one triple per line, absolute IRIs.
//!
//! This is both the bulk export/import format of the benchmark harness and
//! the **durability format** of the persistence layer (`rdfa-store`'s WAL
//! records carry N-Triples payloads, and the snapshot fallback exporter
//! writes it), so parsing is strict: malformed escapes, lone surrogates and
//! truncated terms are rejected with a typed error carrying the line number
//! and the offending lexeme rather than silently repaired.

use crate::term::{unescape_literal_checked_cow, Literal, Term};
use crate::triple::{Graph, Triple};
use crate::vocab::{rdf, xsd};
use std::borrow::Cow;
use std::fmt;

/// What went wrong on an N-Triples line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NtriplesErrorKind {
    /// `<` without a closing `>`.
    UnterminatedIri,
    /// `"` without a closing unescaped `"`.
    UnterminatedLiteral,
    /// `^^<` without a closing `>`.
    UnterminatedDatatype,
    /// The line does not end with `.`.
    MissingDot,
    /// A term starts with a character no term can start with.
    UnparsableTerm,
    /// A literal contains a malformed or forbidden escape sequence
    /// (unknown escape, truncated `\u`, lone surrogate, …).
    BadEscape { reason: &'static str },
}

impl NtriplesErrorKind {
    fn message(&self) -> String {
        match self {
            NtriplesErrorKind::UnterminatedIri => "unterminated IRI".to_owned(),
            NtriplesErrorKind::UnterminatedLiteral => "unterminated literal".to_owned(),
            NtriplesErrorKind::UnterminatedDatatype => "unterminated datatype IRI".to_owned(),
            NtriplesErrorKind::MissingDot => "expected terminating '.'".to_owned(),
            NtriplesErrorKind::UnparsableTerm => "cannot parse term".to_owned(),
            NtriplesErrorKind::BadEscape { reason } => format!("bad escape: {reason}"),
        }
    }
}

/// A typed N-Triples parse error: the 1-based line number, the offending
/// lexeme (the unparsable fragment, truncated for display), and the kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtriplesError {
    /// 1-based line number within the parsed document.
    pub line: usize,
    /// The offending fragment of the line.
    pub lexeme: String,
    /// What went wrong.
    pub kind: NtriplesErrorKind,
}

impl fmt::Display for NtriplesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N-Triples line {}: {} at {:?}",
            self.line,
            self.kind.message(),
            self.lexeme
        )
    }
}

impl std::error::Error for NtriplesError {}

/// A line-local error from the zero-copy lexer, upgraded to
/// [`NtriplesError`] once the caller knows the document line number —
/// chunked parsers lex lines whose absolute position is only known after
/// per-chunk line counts are summed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending fragment, truncated for display.
    pub lexeme: String,
    /// What went wrong.
    pub kind: NtriplesErrorKind,
}

impl LexError {
    fn new(lexeme: &str, kind: NtriplesErrorKind) -> Self {
        // keep error lexemes bounded so a pathological line cannot balloon
        // error messages (and WAL recovery reports) without limit
        let mut short: String = lexeme.chars().take(64).collect();
        if short.len() < lexeme.len() {
            short.push('…');
        }
        LexError { lexeme: short, kind }
    }

    /// Attach the 1-based document line number.
    pub fn at_line(self, line: usize) -> NtriplesError {
        NtriplesError { line, lexeme: self.lexeme, kind: self.kind }
    }
}

/// A borrowed view of one term as lexed from an N-Triples line: IRIs and
/// blank-node labels are slices of the input, and literal lexical forms
/// borrow unless unescaping had to rewrite bytes. No `String` is allocated
/// per term until interning decides the term is new.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermRef<'a> {
    /// An IRI, without the surrounding `<` `>`.
    Iri(&'a str),
    /// A blank node label, without the `_:` prefix.
    Blank(&'a str),
    /// A literal; `datatype` defaults to `xsd:string` and is
    /// `rdf:langString` when `lang` is set, mirroring [`Literal`].
    Literal {
        lexical: Cow<'a, str>,
        datatype: &'a str,
        lang: Option<&'a str>,
    },
}

impl TermRef<'_> {
    /// Allocate an owned [`Term`] equal to this view.
    pub fn to_term(&self) -> Term {
        match self {
            TermRef::Iri(s) => Term::iri(*s),
            TermRef::Blank(s) => Term::blank(*s),
            TermRef::Literal { lexical, datatype, lang } => Term::Literal(Literal {
                lexical: lexical.clone().into_owned(),
                datatype: (*datatype).to_owned(),
                lang: lang.map(str::to_owned),
            }),
        }
    }
}

impl PartialEq<Term> for TermRef<'_> {
    fn eq(&self, other: &Term) -> bool {
        match (self, other) {
            (TermRef::Iri(a), Term::Iri(b)) => *a == b,
            (TermRef::Blank(a), Term::Blank(b)) => *a == b,
            (TermRef::Literal { lexical, datatype, lang }, Term::Literal(l)) => {
                *lexical == l.lexical && *datatype == l.datatype && *lang == l.lang.as_deref()
            }
            _ => false,
        }
    }
}

impl PartialEq<TermRef<'_>> for Term {
    fn eq(&self, other: &TermRef<'_>) -> bool {
        other == self
    }
}

/// Serialize a graph as N-Triples.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Parse an N-Triples document. A leading UTF-8 BOM is skipped; CRLF line
/// endings, blank lines and `#` comments are accepted. Malformed lines are
/// reported with their 1-based line number and offending lexeme.
pub fn parse(input: &str) -> Result<Graph, NtriplesError> {
    let input = strip_bom(input);
    let mut graph = Graph::new();
    for (i, line) in input.lines().enumerate() {
        match lex_line(line).map_err(|e| e.at_line(i + 1))? {
            Some([s, p, o]) => graph.push(Triple::new(s.to_term(), p.to_term(), o.to_term())),
            None => continue,
        }
    }
    Ok(graph)
}

/// Strip a leading UTF-8 byte-order mark.
pub fn strip_bom(input: &str) -> &str {
    input.strip_prefix('\u{feff}').unwrap_or(input)
}

/// Split a document into at most `n` chunks at newline boundaries, so each
/// chunk is a whole number of lines and chunks concatenate back to the
/// input. Safe for N-Triples because a raw `\n` byte can never occur
/// *inside* a well-formed term — newlines in literals are escaped as the
/// two-character sequence `\n` — so every `\n` byte is a line terminator.
/// (A raw newline inside a literal is malformed input; the line-based
/// parser rejects each half exactly as the sequential path would.)
pub fn split_chunks(input: &str, n: usize) -> Vec<&str> {
    let mut out = Vec::with_capacity(n.max(1));
    let bytes = input.as_bytes();
    let mut start = 0usize;
    for i in 1..n {
        let target = input.len() * i / n;
        if target <= start {
            continue;
        }
        match bytes[target..].iter().position(|&b| b == b'\n') {
            Some(off) => {
                let end = target + off + 1;
                out.push(&input[start..end]);
                start = end;
            }
            None => break,
        }
    }
    if start < input.len() || out.is_empty() {
        out.push(&input[start..]);
    }
    out
}

/// Lex one N-Triples line with the zero-copy lexer. Returns `Ok(None)` for
/// blank lines and `#` comments, and borrowed `[subject, predicate,
/// object]` views otherwise. A trailing `\r` (CRLF input split by a chunker
/// rather than [`str::lines`]) is tolerated.
pub fn lex_line(line: &str) -> Result<Option<[TermRef<'_>; 3]>, LexError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut rest = line;
    let subject = take_term_ref(&mut rest)?;
    let predicate = take_term_ref(&mut rest)?;
    let object = take_term_ref(&mut rest)?;
    let rest = rest.trim();
    if rest != "." {
        return Err(LexError::new(rest, NtriplesErrorKind::MissingDot));
    }
    Ok(Some([subject, predicate, object]))
}

fn take_term_ref<'a>(rest: &mut &'a str) -> Result<TermRef<'a>, LexError> {
    *rest = rest.trim_start();
    let s = *rest;
    if let Some(body) = s.strip_prefix('<') {
        let end = body
            .find('>')
            .ok_or_else(|| LexError::new(s, NtriplesErrorKind::UnterminatedIri))?;
        *rest = &body[end + 1..];
        Ok(TermRef::Iri(&body[..end]))
    } else if let Some(body) = s.strip_prefix("_:") {
        let end = body
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(body.len());
        *rest = &body[end..];
        Ok(TermRef::Blank(&body[..end]))
    } else if let Some(body) = s.strip_prefix('"') {
        // closing-quote scan: in the common escape-free case the first quote
        // closes the literal and a pair of substring searches finds it;
        // literals containing backslashes fall back to the per-char scan
        let end = match (body.find('"'), body.find('\\')) {
            (Some(q), None) => Some(q),
            (Some(q), Some(b)) if q < b => Some(q),
            _ => {
                let mut escaped = false;
                let mut end = None;
                for (i, c) in body.char_indices() {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        end = Some(i);
                        break;
                    }
                }
                end
            }
        };
        let end = end.ok_or_else(|| LexError::new(s, NtriplesErrorKind::UnterminatedLiteral))?;
        let raw = &body[..end];
        let lexical = unescape_literal_checked_cow(raw).map_err(|e| {
            LexError::new(&e.lexeme, NtriplesErrorKind::BadEscape { reason: e.reason })
        })?;
        let mut tail = &body[end + 1..];
        let term = if let Some(t) = tail.strip_prefix("^^<") {
            let close = t
                .find('>')
                .ok_or_else(|| LexError::new(tail, NtriplesErrorKind::UnterminatedDatatype))?;
            let dt = &t[..close];
            tail = &t[close + 1..];
            TermRef::Literal { lexical, datatype: dt, lang: None }
        } else if let Some(t) = tail.strip_prefix('@') {
            let end = t
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                .unwrap_or(t.len());
            let lang = &t[..end];
            tail = &t[end..];
            TermRef::Literal { lexical, datatype: rdf::LANG_STRING, lang: Some(lang) }
        } else {
            TermRef::Literal { lexical, datatype: xsd::STRING, lang: None }
        };
        *rest = tail;
        Ok(term)
    } else {
        Err(LexError::new(s, NtriplesErrorKind::UnparsableTerm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut g = Graph::new();
        g.add(Term::iri("http://s"), Term::iri("http://p"), Term::integer(42));
        g.add(Term::blank("b0"), Term::iri("http://p"), Term::string("x \"y\" z"));
        g.add(
            Term::iri("http://s"),
            Term::iri("http://p"),
            Term::Literal(Literal::lang_string("bonjour", "fr")),
        );
        let text = serialize(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g.into_triples(), g2.into_triples());
    }

    #[test]
    fn reports_line_numbers_and_lexeme() {
        let err = parse("<http://s> <http://p> <http://o> .\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, NtriplesErrorKind::UnparsableTerm);
        assert!(err.lexeme.starts_with("bogus"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse("# header\n\n<http://s> <http://p> \"v\" .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn accepts_bom_and_crlf() {
        let g = parse("\u{feff}<http://s> <http://p> \"v\" .\r\n<http://s> <http://p> \"w\" .\r\n")
            .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn rejects_lone_surrogate_escape() {
        let err = parse("<http://s> <http://p> \"\\uD83D\" .\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(
            matches!(err.kind, NtriplesErrorKind::BadEscape { reason } if reason.contains("surrogate")),
            "{err:?}"
        );
        assert_eq!(err.lexeme, "\\uD83D");
    }

    #[test]
    fn lexer_borrows_unless_escapes_rewrite() {
        let line = r#"<http://s> <http://p> "plain value" ."#;
        let [_, _, o] = lex_line(line).unwrap().unwrap();
        match &o {
            TermRef::Literal { lexical: Cow::Borrowed(_), .. } => {}
            other => panic!("expected borrowed lexical, got {other:?}"),
        }
        let line = r#"<http://s> <http://p> "two\nlines" ."#;
        let [_, _, o] = lex_line(line).unwrap().unwrap();
        match &o {
            TermRef::Literal { lexical: Cow::Owned(s), .. } => assert_eq!(s, "two\nlines"),
            other => panic!("expected owned lexical, got {other:?}"),
        }
    }

    #[test]
    fn term_ref_matches_owned_term() {
        let line = r#"<http://s> <http://p> "bonjour"@fr ."#;
        let [s, p, o] = lex_line(line).unwrap().unwrap();
        assert_eq!(s, Term::iri("http://s"));
        assert_eq!(p.to_term(), Term::iri("http://p"));
        assert_eq!(o, Term::Literal(Literal::lang_string("bonjour", "fr")));
        assert_ne!(s, Term::blank("http://s"));
        assert!(lex_line("# comment").unwrap().is_none());
        assert!(lex_line("   ").unwrap().is_none());
    }

    #[test]
    fn chunks_concatenate_and_split_on_newlines() {
        let doc = "<http://s> <http://p> \"a\\nb\" .\n<http://s> <http://p> \"c\" .\r\n\
                   # comment\n<http://s2> <http://p> \"d\" .";
        for n in 1..=8 {
            let chunks = split_chunks(doc, n);
            assert_eq!(chunks.concat(), doc, "n={n}");
            for c in &chunks[..chunks.len() - 1] {
                assert!(c.ends_with('\n'), "mid chunk must end at a line break: {c:?}");
            }
            let total: usize = chunks
                .iter()
                .map(|c| c.lines().flat_map(lex_line).flatten().count())
                .sum();
            assert_eq!(total, 3, "n={n}");
        }
        assert_eq!(split_chunks("", 4), vec![""]);
    }

    #[test]
    fn typed_errors_cover_each_failure_shape() {
        let kind = |text: &str| parse(text).unwrap_err().kind;
        assert_eq!(kind("<http://s <http://p ."), NtriplesErrorKind::UnterminatedIri);
        assert_eq!(kind("<http://s> <http://p> \"v ."), NtriplesErrorKind::UnterminatedLiteral);
        assert_eq!(
            kind("<http://s> <http://p> \"v\"^^<http://t ."),
            NtriplesErrorKind::UnterminatedDatatype
        );
        assert_eq!(kind("<http://s> <http://p> \"v\""), NtriplesErrorKind::MissingDot);
        assert_eq!(kind("<http://s> <http://p> 42 ."), NtriplesErrorKind::UnparsableTerm);
    }
}
