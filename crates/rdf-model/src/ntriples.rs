//! N-Triples line-based serialization: one triple per line, absolute IRIs.
//!
//! This is both the bulk export/import format of the benchmark harness and
//! the **durability format** of the persistence layer (`rdfa-store`'s WAL
//! records carry N-Triples payloads, and the snapshot fallback exporter
//! writes it), so parsing is strict: malformed escapes, lone surrogates and
//! truncated terms are rejected with a typed error carrying the line number
//! and the offending lexeme rather than silently repaired.

use crate::term::{unescape_literal_checked, Literal, Term};
use crate::triple::{Graph, Triple};
use crate::vocab::xsd;
use std::fmt;

/// What went wrong on an N-Triples line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NtriplesErrorKind {
    /// `<` without a closing `>`.
    UnterminatedIri,
    /// `"` without a closing unescaped `"`.
    UnterminatedLiteral,
    /// `^^<` without a closing `>`.
    UnterminatedDatatype,
    /// The line does not end with `.`.
    MissingDot,
    /// A term starts with a character no term can start with.
    UnparsableTerm,
    /// A literal contains a malformed or forbidden escape sequence
    /// (unknown escape, truncated `\u`, lone surrogate, …).
    BadEscape { reason: &'static str },
}

impl NtriplesErrorKind {
    fn message(&self) -> String {
        match self {
            NtriplesErrorKind::UnterminatedIri => "unterminated IRI".to_owned(),
            NtriplesErrorKind::UnterminatedLiteral => "unterminated literal".to_owned(),
            NtriplesErrorKind::UnterminatedDatatype => "unterminated datatype IRI".to_owned(),
            NtriplesErrorKind::MissingDot => "expected terminating '.'".to_owned(),
            NtriplesErrorKind::UnparsableTerm => "cannot parse term".to_owned(),
            NtriplesErrorKind::BadEscape { reason } => format!("bad escape: {reason}"),
        }
    }
}

/// A typed N-Triples parse error: the 1-based line number, the offending
/// lexeme (the unparsable fragment, truncated for display), and the kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtriplesError {
    /// 1-based line number within the parsed document.
    pub line: usize,
    /// The offending fragment of the line.
    pub lexeme: String,
    /// What went wrong.
    pub kind: NtriplesErrorKind,
}

impl fmt::Display for NtriplesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N-Triples line {}: {} at {:?}",
            self.line,
            self.kind.message(),
            self.lexeme
        )
    }
}

impl std::error::Error for NtriplesError {}

/// A line-local error, upgraded to [`NtriplesError`] once the line number
/// is known.
struct LineError {
    lexeme: String,
    kind: NtriplesErrorKind,
}

impl LineError {
    fn new(lexeme: &str, kind: NtriplesErrorKind) -> Self {
        // keep error lexemes bounded so a pathological line cannot balloon
        // error messages (and WAL recovery reports) without limit
        let mut short: String = lexeme.chars().take(64).collect();
        if short.len() < lexeme.len() {
            short.push('…');
        }
        LineError { lexeme: short, kind }
    }
}

/// Serialize a graph as N-Triples.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Parse an N-Triples document. A leading UTF-8 BOM is skipped; CRLF line
/// endings, blank lines and `#` comments are accepted. Malformed lines are
/// reported with their 1-based line number and offending lexeme.
pub fn parse(input: &str) -> Result<Graph, NtriplesError> {
    let input = input.strip_prefix('\u{feff}').unwrap_or(input);
    let mut graph = Graph::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line)
            .map_err(|e| NtriplesError { line: i + 1, lexeme: e.lexeme, kind: e.kind })?;
        graph.push(triple);
    }
    Ok(graph)
}

fn parse_line(line: &str) -> Result<Triple, LineError> {
    let mut rest = line;
    let subject = take_term(&mut rest)?;
    let predicate = take_term(&mut rest)?;
    let object = take_term(&mut rest)?;
    let rest = rest.trim();
    if rest != "." {
        return Err(LineError::new(rest, NtriplesErrorKind::MissingDot));
    }
    Ok(Triple::new(subject, predicate, object))
}

fn take_term(rest: &mut &str) -> Result<Term, LineError> {
    *rest = rest.trim_start();
    let s = *rest;
    if let Some(body) = s.strip_prefix('<') {
        let end = body
            .find('>')
            .ok_or_else(|| LineError::new(s, NtriplesErrorKind::UnterminatedIri))?;
        *rest = &body[end + 1..];
        Ok(Term::iri(&body[..end]))
    } else if let Some(body) = s.strip_prefix("_:") {
        let end = body
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(body.len());
        *rest = &body[end..];
        Ok(Term::blank(&body[..end]))
    } else if let Some(body) = s.strip_prefix('"') {
        // scan for closing quote honouring backslash escapes
        let mut escaped = false;
        let mut end = None;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| LineError::new(s, NtriplesErrorKind::UnterminatedLiteral))?;
        let raw = &body[..end];
        let lexical = unescape_literal_checked(raw).map_err(|e| {
            LineError::new(&e.lexeme, NtriplesErrorKind::BadEscape { reason: e.reason })
        })?;
        let mut tail = &body[end + 1..];
        let term = if let Some(t) = tail.strip_prefix("^^<") {
            let close = t
                .find('>')
                .ok_or_else(|| LineError::new(tail, NtriplesErrorKind::UnterminatedDatatype))?;
            let dt = &t[..close];
            tail = &t[close + 1..];
            Term::Literal(Literal::typed(lexical, dt))
        } else if let Some(t) = tail.strip_prefix('@') {
            let end = t
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                .unwrap_or(t.len());
            let lang = &t[..end];
            tail = &t[end..];
            Term::Literal(Literal::lang_string(lexical, lang))
        } else {
            Term::Literal(Literal::typed(lexical, xsd::STRING))
        };
        *rest = tail;
        Ok(term)
    } else {
        Err(LineError::new(s, NtriplesErrorKind::UnparsableTerm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut g = Graph::new();
        g.add(Term::iri("http://s"), Term::iri("http://p"), Term::integer(42));
        g.add(Term::blank("b0"), Term::iri("http://p"), Term::string("x \"y\" z"));
        g.add(
            Term::iri("http://s"),
            Term::iri("http://p"),
            Term::Literal(Literal::lang_string("bonjour", "fr")),
        );
        let text = serialize(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g.into_triples(), g2.into_triples());
    }

    #[test]
    fn reports_line_numbers_and_lexeme() {
        let err = parse("<http://s> <http://p> <http://o> .\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, NtriplesErrorKind::UnparsableTerm);
        assert!(err.lexeme.starts_with("bogus"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse("# header\n\n<http://s> <http://p> \"v\" .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn accepts_bom_and_crlf() {
        let g = parse("\u{feff}<http://s> <http://p> \"v\" .\r\n<http://s> <http://p> \"w\" .\r\n")
            .unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn rejects_lone_surrogate_escape() {
        let err = parse("<http://s> <http://p> \"\\uD83D\" .\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(
            matches!(err.kind, NtriplesErrorKind::BadEscape { reason } if reason.contains("surrogate")),
            "{err:?}"
        );
        assert_eq!(err.lexeme, "\\uD83D");
    }

    #[test]
    fn typed_errors_cover_each_failure_shape() {
        let kind = |text: &str| parse(text).unwrap_err().kind;
        assert_eq!(kind("<http://s <http://p ."), NtriplesErrorKind::UnterminatedIri);
        assert_eq!(kind("<http://s> <http://p> \"v ."), NtriplesErrorKind::UnterminatedLiteral);
        assert_eq!(
            kind("<http://s> <http://p> \"v\"^^<http://t ."),
            NtriplesErrorKind::UnterminatedDatatype
        );
        assert_eq!(kind("<http://s> <http://p> \"v\""), NtriplesErrorKind::MissingDot);
        assert_eq!(kind("<http://s> <http://p> 42 ."), NtriplesErrorKind::UnparsableTerm);
    }
}
