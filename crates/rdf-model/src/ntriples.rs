//! N-Triples line-based serialization: one triple per line, absolute IRIs.
//!
//! Used for bulk export/import in the benchmark harness where Turtle's
//! grouping buys nothing.

use crate::term::{unescape_literal, Literal, Term};
use crate::triple::{Graph, Triple};
use crate::vocab::xsd;

/// Serialize a graph as N-Triples.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out
}

/// Parse an N-Triples document. Malformed lines are reported with their
/// 1-based line number.
pub fn parse(input: &str) -> Result<Graph, String> {
    let mut graph = Graph::new();
    for (i, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple =
            parse_line(line).map_err(|e| format!("N-Triples line {}: {}", i + 1, e))?;
        graph.push(triple);
    }
    Ok(graph)
}

fn parse_line(line: &str) -> Result<Triple, String> {
    let mut rest = line;
    let subject = take_term(&mut rest)?;
    let predicate = take_term(&mut rest)?;
    let object = take_term(&mut rest)?;
    let rest = rest.trim();
    if rest != "." {
        return Err(format!("expected terminating '.', found {rest:?}"));
    }
    Ok(Triple::new(subject, predicate, object))
}

fn take_term(rest: &mut &str) -> Result<Term, String> {
    *rest = rest.trim_start();
    let s = *rest;
    if let Some(body) = s.strip_prefix('<') {
        let end = body.find('>').ok_or("unterminated IRI")?;
        *rest = &body[end + 1..];
        Ok(Term::iri(&body[..end]))
    } else if let Some(body) = s.strip_prefix("_:") {
        let end = body
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(body.len());
        *rest = &body[end..];
        Ok(Term::blank(&body[..end]))
    } else if let Some(body) = s.strip_prefix('"') {
        // scan for closing quote honouring backslash escapes
        let mut escaped = false;
        let mut end = None;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or("unterminated literal")?;
        let lexical = unescape_literal(&body[..end]);
        let mut tail = &body[end + 1..];
        let term = if let Some(t) = tail.strip_prefix("^^<") {
            let close = t.find('>').ok_or("unterminated datatype IRI")?;
            let dt = &t[..close];
            tail = &t[close + 1..];
            Term::Literal(Literal::typed(lexical, dt))
        } else if let Some(t) = tail.strip_prefix('@') {
            let end = t
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
                .unwrap_or(t.len());
            let lang = &t[..end];
            tail = &t[end..];
            Term::Literal(Literal::lang_string(lexical, lang))
        } else {
            Term::Literal(Literal::typed(lexical, xsd::STRING))
        };
        *rest = tail;
        Ok(term)
    } else {
        Err(format!("cannot parse term starting at {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut g = Graph::new();
        g.add(Term::iri("http://s"), Term::iri("http://p"), Term::integer(42));
        g.add(Term::blank("b0"), Term::iri("http://p"), Term::string("x \"y\" z"));
        g.add(
            Term::iri("http://s"),
            Term::iri("http://p"),
            Term::Literal(Literal::lang_string("bonjour", "fr")),
        );
        let text = serialize(&g);
        let g2 = parse(&text).unwrap();
        assert_eq!(g.into_triples(), g2.into_triples());
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse("<http://s> <http://p> <http://o> .\nbogus line\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse("# header\n\n<http://s> <http://p> \"v\" .\n").unwrap();
        assert_eq!(g.len(), 1);
    }
}
