//! Typed values: the bridge between lexical RDF literals and the comparisons,
//! arithmetic, and aggregates the SPARQL engine and HIFUN evaluator perform.
//!
//! SPARQL's operator semantics work on *values*, not lexical forms: `"2"` and
//! `"02"` as `xsd:integer` are the same value, `"10" > "9"` numerically but
//! not lexically. [`Value`] implements the numeric promotion ladder
//! (integer → decimal → double), date/dateTime ordering, and effective
//! boolean value used by `FILTER`.

use crate::date::{Date, DateTime};
use crate::term::{Literal, Term};
use crate::vocab::xsd;
use std::cmp::Ordering;

/// A typed runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An IRI (compared by string identity only).
    Iri(String),
    /// A blank node (identity comparison only).
    Blank(String),
    /// A string (plain or `xsd:string`), with optional language tag.
    Str(String, Option<String>),
    /// An integer-valued numeric.
    Int(i64),
    /// A decimal/float/double-valued numeric.
    Float(f64),
    Bool(bool),
    Date(Date),
    DateTime(DateTime),
    /// A literal whose datatype the engine does not interpret; kept for
    /// equality comparison on (lexical, datatype).
    Other(String, String),
}

impl Value {
    /// Interpret a term as a typed value.
    pub fn from_term(term: &Term) -> Value {
        match term {
            Term::Iri(s) => Value::Iri(s.clone()),
            Term::Blank(b) => Value::Blank(b.clone()),
            Term::Literal(l) => Value::from_literal(l),
        }
    }

    /// Interpret a literal according to its datatype; falls back to
    /// [`Value::Other`] when the lexical form does not parse.
    pub fn from_literal(l: &Literal) -> Value {
        match l.datatype.as_str() {
            xsd::STRING => Value::Str(l.lexical.clone(), None),
            crate::vocab::rdf::LANG_STRING => Value::Str(l.lexical.clone(), l.lang.clone()),
            xsd::INTEGER | xsd::INT | xsd::LONG => match l.lexical.trim().parse::<i64>() {
                Ok(v) => Value::Int(v),
                Err(_) => Value::Other(l.lexical.clone(), l.datatype.clone()),
            },
            xsd::DECIMAL | xsd::DOUBLE | xsd::FLOAT => match l.lexical.trim().parse::<f64>() {
                Ok(v) => Value::Float(v),
                Err(_) => Value::Other(l.lexical.clone(), l.datatype.clone()),
            },
            xsd::BOOLEAN => match l.lexical.trim() {
                "true" | "1" => Value::Bool(true),
                "false" | "0" => Value::Bool(false),
                _ => Value::Other(l.lexical.clone(), l.datatype.clone()),
            },
            xsd::DATE => match Date::parse(l.lexical.trim()) {
                Some(d) => Value::Date(d),
                None => Value::Other(l.lexical.clone(), l.datatype.clone()),
            },
            xsd::DATE_TIME => match DateTime::parse(l.lexical.trim()) {
                Some(d) => Value::DateTime(d),
                None => Value::Other(l.lexical.clone(), l.datatype.clone()),
            },
            xsd::GYEAR => match l.lexical.trim().parse::<i32>() {
                Ok(y) => Value::Int(y as i64),
                Err(_) => Value::Other(l.lexical.clone(), l.datatype.clone()),
            },
            _ => Value::Other(l.lexical.clone(), l.datatype.clone()),
        }
    }

    /// Convert the value back to a term (used when answers are materialized
    /// as new RDF datasets, §5.3.3 of the paper).
    pub fn to_term(&self) -> Term {
        match self {
            Value::Iri(s) => Term::Iri(s.clone()),
            Value::Blank(b) => Term::Blank(b.clone()),
            Value::Str(s, None) => Term::string(s.clone()),
            Value::Str(s, Some(lang)) => Term::Literal(Literal::lang_string(s.clone(), lang.clone())),
            Value::Int(v) => Term::integer(*v),
            Value::Float(v) => Term::decimal(*v),
            Value::Bool(v) => Term::boolean(*v),
            Value::Date(d) => Term::Literal(Literal::typed(d.to_string(), xsd::DATE)),
            Value::DateTime(d) => Term::Literal(Literal::typed(d.to_string(), xsd::DATE_TIME)),
            Value::Other(lex, dt) => Term::Literal(Literal::typed(lex.clone(), dt.clone())),
        }
    }

    /// Numeric view (with integer → double promotion).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// True if the value is numeric.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// SPARQL effective boolean value (EBV): booleans as-is, numerics false
    /// iff zero/NaN, strings false iff empty; everything else is an error
    /// (`None`).
    pub fn effective_boolean(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(v) => Some(*v != 0),
            Value::Float(v) => Some(*v != 0.0 && !v.is_nan()),
            Value::Str(s, _) => Some(!s.is_empty()),
            _ => None,
        }
    }

    /// SPARQL value comparison: `None` when the operands are incomparable
    /// (type error in FILTER semantics).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Str(a, _), Str(b, _)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (DateTime(a), DateTime(b)) => Some(a.cmp(b)),
            // xsd:date vs xsd:dateTime: compare on the timeline, treating the
            // date as midnight (needed for the Fig 1.3 releaseDate filter).
            (Date(a), DateTime(b)) => {
                Some((a.day_number() * 86_400_000).cmp(&b.timeline_ms()))
            }
            (DateTime(a), Date(b)) => {
                Some(a.timeline_ms().cmp(&(b.day_number() * 86_400_000)))
            }
            (Iri(a), Iri(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// RDF term equality adapted to values: numerics compare by value, other
    /// types by structural equality.
    pub fn value_eq(&self, other: &Value) -> bool {
        match self.compare(other) {
            Some(ord) => ord == Ordering::Equal,
            None => self == other,
        }
    }

    /// Addition with numeric promotion.
    pub fn add(&self, other: &Value) -> Option<Value> {
        numeric_binop(self, other, |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtraction with numeric promotion.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        numeric_binop(self, other, |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiplication with numeric promotion.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        numeric_binop(self, other, |a, b| a.checked_mul(b), |a, b| a * b)
    }

    /// Division; integer division produces a decimal per SPARQL semantics.
    pub fn div(&self, other: &Value) -> Option<Value> {
        let b = other.as_f64()?;
        if b == 0.0 {
            return None;
        }
        Some(Value::Float(self.as_f64()? / b))
    }

    /// String rendering used for sorting keys and display.
    pub fn render(&self) -> String {
        match self {
            Value::Iri(s) => s.clone(),
            Value::Blank(b) => format!("_:{b}"),
            Value::Str(s, _) => s.clone(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Bool(v) => v.to_string(),
            Value::Date(d) => d.to_string(),
            Value::DateTime(d) => d.to_string(),
            Value::Other(lex, _) => lex.clone(),
        }
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    f_op: impl Fn(f64, f64) -> f64,
) -> Option<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match int_op(*x, *y) {
            Some(v) => Some(Value::Int(v)),
            None => Some(Value::Float(f_op(*x as f64, *y as f64))),
        },
        _ => Some(Value::Float(f_op(a.as_f64()?, b.as_f64()?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    #[test]
    fn literal_interpretation() {
        assert_eq!(Value::from_literal(&Literal::integer(42)), Value::Int(42));
        assert_eq!(
            Value::from_literal(&Literal::typed("02", xsd::INTEGER)),
            Value::Int(2)
        );
        assert_eq!(Value::from_literal(&Literal::boolean(true)), Value::Bool(true));
        assert!(matches!(
            Value::from_literal(&Literal::typed("not-a-number", xsd::INTEGER)),
            Value::Other(..)
        ));
        assert!(matches!(
            Value::from_literal(&Literal::date(2021, 6, 10)),
            Value::Date(_)
        ));
    }

    #[test]
    fn numeric_promotion_in_comparison() {
        assert_eq!(int(10).compare(&Value::Float(9.5)), Some(Ordering::Greater));
        assert_eq!(int(2).compare(&int(2)), Some(Ordering::Equal));
        assert!(Value::Str("10".into(), None).compare(&int(9)).is_none());
    }

    #[test]
    fn date_vs_datetime_comparison() {
        let d = Value::Date(Date::parse("2021-06-10").unwrap());
        let dt = Value::DateTime(DateTime::parse("2021-06-10T08:00:00").unwrap());
        assert_eq!(d.compare(&dt), Some(Ordering::Less));
        assert_eq!(dt.compare(&d), Some(Ordering::Greater));
    }

    #[test]
    fn arithmetic_promotes_and_checks_overflow() {
        assert_eq!(int(2).add(&int(3)), Some(int(5)));
        assert_eq!(int(7).div(&int(2)), Some(Value::Float(3.5)));
        assert_eq!(int(1).div(&int(0)), None);
        // overflow promotes to float instead of panicking
        assert!(matches!(int(i64::MAX).add(&int(1)), Some(Value::Float(_))));
    }

    #[test]
    fn effective_boolean_value() {
        assert_eq!(Value::Bool(true).effective_boolean(), Some(true));
        assert_eq!(int(0).effective_boolean(), Some(false));
        assert_eq!(Value::Str("".into(), None).effective_boolean(), Some(false));
        assert_eq!(Value::Str("x".into(), None).effective_boolean(), Some(true));
        assert_eq!(Value::Iri("http://x".into()).effective_boolean(), None);
    }

    #[test]
    fn roundtrip_value_term() {
        for t in [
            Term::integer(5),
            Term::decimal(2.5),
            Term::boolean(false),
            Term::string("hello"),
            Term::iri("http://ex.org/a"),
            Term::date(2021, 1, 2),
        ] {
            let v = Value::from_term(&t);
            let t2 = v.to_term();
            assert!(Value::from_term(&t2).value_eq(&v), "{t} -> {t2}");
        }
    }

    #[test]
    fn value_eq_ignores_lexical_variants() {
        let a = Value::from_literal(&Literal::typed("2", xsd::INTEGER));
        let b = Value::from_literal(&Literal::typed("2.0", xsd::DECIMAL));
        assert!(a.value_eq(&b));
    }
}
