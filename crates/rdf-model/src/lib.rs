//! # rdfa-model — the RDF data model
//!
//! Foundational types for the RDF-Analytics system: RDF [terms](term::Term)
//! (IRIs, blank nodes, literals), [triples](triple::Triple), typed
//! [XSD values](value::Value) with SPARQL-compatible ordering and arithmetic,
//! well-known [vocabularies](vocab) (`rdf:`, `rdfs:`, `xsd:`, `owl:`), and
//! plain-text serializations (a Turtle subset and N-Triples).
//!
//! Everything in this crate is deliberately storage-agnostic: terms own their
//! strings. The interning layer that turns terms into dense integer ids lives
//! in `rdfa-store`.
//!
//! ```
//! use rdfa_model::{Term, Triple, vocab};
//!
//! let t = Triple::new(
//!     Term::iri("http://example.org/laptop1"),
//!     Term::iri(vocab::rdf::TYPE),
//!     Term::iri("http://example.org/Laptop"),
//! );
//! assert!(t.predicate.is_iri());
//! ```

pub mod date;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod value;
pub mod vocab;

pub use date::{Date, DateTime};
pub use ntriples::{NtriplesError, NtriplesErrorKind};
pub use term::{EscapeError, Literal, Term};
pub use triple::{Graph, Triple};
pub use value::Value;
