//! # rdfa-prng — deterministic randomness without external dependencies
//!
//! The experiment harness, the data generators, and the fault-injection
//! layer all need *seeded, reproducible* randomness — and nothing else. A
//! full `rand` dependency buys distributions and OS entropy we never use,
//! and makes the workspace unbuildable in offline/air-gapped environments.
//! This crate is the minimal replacement: xoshiro256\*\* seeded through
//! SplitMix64, with the small sampling surface the workspace actually calls
//! (`gen_range` over integer/float ranges, `gen_bool`).
//!
//! Determinism is part of the public contract: for a given seed and call
//! sequence the stream is stable across platforms and releases, so
//! experiment tables and fault-injection tests are exactly reproducible.

use std::ops::{Range, RangeInclusive};

/// A seedable PRNG (xoshiro256\*\*). Named `StdRng` so call sites read the
/// same as they would with `rand`.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seed the generator from a single `u64` (SplitMix64 expansion, the
    /// same scheme `rand` uses for its xoshiro seeding).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 bits of precision).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample uniformly from a range, e.g. `rng.gen_range(0..10)`,
    /// `rng.gen_range(1..=28u8)`, `rng.gen_range(-0.5..0.5)`.
    ///
    /// Panics on an empty range, like `rand` does. The output type parameter
    /// mirrors rand's `SampleRange<T>` so the element type of an integer
    /// literal range is inferred from the surrounding context.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// Range types `StdRng::gen_range` can sample a `T` from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=12u8);
            assert!((1..=12).contains(&w));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&g));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn f64_uniform_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        // out-of-range probabilities are clamped, not panicking
        assert!(rng.gen_bool(2.0));
        assert!(!rng.gen_bool(-1.0));
    }

    #[test]
    fn single_element_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(5..=5), 5);
    }
}
