//! OLAP operators over the interaction model (Chapter 7, Fig 7.1/7.2).
//!
//! The paper shows that the classic OLAP operations correspond to moves of
//! the extended faceted-search model:
//!
//! | OLAP | interaction-model move |
//! |---|---|
//! | roll-up | coarsen a grouping attribute (day → month → year → drop) |
//! | drill-down | refine a grouping attribute (year → month → day) |
//! | slice | select one value of a dimension and remove it from grouping |
//! | dice | range-restrict dimensions (the ⧩ filter) keeping them grouped |
//! | pivot | reorder the grouping attributes |

use crate::session::{AnalyticsSession, GroupSpec};
use crate::AnalyticsError;
use rdfa_facets::PathStep;
use rdfa_hifun::DerivedFn;
use rdfa_model::Value;
use rdfa_store::TermId;

/// The OLAP operations the model supports (Fig 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OlapOp {
    RollUp,
    DrillDown,
    Slice,
    Dice,
    Pivot,
}

impl OlapOp {
    /// The interaction-model move realizing the operation (Fig 7.1's
    /// correspondence table).
    pub fn interaction_move(self) -> &'static str {
        match self {
            OlapOp::RollUp => "coarsen a grouping attribute via the transform (ƒ) button, or un-click its G button",
            OlapOp::DrillDown => "refine a grouping attribute via the transform (ƒ) button, or click an additional G button",
            OlapOp::Slice => "click a value marker of the dimension's facet and un-click its G button",
            OlapOp::Dice => "apply range filters (⧩) on the dimensions' facets",
            OlapOp::Pivot => "reorder the clicked G buttons",
        }
    }
}

impl<'s> AnalyticsSession<'s> {
    /// **Roll-up** one dimension (Fig 7.2 left-to-right): a `Day` granularity
    /// coarsens to `Month`, `Month` to `Year`; a `Year` (or underived)
    /// dimension rolls up to "all" — the dimension is removed.
    pub fn roll_up(&mut self, dim: usize) -> Result<(), AnalyticsError> {
        let groupings = self.groupings().to_vec();
        let Some(spec) = groupings.get(dim) else {
            return Err(AnalyticsError::new(format!("no grouping dimension {dim}")));
        };
        match spec.derived {
            Some(DerivedFn::Day) => self.replace_grouping(dim, spec.clone_with(DerivedFn::Month)),
            Some(DerivedFn::Month) => self.replace_grouping(dim, spec.clone_with(DerivedFn::Year)),
            Some(DerivedFn::Year) | None => self.remove_grouping(dim),
        }
        Ok(())
    }

    /// **Drill-down** one dimension (Fig 7.2 right-to-left): `Year` refines
    /// to `Month`, `Month` to `Day`. Underived dimensions cannot refine.
    pub fn drill_down(&mut self, dim: usize) -> Result<(), AnalyticsError> {
        let groupings = self.groupings().to_vec();
        let Some(spec) = groupings.get(dim) else {
            return Err(AnalyticsError::new(format!("no grouping dimension {dim}")));
        };
        match spec.derived {
            Some(DerivedFn::Year) => {
                self.replace_grouping(dim, spec.clone_with(DerivedFn::Month));
                Ok(())
            }
            Some(DerivedFn::Month) => {
                self.replace_grouping(dim, spec.clone_with(DerivedFn::Day));
                Ok(())
            }
            Some(DerivedFn::Day) => Err(AnalyticsError::new("already at the finest granularity")),
            None => Err(AnalyticsError::new(
                "dimension has no granularity ladder to drill into",
            )),
        }
    }

    /// **Slice**: fix one dimension to a value (a facet click) and drop it
    /// from the grouping.
    pub fn slice(&mut self, dim: usize, value: TermId) -> Result<(), AnalyticsError> {
        let groupings = self.groupings().to_vec();
        let Some(spec) = groupings.get(dim) else {
            return Err(AnalyticsError::new(format!("no grouping dimension {dim}")));
        };
        let path: Vec<PathStep> = spec.path.iter().map(|&p| PathStep::fwd(p)).collect();
        self.select_path_value(&path, value)?;
        self.remove_grouping(dim);
        Ok(())
    }

    /// **Dice**: restrict a dimension to a value range, keeping it grouped.
    pub fn dice(
        &mut self,
        dim: usize,
        min: Option<Value>,
        max: Option<Value>,
    ) -> Result<(), AnalyticsError> {
        let groupings = self.groupings().to_vec();
        let Some(spec) = groupings.get(dim) else {
            return Err(AnalyticsError::new(format!("no grouping dimension {dim}")));
        };
        let path: Vec<PathStep> = spec.path.iter().map(|&p| PathStep::fwd(p)).collect();
        self.select_range(&path, min, max)
    }

    /// **Pivot**: swap two grouping dimensions (table-axis reordering).
    pub fn pivot(&mut self, a: usize, b: usize) -> Result<(), AnalyticsError> {
        let n = self.groupings().len();
        if a >= n || b >= n {
            return Err(AnalyticsError::new("pivot index out of range"));
        }
        self.swap_groupings(a, b);
        Ok(())
    }
}

impl GroupSpec {
    fn clone_with(&self, f: DerivedFn) -> GroupSpec {
        GroupSpec { path: self.path.clone(), derived: Some(f) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::MeasureSpec;
    use rdfa_hifun::AggOp;
    use rdfa_store::Store;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               ex:i1 ex:branch ex:b1 ; ex:qty 200 ; ex:date "2021-01-15"^^xsd:date .
               ex:i2 ex:branch ex:b1 ; ex:qty 100 ; ex:date "2021-02-20"^^xsd:date .
               ex:i3 ex:branch ex:b2 ; ex:qty 400 ; ex:date "2022-02-02"^^xsd:date .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup_iri(&format!("{EX}{local}")).unwrap()
    }

    fn base_session(s: &Store) -> AnalyticsSession<'_> {
        let mut a = AnalyticsSession::start(s);
        a.add_grouping(
            GroupSpec::property(id(s, "date")).with_derived(DerivedFn::Month),
        );
        a.add_grouping(GroupSpec::property(id(s, "branch")));
        a.set_measure(MeasureSpec::property(id(s, "qty")));
        a.set_ops(vec![AggOp::Sum]);
        a
    }

    #[test]
    fn roll_up_month_to_year_fig_7_2() {
        let s = store();
        let mut a = base_session(&s);
        // by month: 3 groups (2021-01, 2021-02, 2022-02 across branches)
        let by_month = a.run().unwrap();
        assert_eq!(by_month.rows.len(), 3);
        a.roll_up(0).unwrap();
        assert_eq!(a.groupings()[0].derived, Some(DerivedFn::Year));
        let by_year = a.run().unwrap();
        // (2021,b1) and (2022,b2)
        assert_eq!(by_year.rows.len(), 2);
    }

    #[test]
    fn roll_up_underived_removes_dimension() {
        let s = store();
        let mut a = base_session(&s);
        a.roll_up(1).unwrap(); // branch dimension drops
        assert_eq!(a.groupings().len(), 1);
    }

    #[test]
    fn drill_down_year_to_month() {
        let s = store();
        let mut a = base_session(&s);
        a.roll_up(0).unwrap(); // month→year
        a.drill_down(0).unwrap(); // year→month
        assert_eq!(a.groupings()[0].derived, Some(DerivedFn::Month));
        assert!(a.drill_down(1).is_err()); // branch has no ladder
    }

    #[test]
    fn slice_fixes_value_and_drops_dimension() {
        let s = store();
        let mut a = base_session(&s);
        a.slice(1, id(&s, "b1")).unwrap();
        assert_eq!(a.groupings().len(), 1);
        let frame = a.run().unwrap();
        // only b1's invoices remain: months 1 and 2 of 2021
        assert_eq!(frame.rows.len(), 2);
    }

    #[test]
    fn dice_range_keeps_dimension() {
        let s = store();
        let mut a = base_session(&s);
        let from = Value::Date(rdfa_model::Date::parse("2021-01-01").unwrap());
        let to = Value::Date(rdfa_model::Date::parse("2021-12-31").unwrap());
        a.dice(0, Some(from), Some(to)).unwrap();
        assert_eq!(a.groupings().len(), 2);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 2); // 2022 invoice filtered out
    }

    #[test]
    fn pivot_swaps_axes() {
        let s = store();
        let mut a = base_session(&s);
        let before = a.groupings().to_vec();
        a.pivot(0, 1).unwrap();
        assert_eq!(a.groupings()[0], before[1]);
        assert_eq!(a.groupings()[1], before[0]);
        assert!(a.pivot(0, 5).is_err());
    }

    #[test]
    fn correspondence_table_is_complete() {
        for op in [OlapOp::RollUp, OlapOp::DrillDown, OlapOp::Slice, OlapOp::Dice, OlapOp::Pivot] {
            assert!(!op.interaction_move().is_empty());
        }
    }
}
