//! Click scripts: a tiny textual DSL for recording and replaying interaction
//! sessions.
//!
//! Every button of the paper's GUI corresponds to one line; a script is the
//! exact click sequence a user performs. Scripts make sessions serializable
//! and reproducible — the simulated user study and the examples replay them,
//! and they double as a compact notation in documentation:
//!
//! ```text
//! prefix ex: <http://www.ics.forth.gr/example#>
//! class ex:Laptop
//! path ex:manufacturer/ex:origin = ex:USA
//! range ex:USBPorts 2 4
//! group ex:manufacturer
//! group ex:releaseDate [year]
//! measure ex:price
//! ops avg sum max
//! having 0 >= 1200
//! run
//! ```

use crate::session::{AnalyticsSession, GroupSpec, MeasureSpec};
use crate::{AnalyticsError, AnswerFrame};
use rdfa_facets::PathStep;
use rdfa_hifun::{AggOp, CondOp, DerivedFn};
use rdfa_model::{Term, Value};
use rdfa_store::Store;
use std::collections::HashMap;

/// One scripted action (one GUI interaction).
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `class <iri>` — click a class marker.
    SelectClass(String),
    /// `value <prop> <term>` / `path p1/p2 = <term>` — click a value marker
    /// (possibly at the end of an expanded path).
    SelectPathValue { path: Vec<String>, value: ScriptTerm },
    /// `range p1/p2 <min|*> <max|*>` — the ⧩ filter.
    SelectRange { path: Vec<String>, min: Option<ScriptTerm>, max: Option<ScriptTerm> },
    /// `group p1/p2 [year|month|day]` — click a G button.
    AddGrouping { path: Vec<String>, derived: Option<DerivedFn> },
    /// `measure p1/p2` — click the ⨊ button's attribute.
    SetMeasure { path: Vec<String> },
    /// `ops avg sum …` — pick the aggregate operations.
    SetOps(Vec<AggOp>),
    /// `having <op-index> <cmp> <value>` — a result restriction.
    AddHaving { op_index: usize, cond: CondOp, value: ScriptTerm },
    /// `run` — evaluate the current intention into an Answer Frame.
    Run,
    /// `back` — undo the last faceted transition.
    Back,
    /// `clear` — reset the analytics state (G/⨊ selections).
    ClearAnalytics,
}

/// A literal or IRI in script syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptTerm {
    Iri(String),
    Int(i64),
    Float(f64),
    Date(rdfa_model::Date),
    Str(String),
}

impl ScriptTerm {
    fn to_term(&self) -> Term {
        match self {
            ScriptTerm::Iri(iri) => Term::iri(iri.clone()),
            ScriptTerm::Int(v) => Term::integer(*v),
            ScriptTerm::Float(v) => Term::decimal(*v),
            ScriptTerm::Date(d) => Term::Literal(rdfa_model::Literal::typed(
                d.to_string(),
                rdfa_model::vocab::xsd::DATE,
            )),
            ScriptTerm::Str(s) => Term::string(s.clone()),
        }
    }

    fn to_value(&self) -> Value {
        Value::from_term(&self.to_term())
    }
}

/// A parsed script: prefix table plus the action list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    pub actions: Vec<Action>,
}

/// Parse errors carry the 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

impl Script {
    /// Parse a script text.
    pub fn parse(text: &str) -> Result<Script, ScriptError> {
        let mut prefixes: HashMap<String, String> = HashMap::new();
        let mut actions = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |message: String| ScriptError { line: lineno + 1, message };
            let mut words = line.split_whitespace();
            let verb = words.next().expect("non-empty line");
            let rest: Vec<&str> = words.collect();
            match verb {
                "prefix" => {
                    // prefix ex: <http://…>
                    let name = rest
                        .first()
                        .and_then(|w| w.strip_suffix(':'))
                        .ok_or_else(|| err("prefix needs a name ending in ':'".into()))?;
                    let iri = rest
                        .get(1)
                        .and_then(|w| w.strip_prefix('<'))
                        .and_then(|w| w.strip_suffix('>'))
                        .ok_or_else(|| err("prefix needs an <iri>".into()))?;
                    prefixes.insert(name.to_owned(), iri.to_owned());
                }
                "class" => {
                    let iri = resolve(rest.first().copied(), &prefixes)
                        .ok_or_else(|| err("class needs an IRI".into()))?;
                    actions.push(Action::SelectClass(iri));
                }
                "value" => {
                    let prop = resolve(rest.first().copied(), &prefixes)
                        .ok_or_else(|| err("value needs a property".into()))?;
                    let value = parse_term(rest.get(1).copied(), &prefixes)
                        .ok_or_else(|| err("value needs a term".into()))?;
                    actions.push(Action::SelectPathValue { path: vec![prop], value });
                }
                "path" => {
                    // path p1/p2 = term
                    let path = parse_path(rest.first().copied(), &prefixes)
                        .ok_or_else(|| err("path needs p1/p2/…".into()))?;
                    if rest.get(1) != Some(&"=") {
                        return Err(err("path needs '= term'".into()));
                    }
                    let value = parse_term(rest.get(2).copied(), &prefixes)
                        .ok_or_else(|| err("path needs a term after '='".into()))?;
                    actions.push(Action::SelectPathValue { path, value });
                }
                "range" => {
                    let path = parse_path(rest.first().copied(), &prefixes)
                        .ok_or_else(|| err("range needs a property path".into()))?;
                    let bound = |w: Option<&str>| -> Option<Option<ScriptTerm>> {
                        match w {
                            Some("*") => Some(None),
                            w => parse_term(w, &prefixes).map(Some),
                        }
                    };
                    let min = bound(rest.get(1).copied())
                        .ok_or_else(|| err("range needs <min|*>".into()))?;
                    let max = bound(rest.get(2).copied())
                        .ok_or_else(|| err("range needs <max|*>".into()))?;
                    actions.push(Action::SelectRange { path, min, max });
                }
                "group" => {
                    let path = parse_path(rest.first().copied(), &prefixes)
                        .ok_or_else(|| err("group needs a property path".into()))?;
                    let derived = match rest.get(1).copied() {
                        None => None,
                        Some("[year]") => Some(DerivedFn::Year),
                        Some("[month]") => Some(DerivedFn::Month),
                        Some("[day]") => Some(DerivedFn::Day),
                        Some(other) => return Err(err(format!("unknown derived '{other}'"))),
                    };
                    actions.push(Action::AddGrouping { path, derived });
                }
                "measure" => {
                    let path = parse_path(rest.first().copied(), &prefixes)
                        .ok_or_else(|| err("measure needs a property path".into()))?;
                    actions.push(Action::SetMeasure { path });
                }
                "ops" => {
                    let mut ops = Vec::new();
                    for w in &rest {
                        ops.push(match *w {
                            "count" => AggOp::Count,
                            "sum" => AggOp::Sum,
                            "avg" => AggOp::Avg,
                            "min" => AggOp::Min,
                            "max" => AggOp::Max,
                            other => return Err(err(format!("unknown op '{other}'"))),
                        });
                    }
                    if ops.is_empty() {
                        return Err(err("ops needs at least one operation".into()));
                    }
                    actions.push(Action::SetOps(ops));
                }
                "having" => {
                    let op_index: usize = rest
                        .first()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| err("having needs an op index".into()))?;
                    let cond = match rest.get(1).copied() {
                        Some("=") => CondOp::Eq,
                        Some("!=") => CondOp::Ne,
                        Some("<") => CondOp::Lt,
                        Some("<=") => CondOp::Le,
                        Some(">") => CondOp::Gt,
                        Some(">=") => CondOp::Ge,
                        other => return Err(err(format!("bad comparator {other:?}"))),
                    };
                    let value = parse_term(rest.get(2).copied(), &prefixes)
                        .ok_or_else(|| err("having needs a value".into()))?;
                    actions.push(Action::AddHaving { op_index, cond, value });
                }
                "run" => actions.push(Action::Run),
                "back" => actions.push(Action::Back),
                "clear" => actions.push(Action::ClearAnalytics),
                other => return Err(err(format!("unknown action '{other}'"))),
            }
        }
        Ok(Script { actions })
    }

    /// Apply the script to a session; returns the Answer Frame of each `run`.
    pub fn apply(
        &self,
        session: &mut AnalyticsSession<'_>,
    ) -> Result<Vec<AnswerFrame>, AnalyticsError> {
        let mut frames = Vec::new();
        for action in &self.actions {
            match action {
                Action::SelectClass(iri) => {
                    let c = lookup(session.store(), iri)?;
                    session.select_class(c)?;
                }
                Action::SelectPathValue { path, value } => {
                    let steps = lookup_path(session.store(), path)?;
                    let v = session
                        .store()
                        .lookup(&value.to_term())
                        .ok_or_else(|| AnalyticsError::new("value not in the KG"))?;
                    session.select_path_value(&steps, v)?;
                }
                Action::SelectRange { path, min, max } => {
                    let steps = lookup_path(session.store(), path)?;
                    session.select_range(
                        &steps,
                        min.as_ref().map(ScriptTerm::to_value),
                        max.as_ref().map(ScriptTerm::to_value),
                    )?;
                }
                Action::AddGrouping { path, derived } => {
                    let props = lookup_props(session.store(), path)?;
                    let mut spec = GroupSpec::path(props);
                    if let Some(f) = derived {
                        spec = spec.with_derived(*f);
                    }
                    session.add_grouping(spec);
                }
                Action::SetMeasure { path } => {
                    let props = lookup_props(session.store(), path)?;
                    session.set_measure(MeasureSpec::path(props));
                }
                Action::SetOps(ops) => session.set_ops(ops.clone()),
                Action::AddHaving { op_index, cond, value } => {
                    session.add_having(*op_index, *cond, value.to_term());
                }
                Action::Run => frames.push(session.run()?),
                Action::Back => {
                    session.facets_mut().back();
                }
                Action::ClearAnalytics => session.clear_analytics(),
            }
        }
        Ok(frames)
    }

    /// Parse and apply in one step over a fresh session.
    pub fn run_on(store: &Store, text: &str) -> Result<Vec<AnswerFrame>, AnalyticsError> {
        let script = Script::parse(text).map_err(|e| AnalyticsError::new(e.to_string()))?;
        let mut session = AnalyticsSession::start(store);
        script.apply(&mut session)
    }

    /// Number of UI actions (excluding `run`) — the difficulty measure the
    /// user-study model uses.
    pub fn ui_action_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| !matches!(a, Action::Run))
            .count()
    }
}

/// Strip a `#` comment, but not inside `<…>` IRIs (fragments!) and only at
/// a token boundary.
fn strip_comment(line: &str) -> &str {
    let mut depth = 0;
    let mut prev_ws = true;
    for (i, c) in line.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => depth -= 1,
            '#' if depth == 0 && prev_ws => return &line[..i],
            _ => {}
        }
        prev_ws = c.is_whitespace();
    }
    line
}

fn resolve(word: Option<&str>, prefixes: &HashMap<String, String>) -> Option<String> {
    let w = word?;
    if let Some(iri) = w.strip_prefix('<').and_then(|w| w.strip_suffix('>')) {
        return Some(iri.to_owned());
    }
    let (p, local) = w.split_once(':')?;
    prefixes.get(p).map(|ns| format!("{ns}{local}"))
}

fn parse_path(word: Option<&str>, prefixes: &HashMap<String, String>) -> Option<Vec<String>> {
    let w = word?;
    // split on '/' between name parts; full IRIs in <> may contain '/', so
    // split only outside angle brackets
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut current = String::new();
    for c in w.chars() {
        match c {
            '<' => {
                depth += 1;
                current.push(c);
            }
            '>' => {
                depth -= 1;
                current.push(c);
            }
            '/' if depth == 0 => parts.push(std::mem::take(&mut current)),
            _ => current.push(c),
        }
    }
    parts.push(current);
    parts
        .into_iter()
        .map(|p| resolve(Some(&p), prefixes))
        .collect()
}

fn parse_term(word: Option<&str>, prefixes: &HashMap<String, String>) -> Option<ScriptTerm> {
    let w = word?;
    if let Some(s) = w.strip_prefix('"').and_then(|w| w.strip_suffix('"')) {
        return Some(ScriptTerm::Str(s.to_owned()));
    }
    if let Ok(v) = w.parse::<i64>() {
        return Some(ScriptTerm::Int(v));
    }
    if let Ok(v) = w.parse::<f64>() {
        return Some(ScriptTerm::Float(v));
    }
    if let Some(d) = rdfa_model::Date::parse(w) {
        return Some(ScriptTerm::Date(d));
    }
    resolve(Some(w), prefixes).map(ScriptTerm::Iri)
}

fn lookup(store: &Store, iri: &str) -> Result<rdfa_store::TermId, AnalyticsError> {
    store
        .lookup_iri(iri)
        .ok_or_else(|| AnalyticsError::new(format!("IRI not in the KG: {iri}")))
}

fn lookup_path(store: &Store, path: &[String]) -> Result<Vec<PathStep>, AnalyticsError> {
    path.iter()
        .map(|iri| lookup(store, iri).map(PathStep::fwd))
        .collect()
}

fn lookup_props(store: &Store, path: &[String]) -> Result<Vec<rdfa_store::TermId>, AnalyticsError> {
    path.iter().map(|iri| lookup(store, iri)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_datagen::products_fixture;

    fn store() -> Store {
        let mut s = Store::new();
        s.load_graph(&products_fixture());
        s
    }

    const HEADER: &str = "prefix ex: <http://www.ics.forth.gr/example#>\n";

    #[test]
    fn parse_all_verbs() {
        let text = format!(
            "{HEADER}\
             class ex:Laptop\n\
             value ex:manufacturer ex:DELL\n\
             path ex:manufacturer/ex:origin = ex:USA\n\
             range ex:USBPorts 2 4\n\
             range ex:price 500 *\n\
             group ex:manufacturer\n\
             group ex:releaseDate [year]\n\
             measure ex:price\n\
             ops avg sum max\n\
             having 0 >= 900\n\
             run\n\
             back\n\
             clear\n"
        );
        let script = Script::parse(&text).unwrap();
        assert_eq!(script.actions.len(), 13);
        assert_eq!(script.ui_action_count(), 12);
    }

    #[test]
    fn fig_6_2_script_runs() {
        let s = store();
        let text = format!(
            "{HEADER}\
             class ex:Laptop\n\
             range ex:USBPorts 2 4\n\
             group ex:manufacturer\n\
             group ex:manufacturer/ex:origin\n\
             measure ex:price\n\
             ops avg sum max\n\
             run\n"
        );
        let frames = Script::run_on(&s, &text).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].headers.len(), 5);
        assert_eq!(frames[0].rows.len(), 2);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("{HEADER}# a comment\n\nclass ex:Laptop # inline\n");
        let script = Script::parse(&text).unwrap();
        assert_eq!(script.actions.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Script::parse(&format!("{HEADER}class ex:Laptop\nfrobnicate\n")).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
        // undeclared prefix is caught on its own line
        let e2 = Script::parse("class ex:Laptop").unwrap_err();
        assert_eq!(e2.line, 1);
    }

    #[test]
    fn derived_grouping_and_having() {
        let s = store();
        let text = format!(
            "{HEADER}\
             class ex:Laptop\n\
             group ex:releaseDate [year]\n\
             ops count\n\
             having 0 >= 3\n\
             run\n"
        );
        let frames = Script::run_on(&s, &text).unwrap();
        assert_eq!(frames[0].rows.len(), 1); // all 3 laptops are 2021
    }

    #[test]
    fn back_undoes_facet_click() {
        let s = store();
        let script = Script::parse(&format!(
            "{HEADER}class ex:Laptop\nvalue ex:manufacturer ex:DELL\nback\n"
        ))
        .unwrap();
        let mut session = AnalyticsSession::start(&s);
        script.apply(&mut session).unwrap();
        assert_eq!(session.facets().extension().len(), 3);
    }

    #[test]
    fn unknown_iri_reports_error() {
        let s = store();
        let err = Script::run_on(&s, &format!("{HEADER}class ex:Spaceship\n")).unwrap_err();
        assert!(err.message.contains("not in the KG"));
    }

    #[test]
    fn recorded_session_replays_identically() {
        // record a session's clicks, replay the exported script on a fresh
        // session, and compare the analytic answers
        let s = store();
        let id = |l: &str| s.lookup_iri(&format!("http://www.ics.forth.gr/example#{l}")).unwrap();
        let mut original = AnalyticsSession::start(&s);
        original.select_class(id("Laptop")).unwrap();
        original
            .select_range(
                &[rdfa_facets::PathStep::fwd(id("USBPorts"))],
                Some(Value::Int(2)),
                None,
            )
            .unwrap();
        original.add_grouping(GroupSpec::property(id("manufacturer")));
        original.set_measure(MeasureSpec::property(id("price")));
        original.set_ops(vec![AggOp::Avg]);
        let expected = original.run().unwrap();

        let script = original.recorded_script();
        assert!(script.ui_action_count() >= 5);
        let mut replay = AnalyticsSession::start(&s);
        script.apply(&mut replay).unwrap();
        let got = replay.run().unwrap();
        assert_eq!(expected.rows, got.rows);
    }

    #[test]
    fn recorded_date_range_replays() {
        let s = store();
        let id = |l: &str| s.lookup_iri(&format!("http://www.ics.forth.gr/example#{l}")).unwrap();
        let date = rdfa_model::Date::parse("2021-07-01").unwrap();
        let mut original = AnalyticsSession::start(&s);
        original.select_class(id("Laptop")).unwrap();
        original
            .select_range(
                &[rdfa_facets::PathStep::fwd(id("releaseDate"))],
                Some(Value::Date(date)),
                None,
            )
            .unwrap();
        let expected = original.facets().extension().clone();
        let mut replay = AnalyticsSession::start(&s);
        original.recorded_script().apply(&mut replay).unwrap();
        assert_eq!(replay.facets().extension(), &expected);
    }

    #[test]
    fn full_iri_paths_with_slashes() {
        let s = store();
        let text = "class <http://www.ics.forth.gr/example#Laptop>\n\
                    group <http://www.ics.forth.gr/example#manufacturer>/<http://www.ics.forth.gr/example#origin>\n\
                    ops count\nrun\n";
        let frames = Script::run_on(&s, text).unwrap();
        assert_eq!(frames[0].rows.len(), 2);
    }
}
