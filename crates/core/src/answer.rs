//! The Answer Frame (AF): tabular analytic answers and their reload as a new
//! RDF dataset (§5.1, §5.3.3).

use rdfa_model::{Graph, Term, Triple};
use rdfa_sparql::Solutions;
use rdfa_store::{PersistConfig, PersistError, PersistentStore, Store};

/// Namespace for answer-frame resources and properties.
pub const AF_NS: &str = "urn:rdfa:af:";

/// The class every reloaded answer row is typed with.
pub const AF_ROW_CLASS: &str = "urn:rdfa:af:Row";

/// The tabular answer of an analytic query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerFrame {
    /// Column labels: grouping attributes first, then one per aggregate
    /// (e.g. `["manufacturer", "origin", "avg(price)"]`).
    pub headers: Vec<String>,
    /// Rows of terms; `None` = no value (e.g. AVG over an empty group).
    pub rows: Vec<Vec<Option<Term>>>,
    /// The HIFUN expression of the query (for display, §5.1).
    pub hifun: String,
    /// The SPARQL translation, when the translated strategy produced it.
    pub sparql: Option<String>,
    /// Set when the answer was not produced by the requested strategy —
    /// e.g. the SPARQL translation hit a resource limit and the session
    /// degraded to direct HIFUN evaluation. Holds the reason.
    pub fallback: Option<String>,
}

impl AnswerFrame {
    /// Wrap a solution table with display headers.
    pub fn from_solutions(
        headers: Vec<String>,
        solutions: Solutions,
        hifun: String,
        sparql: Option<String>,
    ) -> Self {
        debug_assert_eq!(headers.len(), solutions.vars().len());
        AnswerFrame { headers, rows: solutions.into_rows(), hifun, sparql, fallback: None }
    }

    /// Record that this answer came from a degraded evaluation path.
    pub fn with_fallback(mut self, reason: impl Into<String>) -> Self {
        self.fallback = Some(reason.into());
        self
    }

    /// Number of answer rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a plain-text table (Fig 6.3 a). Fractional numerics are
    /// rounded to two decimals for display (the underlying terms keep full
    /// precision).
    /// Column widths are measured in characters, not bytes, so non-ASCII
    /// labels stay aligned.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        let render = |t: &Term| -> String {
            match rdfa_model::Value::from_term(t) {
                rdfa_model::Value::Float(v) if v.fract().abs() > 1e-9 => format!("{v:.2}"),
                _ => t.display_name(),
            }
        };
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.as_ref().map(render).unwrap_or_default();
                        widths[i] = widths[i].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!("| {:<w$} ", h, w = widths[i]));
        }
        out.push_str("|\n");
        for w in &widths {
            out.push_str(&format!("|{}", "-".repeat(w + 2)));
        }
        out.push_str("|\n");
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("| {:<w$} ", c, w = widths[i]));
            }
            out.push_str("|\n");
        }
        out
    }

    /// Build the frame's 2D bar chart (Fig 6.4): categories from the first
    /// column, one series per aggregate column (the columns after
    /// `n_group_cols`). Rows beyond `max_rows` are dropped with a truncation
    /// note in the title.
    pub fn bar_chart(
        &self,
        n_group_cols: usize,
        max_rows: usize,
    ) -> Result<rdfa_viz::BarChart, String> {
        if n_group_cols >= self.headers.len() {
            return Err("no aggregate columns to chart".into());
        }
        let series: Vec<String> = self.headers[n_group_cols..].to_vec();
        let truncated = self.rows.len() > max_rows;
        let data: Vec<rdfa_viz::BarDatum> = self
            .rows
            .iter()
            .take(max_rows)
            .map(|row| rdfa_viz::BarDatum {
                label: row[..n_group_cols]
                    .iter()
                    .map(|c| c.as_ref().map(|t| t.display_name()).unwrap_or_default())
                    .collect::<Vec<_>>()
                    .join(" / "),
                values: row[n_group_cols..]
                    .iter()
                    .map(|c| {
                        c.as_ref()
                            .and_then(|t| rdfa_model::Value::from_term(t).as_f64())
                            .unwrap_or(0.0)
                    })
                    .collect(),
            })
            .collect();
        let title = if truncated {
            format!("{} (first {max_rows} of {} groups)", self.hifun, self.rows.len())
        } else {
            self.hifun.clone()
        };
        rdfa_viz::BarChart::new(title, series, data)
    }

    /// Export as CSV: headers then rows, comma-separated with quoting. This
    /// is the interchange format of the dissertation's 3D visualizer
    /// (system (1b): "data is imported as a .csv file where the headers
    /// correspond to the attributes of analysis").
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = self
            .headers
            .iter()
            .map(|h| cell(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            let line = row
                .iter()
                .map(|c| cell(&c.as_ref().map(|t| t.display_name()).unwrap_or_default()))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// The property IRI a column gets when the frame is reloaded.
    pub fn column_property(&self, index: usize) -> String {
        format!("{AF_NS}{}", sanitize(&self.headers[index]))
    }

    /// **Load the AF as a new dataset** (§5.3.3, the "Explore with FS"
    /// button): each tuple `(t_i1 … t_ik)` gets a fresh identifier `t_i` and
    /// produces the `n × k` triples `(t_i, A_j, t_ij)`, plus an `rdf:type
    /// af:Row` triple so the rows form a class the faceted UI can start
    /// from. Subsequent restrictions over the returned store correspond to
    /// HAVING clauses over the original data, and the process nests without
    /// limit.
    pub fn load_as_dataset(&self) -> Store {
        let mut store = Store::new();
        store.load_graph(&self.dataset_graph());
        store
    }

    /// The reload triples themselves (what [`load_as_dataset`] inserts):
    /// per row, one `rdf:type af:Row` triple plus one triple per bound cell.
    ///
    /// [`load_as_dataset`]: AnswerFrame::load_as_dataset
    pub fn dataset_graph(&self) -> Graph {
        let row_class = Term::iri(AF_ROW_CLASS);
        let rdf_type = Term::iri(rdfa_model::vocab::rdf::TYPE);
        let mut graph = Graph::new();
        for (i, row) in self.rows.iter().enumerate() {
            let subject = Term::iri(format!("{AF_NS}row{}", i + 1));
            graph.push(Triple::new(subject.clone(), rdf_type.clone(), row_class.clone()));
            for (j, cell) in row.iter().enumerate() {
                if let Some(value) = cell {
                    graph.push(Triple::new(
                        subject.clone(),
                        Term::iri(self.column_property(j)),
                        value.clone(),
                    ));
                }
            }
        }
        graph
    }

    /// Reload the AF as a **durable** dataset rooted at `dir`: the answer
    /// triples are WAL-logged into a [`PersistentStore`], so an analysis
    /// session built on a reloaded answer survives a crash and can be
    /// reopened later (the nested-exploration workflow of §5.3.3, made
    /// restart-safe). Reopening a non-empty directory appends nothing; the
    /// existing dataset wins.
    pub fn persist_as_dataset(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<PersistentStore, PersistError> {
        let mut store = PersistentStore::open(dir, PersistConfig::default())?;
        if store.is_empty() {
            store.load_graph(&self.dataset_graph())?;
        }
        Ok(store)
    }
}

/// Make a header safe for use inside an IRI.
fn sanitize(header: &str) -> String {
    header
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> AnswerFrame {
        AnswerFrame {
            headers: vec!["manufacturer".into(), "year".into(), "avg(price)".into()],
            rows: vec![
                vec![
                    Some(Term::iri("http://e/DELL")),
                    Some(Term::integer(2020)),
                    Some(Term::integer(900)),
                ],
                vec![
                    Some(Term::iri("http://e/ACER")),
                    Some(Term::integer(2021)),
                    Some(Term::integer(820)),
                ],
                vec![
                    Some(Term::iri("http://e/DELL")),
                    Some(Term::integer(2021)),
                    Some(Term::integer(1000)),
                ],
            ],
            hifun: "(manufacturer ⊗ year∘releaseDate, price, AVG)".into(),
            sparql: None,
            fallback: None,
        }
    }

    #[test]
    fn table_rendering() {
        let t = frame().to_table();
        assert!(t.contains("manufacturer"));
        assert!(t.contains("DELL"));
        assert!(t.contains("avg(price)"));
    }

    #[test]
    fn reload_produces_n_times_k_plus_type_triples() {
        let f = frame();
        let store = f.load_as_dataset();
        // 3 rows × (3 value triples + 1 type triple)
        assert_eq!(store.len(), 12);
        let row_class = store.lookup_iri(AF_ROW_CLASS).unwrap();
        assert_eq!(store.instances(row_class).len(), 3);
    }

    #[test]
    fn reloaded_dataset_supports_faceted_search() {
        // Fig 5.2: each column becomes a facet with the column values
        let f = frame();
        let store = f.load_as_dataset();
        let rows = store.instances_set(store.lookup_iri(AF_ROW_CLASS).unwrap());
        let facets = rdfa_facets::property_facets(&store, &rows);
        assert_eq!(facets.len(), 3);
        let man = facets
            .iter()
            .find(|p| store.term(p.property).display_name() == "manufacturer")
            .unwrap();
        // DELL appears in 2 rows, ACER in 1
        let counts: Vec<usize> = man.values.iter().map(|&(_, n)| n).collect();
        assert_eq!(counts.iter().sum::<usize>(), 3);
    }

    #[test]
    fn reload_skips_unbound_cells() {
        let mut f = frame();
        f.rows[0][2] = None;
        let store = f.load_as_dataset();
        assert_eq!(store.len(), 11);
    }

    #[test]
    fn persisted_dataset_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("rdfa-af-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f = frame();
        {
            let store = f.persist_as_dataset(&dir).unwrap();
            assert_eq!(store.len(), 12);
            store.checkpoint().unwrap();
        }
        // reopen: the reloaded answer dataset is still there, still a
        // faceted-search starting point — and a second persist call does
        // not double-load it
        let store = f.persist_as_dataset(&dir).unwrap();
        assert_eq!(store.len(), 12);
        let row_class = store.lookup_iri(AF_ROW_CLASS).unwrap();
        assert_eq!(store.instances(row_class).len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bar_chart_uses_aggregate_columns_as_series() {
        let f = frame();
        let chart = f.bar_chart(2, 10).unwrap();
        assert_eq!(chart.series_names, vec!["avg(price)".to_string()]);
        assert_eq!(chart.data.len(), 3);
        assert_eq!(chart.data[0].label, "DELL / 2020");
        assert_eq!(chart.data[0].values, vec![900.0]);
        // truncation annotates the title
        let small = f.bar_chart(2, 2).unwrap();
        assert!(small.title.contains("first 2 of 3"));
        // no aggregate columns → error
        assert!(f.bar_chart(3, 10).is_err());
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut f = frame();
        f.rows[0][0] = Some(Term::string("DELL, Inc. \"US\""));
        let csv = f.to_csv();
        assert!(csv.starts_with("manufacturer,year,avg(price)\n"));
        assert!(csv.contains("\"DELL, Inc. \"\"US\"\"\""));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn sanitized_column_properties() {
        let f = frame();
        assert_eq!(f.column_property(2), "urn:rdfa:af:avg_price_");
    }
}
