//! # rdfa-core — the RDF-Analytics interaction model
//!
//! The paper's primary contribution (Chapter 5): a faceted-search session
//! **extended with analytics actions**, so that ordinary users formulate
//! HIFUN analytic queries by clicking:
//!
//! - the **G button** next to a facet adds it (or a property path through
//!   it) as a *grouping* attribute;
//! - the **⨊ button** sets the *measuring* attribute and one or more
//!   aggregate operations (avg, sum, max, …);
//! - the **⧩ (filter) button** restricts values by range (inherited from the
//!   faceted layer);
//! - the **Answer Frame** shows the analytic answer in tabular form and can
//!   be **reloaded as a new RDF dataset** (§5.3.3), which is how `HAVING`
//!   restrictions and arbitrarily nested analytics are expressed;
//! - **OLAP operators** (Chapter 7) — roll-up, drill-down, slice, dice,
//!   pivot — are derived moves over the same state.
//!
//! Two interchangeable evaluation strategies implement a state's analytic
//! intention (the comparison of Fig 8.3): translating the HIFUN query to
//! SPARQL and running the engine, or evaluating HIFUN directly.
//!
//! ```
//! use rdfa_store::Store;
//! use rdfa_core::{AnalyticsSession, GroupSpec, MeasureSpec};
//! use rdfa_hifun::AggOp;
//!
//! let mut store = Store::new();
//! store.load_turtle(r#"
//!   @prefix ex: <http://example.org/> .
//!   ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 900 .
//!   ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 1000 .
//!   ex:l3 a ex:Laptop ; ex:manufacturer ex:ACER ; ex:price 820 .
//! "#).unwrap();
//!
//! let mut s = AnalyticsSession::start(&store);
//! let laptop = store.lookup_iri("http://example.org/Laptop").unwrap();
//! let man = store.lookup_iri("http://example.org/manufacturer").unwrap();
//! let price = store.lookup_iri("http://example.org/price").unwrap();
//! s.select_class(laptop).unwrap();
//! s.add_grouping(GroupSpec::property(man));
//! s.set_measure(MeasureSpec::property(price));
//! s.set_ops(vec![AggOp::Avg]);
//! let answer = s.run().unwrap();
//! assert_eq!(answer.rows.len(), 2);
//! ```

pub mod answer;
pub mod expressive;
pub mod olap;
pub mod script;
pub mod session;
pub mod transform;

pub use answer::AnswerFrame;
pub use expressive::{check_expressibility, Expressibility, InexpressibleReason};
pub use olap::OlapOp;
pub use script::{Action, Script};
pub use transform::{Transform, Transformed};
pub use session::{AnalyticsSession, EvalStrategy, GroupSpec, MeasureSpec};

/// Errors from the analytics layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticsError {
    pub message: String,
}

impl AnalyticsError {
    pub fn new(message: impl Into<String>) -> Self {
        AnalyticsError { message: message.into() }
    }
}

impl std::fmt::Display for AnalyticsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "analytics error: {}", self.message)
    }
}

impl std::error::Error for AnalyticsError {}

impl From<rdfa_facets::FacetError> for AnalyticsError {
    fn from(e: rdfa_facets::FacetError) -> Self {
        AnalyticsError::new(e.message)
    }
}

impl From<rdfa_sparql::SparqlError> for AnalyticsError {
    fn from(e: rdfa_sparql::SparqlError) -> Self {
        AnalyticsError::new(e.message())
    }
}

impl From<rdfa_hifun::HifunError> for AnalyticsError {
    fn from(e: rdfa_hifun::HifunError) -> Self {
        AnalyticsError::new(e.message)
    }
}
