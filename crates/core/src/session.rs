//! The analytics session: faceted search + the G/⨊ buttons + evaluation.

use crate::answer::AnswerFrame;
use crate::AnalyticsError;
use rdfa_facets::{Constraint, FacetedSession, PathStep};
use rdfa_hifun::query::{ResultRestriction, RestrictedPath};
use rdfa_hifun::{direct, translate, AggOp, AttrPath, CondOp, DerivedFn, HifunQuery, Restriction, Step};
use rdfa_model::{Term, Value};
use rdfa_sparql::{Engine, EvalLimits};
use rdfa_store::{Store, TermId};

/// How a state's analytic intention is computed (the two implementations
/// compared in Fig 8.3 / experiment E5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Translate the HIFUN query to SPARQL and run the engine (the system's
    /// architecture, Fig 6.1).
    #[default]
    TranslatedSparql,
    /// Evaluate HIFUN's grouping → measuring → reduction directly.
    DirectHifun,
}

/// A grouping attribute selected with the G button: a (forward) property
/// path from the focus resources, optionally ending in a derived function
/// (the transform button `ƒ`, §5.1 "Special cases").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    pub path: Vec<TermId>,
    pub derived: Option<DerivedFn>,
}

impl GroupSpec {
    /// Group by a single property.
    pub fn property(prop: TermId) -> Self {
        GroupSpec { path: vec![prop], derived: None }
    }

    /// Group by a property path (e.g. manufacturer → origin).
    pub fn path(path: Vec<TermId>) -> Self {
        GroupSpec { path, derived: None }
    }

    /// Apply a derived function to the terminal value (e.g. YEAR).
    pub fn with_derived(mut self, f: DerivedFn) -> Self {
        self.derived = Some(f);
        self
    }
}

/// The measuring attribute selected with the ⨊ button.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureSpec {
    pub path: Vec<TermId>,
    pub derived: Option<DerivedFn>,
}

impl MeasureSpec {
    /// Measure a single property.
    pub fn property(prop: TermId) -> Self {
        MeasureSpec { path: vec![prop], derived: None }
    }

    /// Measure through a property path.
    pub fn path(path: Vec<TermId>) -> Self {
        MeasureSpec { path, derived: None }
    }
}

/// A faceted-search session extended with the analytics state of §5.2.2:
/// grouping expression, measuring expression, and aggregate operations.
/// Clicking G/⨊ changes only the intention — the extension and the
/// transition markers stay, exactly as the paper specifies.
pub struct AnalyticsSession<'s> {
    facets: FacetedSession<'s>,
    groupings: Vec<GroupSpec>,
    measure: Option<MeasureSpec>,
    ops: Vec<AggOp>,
    havings: Vec<(usize, CondOp, Term)>,
    strategy: EvalStrategy,
    limits: EvalLimits,
    /// Click log, exportable as a replayable [`crate::Script`].
    log: Vec<crate::script::Action>,
}

impl<'s> AnalyticsSession<'s> {
    /// Start a session over a store.
    pub fn start(store: &'s Store) -> Self {
        AnalyticsSession {
            facets: FacetedSession::start(store),
            groupings: Vec::new(),
            measure: None,
            ops: Vec::new(),
            havings: Vec::new(),
            strategy: EvalStrategy::default(),
            limits: EvalLimits::default(),
            log: Vec::new(),
        }
    }

    /// Start from an externally obtained result set — e.g. a keyword
    /// search's hits (§5.4.1's second starting point).
    pub fn start_from(store: &'s Store, results: std::collections::BTreeSet<TermId>) -> Self {
        AnalyticsSession {
            facets: FacetedSession::start_from(store, results),
            groupings: Vec::new(),
            measure: None,
            ops: Vec::new(),
            havings: Vec::new(),
            strategy: EvalStrategy::default(),
            limits: EvalLimits::default(),
            log: Vec::new(),
        }
    }

    /// Choose the evaluation strategy (E5 ablation).
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Share a marker cache with other sessions over the same store; makes
    /// revisited states (back button, repeated requests) O(1).
    pub fn with_facet_cache(mut self, cache: std::sync::Arc<rdfa_facets::FacetCache>) -> Self {
        self.facets.set_cache(cache);
        self
    }

    /// Bound the resources [`run`](Self::run) may spend on the SPARQL
    /// strategy. When a limit trips, the session degrades to direct HIFUN
    /// evaluation and records the fallback in the answer's provenance.
    pub fn with_limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The underlying faceted session (immutable).
    pub fn facets(&self) -> &FacetedSession<'s> {
        &self.facets
    }

    /// The underlying faceted session (for exploration actions).
    pub fn facets_mut(&mut self) -> &mut FacetedSession<'s> {
        &mut self.facets
    }

    /// The backing store.
    pub fn store(&self) -> &'s Store {
        self.facets.store()
    }

    // ---- faceted actions (delegated) ---------------------------------------

    /// Click a class marker.
    pub fn select_class(&mut self, c: TermId) -> Result<(), AnalyticsError> {
        self.facets.select_class(c)?;
        if let Some(iri) = self.store().term(c).as_iri() {
            self.log.push(crate::script::Action::SelectClass(iri.to_owned()));
        }
        Ok(())
    }

    /// Click a property value marker.
    pub fn select_value(&mut self, prop: TermId, value: TermId) -> Result<(), AnalyticsError> {
        self.facets.select_value(prop, value)?;
        self.record_path_value(&[PathStep::fwd(prop)], value);
        Ok(())
    }

    /// Click a value at the end of an expanded property path.
    pub fn select_path_value(
        &mut self,
        path: &[PathStep],
        value: TermId,
    ) -> Result<(), AnalyticsError> {
        self.facets.select_path_value(path, value)?;
        self.record_path_value(path, value);
        Ok(())
    }

    /// Tick several value checkboxes of one facet (disjunctive selection).
    /// Not representable in HIFUN root conditions, so analytics over such a
    /// state automatically pin the extension via `VALUES`.
    pub fn select_values(
        &mut self,
        prop: TermId,
        values: &std::collections::BTreeSet<TermId>,
    ) -> Result<(), AnalyticsError> {
        Ok(self.facets.select_values(prop, values)?)
    }

    /// Apply a range filter (the ⧩ button).
    pub fn select_range(
        &mut self,
        path: &[PathStep],
        min: Option<Value>,
        max: Option<Value>,
    ) -> Result<(), AnalyticsError> {
        self.facets.select_range(path, min.clone(), max.clone())?;
        if let Some(iris) = self.path_iris(path) {
            self.log.push(crate::script::Action::SelectRange {
                path: iris,
                min: min.as_ref().map(value_to_script),
                max: max.as_ref().map(value_to_script),
            });
        }
        Ok(())
    }

    fn record_path_value(&mut self, path: &[PathStep], value: TermId) {
        if let Some(iris) = self.path_iris(path) {
            let v = term_to_script(self.store().term(value));
            self.log.push(crate::script::Action::SelectPathValue { path: iris, value: v });
        }
    }

    /// Forward path → IRI strings; inverse steps are not representable in
    /// the script DSL, so such actions are skipped in the log.
    fn path_iris(&self, path: &[PathStep]) -> Option<Vec<String>> {
        path.iter()
            .map(|s| {
                if s.inverse {
                    None
                } else {
                    self.store().term(s.prop).as_iri().map(str::to_owned)
                }
            })
            .collect()
    }

    /// The click log as a replayable script (reproducibility: applying the
    /// returned script to a fresh session over the same store reproduces
    /// this session's state).
    pub fn recorded_script(&self) -> crate::script::Script {
        crate::script::Script { actions: self.log.clone() }
    }

    // ---- analytics actions (the extension of §5.2.2) -----------------------

    /// Click the G button of a facet (or expanded path): add a grouping
    /// attribute. Clicking G on several facets groups by all of them
    /// (the ">1 attributes" dialogue of §5.1).
    pub fn add_grouping(&mut self, spec: GroupSpec) {
        if !self.groupings.contains(&spec) {
            if let Some(path) = spec
                .path
                .iter()
                .map(|&p| self.store().term(p).as_iri().map(str::to_owned))
                .collect::<Option<Vec<_>>>()
            {
                self.log
                    .push(crate::script::Action::AddGrouping { path, derived: spec.derived });
            }
            self.groupings.push(spec);
        }
    }

    /// Un-click a G button.
    pub fn remove_grouping(&mut self, index: usize) {
        if index < self.groupings.len() {
            self.groupings.remove(index);
        }
    }

    /// Replace a grouping attribute in place (granularity changes).
    pub fn replace_grouping(&mut self, index: usize, spec: GroupSpec) {
        if index < self.groupings.len() {
            self.groupings[index] = spec;
        }
    }

    /// Swap two grouping attributes (the pivot move).
    pub fn swap_groupings(&mut self, a: usize, b: usize) {
        if a < self.groupings.len() && b < self.groupings.len() {
            self.groupings.swap(a, b);
        }
    }

    /// Current grouping attributes.
    pub fn groupings(&self) -> &[GroupSpec] {
        &self.groupings
    }

    /// Click the ⨊ button of a facet: set the measuring attribute.
    pub fn set_measure(&mut self, spec: MeasureSpec) {
        if let Some(path) = spec
            .path
            .iter()
            .map(|&p| self.store().term(p).as_iri().map(str::to_owned))
            .collect::<Option<Vec<_>>>()
        {
            self.log.push(crate::script::Action::SetMeasure { path });
        }
        self.measure = Some(spec);
    }

    /// Clear the measuring attribute (COUNT of items remains possible).
    pub fn clear_measure(&mut self) {
        self.measure = None;
    }

    /// Select the aggregate operations from the ⨊ menu (several allowed,
    /// Fig 6.2).
    pub fn set_ops(&mut self, ops: Vec<AggOp>) {
        self.log.push(crate::script::Action::SetOps(ops.clone()));
        self.ops = ops;
    }

    /// Add a result restriction (HAVING) on the `idx`-th aggregate. In the
    /// GUI this is expressed by reloading the answer frame and filtering
    /// (§5.3.3); the direct form is offered for programmatic use.
    pub fn add_having(&mut self, idx: usize, op: CondOp, value: Term) {
        self.log.push(crate::script::Action::AddHaving {
            op_index: idx,
            cond: op,
            value: term_to_script(&value),
        });
        self.havings.push((idx, op, value));
    }

    /// Reset all analytics state, keeping the faceted state.
    pub fn clear_analytics(&mut self) {
        self.groupings.clear();
        self.measure = None;
        self.ops.clear();
        self.havings.clear();
    }

    /// Check HIFUN's applicability (§4.1.1) for an attribute over the
    /// current extension: functional, missing values, or multi-valued. The
    /// GUI uses this to decide whether to offer the transform (ƒ) button.
    pub fn attribute_applicability(&self, prop: TermId) -> rdfa_hifun::Applicability {
        let store = self.store();
        let iri = store
            .term(prop)
            .as_iri()
            .map(str::to_owned)
            .unwrap_or_default();
        let ctx = rdfa_hifun::AnalysisContext::over_set(
            self.facets.extension().to_btree_set(),
            vec![AttrPath::prop(iri)],
        );
        ctx.check_applicability(store)
            .pop()
            .map(|(_, a)| a)
            .unwrap_or(rdfa_hifun::Applicability::Functional)
    }

    // ---- intention ----------------------------------------------------------

    /// Build the HIFUN query for the current state (the intention of §5.5).
    pub fn hifun_query(&self) -> Result<HifunQuery, AnalyticsError> {
        if self.ops.is_empty() {
            return Err(AnalyticsError::new(
                "no aggregate operation selected (click the ⨊ button first)",
            ));
        }
        let store = self.store();
        let mut q = HifunQuery {
            root: Default::default(),
            groupings: Vec::new(),
            measuring: None,
            ops: self.ops.clone(),
            result_restrictions: self
                .havings
                .iter()
                .map(|(idx, op, value)| ResultRestriction {
                    op_index: *idx,
                    op: *op,
                    value: value.clone(),
                })
                .collect(),
        };

        // root: map the faceted intention when possible, else pin the
        // extension with VALUES
        let intent = self.facets.intent();
        let mut mapped = Vec::new();
        let mut mappable = true;
        for cond in &intent.conditions {
            match map_condition(store, &cond.path, &cond.constraint) {
                Some(rs) => mapped.extend(rs),
                None => {
                    mappable = false;
                    break;
                }
            }
        }
        if mappable {
            if let Some(c) = intent.class {
                if let Some(iri) = store.term(c).as_iri() {
                    q.root.class = Some(iri.to_owned());
                }
            }
            q.root.conditions = mapped;
            // a session started from external results carries its seed set
            if let Some(seed) = &intent.seed {
                q.root.among =
                    Some(seed.iter().map(|&id| store.term(id).clone()).collect());
            }
        } else {
            q.root.among = Some(
                self.facets
                    .extension()
                    .iter()
                    .map(|id| store.term(id).clone())
                    .collect(),
            );
        }

        for g in &self.groupings {
            q.groupings
                .push(RestrictedPath::new(spec_to_path(store, &g.path, g.derived)?));
        }
        if let Some(m) = &self.measure {
            q.measuring = Some(RestrictedPath::new(spec_to_path(store, &m.path, m.derived)?));
        }
        Ok(q)
    }

    /// The SPARQL translation of the current analytic intention.
    pub fn sparql(&self) -> Result<String, AnalyticsError> {
        Ok(translate::to_sparql(&self.hifun_query()?))
    }

    /// Evaluate the analytic intention, producing the Answer Frame.
    ///
    /// Under the `TranslatedSparql` strategy the engine runs with this
    /// session's [`EvalLimits`]; if a limit trips, the session degrades
    /// gracefully to the direct functional evaluator instead of failing,
    /// and the answer's `fallback` field records why.
    pub fn run(&self) -> Result<AnswerFrame, AnalyticsError> {
        let q = self.hifun_query()?;
        let store = self.store();
        let headers = self.headers(&q);
        match self.strategy {
            EvalStrategy::TranslatedSparql => {
                let text = translate::to_sparql(&q);
                match Engine::builder(store).limits(self.limits.clone()).build().run(&text) {
                    Ok(results) => {
                        let sols = results.into_solutions().ok_or_else(|| {
                            AnalyticsError::new("translated query was not a SELECT")
                        })?;
                        Ok(AnswerFrame::from_solutions(headers, sols, q.to_string(), Some(text)))
                    }
                    Err(e) if e.is_resource_limit() => {
                        let sols = direct::evaluate(store, &q)?;
                        Ok(AnswerFrame::from_solutions(headers, sols, q.to_string(), None)
                            .with_fallback(format!(
                                "SPARQL strategy aborted ({}); fell back to direct HIFUN evaluation",
                                e.message()
                            )))
                    }
                    Err(e) => Err(e.into()),
                }
            }
            EvalStrategy::DirectHifun => {
                let sols = direct::evaluate(store, &q)?;
                Ok(AnswerFrame::from_solutions(headers, sols, q.to_string(), None))
            }
        }
    }

    fn headers(&self, q: &HifunQuery) -> Vec<String> {
        let store = self.store();
        let mut headers: Vec<String> = self
            .groupings
            .iter()
            .map(|g| {
                let base = g
                    .path
                    .iter()
                    .map(|&p| store.term(p).display_name())
                    .collect::<Vec<_>>()
                    .join("/");
                match g.derived {
                    Some(f) => format!("{}({base})", f.sparql().to_lowercase()),
                    None => base,
                }
            })
            .collect();
        for op in &q.ops {
            let measure = match &self.measure {
                Some(m) => m
                    .path
                    .iter()
                    .map(|&p| store.term(p).display_name())
                    .collect::<Vec<_>>()
                    .join("/"),
                None => "items".to_owned(),
            };
            headers.push(format!("{}({measure})", op.label()));
        }
        headers
    }
}

/// Convert a term to its script representation.
fn term_to_script(t: &Term) -> crate::script::ScriptTerm {
    use crate::script::ScriptTerm;
    match Value::from_term(t) {
        Value::Int(v) => ScriptTerm::Int(v),
        Value::Float(v) => ScriptTerm::Float(v),
        Value::Date(d) => ScriptTerm::Date(d),
        Value::Str(s, _) => ScriptTerm::Str(s),
        _ => match t {
            Term::Iri(iri) => ScriptTerm::Iri(iri.clone()),
            other => ScriptTerm::Str(other.display_name()),
        },
    }
}

/// Convert a typed value to its script representation.
fn value_to_script(v: &Value) -> crate::script::ScriptTerm {
    term_to_script(&v.to_term())
}

/// Convert a GroupSpec/MeasureSpec path of interned properties into a HIFUN
/// attribute path. Fails on non-IRI predicates.
fn spec_to_path(
    store: &Store,
    path: &[TermId],
    derived: Option<DerivedFn>,
) -> Result<AttrPath, AnalyticsError> {
    let mut steps = Vec::with_capacity(path.len() + 1);
    for &p in path {
        let iri = store
            .term(p)
            .as_iri()
            .ok_or_else(|| AnalyticsError::new("grouping path step is not an IRI property"))?;
        steps.push(Step::Prop(iri.to_owned()));
    }
    if let Some(f) = derived {
        steps.push(Step::Derived(f));
    }
    Ok(AttrPath { steps })
}

/// Map one faceted condition to HIFUN root restrictions; `None` when the
/// condition uses features HIFUN roots cannot express (inverse steps,
/// OneOf sets).
fn map_condition(
    store: &Store,
    path: &[PathStep],
    constraint: &Constraint,
) -> Option<Vec<Restriction>> {
    let mut steps = Vec::with_capacity(path.len());
    for s in path {
        if s.inverse {
            return None;
        }
        steps.push(Step::Prop(store.term(s.prop).as_iri()?.to_owned()));
    }
    match constraint {
        Constraint::Value(v) => Some(vec![Restriction::via(
            steps,
            CondOp::Eq,
            store.term(*v).clone(),
        )]),
        Constraint::OneOf(_) => None,
        Constraint::Range { min, max } => {
            let mut out = Vec::new();
            if let Some(m) = min {
                out.push(Restriction::via(steps.clone(), CondOp::Ge, m.to_term()));
            }
            if let Some(m) = max {
                out.push(Restriction::via(steps, CondOp::Le, m.to_term()));
            }
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               ex:Laptop rdfs:subClassOf ex:Product .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 900 ; ex:usb 2 ;
                     ex:releaseDate "2021-06-10"^^xsd:date .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 1000 ; ex:usb 4 ;
                     ex:releaseDate "2020-03-01"^^xsd:date .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:ACER ; ex:price 820 ; ex:usb 2 ;
                     ex:releaseDate "2021-09-03"^^xsd:date .
               ex:DELL ex:origin ex:USA . ex:ACER ex:origin ex:Taiwan .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup_iri(&format!("{EX}{local}")).unwrap()
    }

    fn row_value(frame: &AnswerFrame, key: &str, col: usize) -> Option<Value> {
        frame
            .rows
            .iter()
            .find(|r| r[0].as_ref().map(|t| t.display_name()).as_deref() == Some(key))
            .and_then(|r| r[col].as_ref())
            .map(Value::from_term)
    }

    #[test]
    fn example1_avg_without_group_by() {
        // §5.1 Example 1: average price of laptops with 2 USB ports
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.select_value(id(&s, "usb"), s.lookup(&Term::integer(2)).unwrap()).unwrap();
        a.set_measure(MeasureSpec::property(id(&s, "price")));
        a.set_ops(vec![AggOp::Avg]);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 1);
        let avg = Value::from_term(frame.rows[0][0].as_ref().unwrap());
        assert!(avg.value_eq(&Value::Float(860.0))); // (900+820)/2
    }

    #[test]
    fn example2_count_grouped_by_path() {
        // §5.1 Example 2: count laptops grouped by manufacturer's country
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.add_grouping(GroupSpec::path(vec![id(&s, "manufacturer"), id(&s, "origin")]));
        a.set_ops(vec![AggOp::Count]);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 2);
        assert!(row_value(&frame, "USA", 1).unwrap().value_eq(&Value::Int(2)));
        assert!(row_value(&frame, "Taiwan", 1).unwrap().value_eq(&Value::Int(1)));
    }

    #[test]
    fn example3_range_filter_then_count() {
        // §5.1 Example 3: 2-or-more USB ports, count by origin
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.select_range(&[PathStep::fwd(id(&s, "usb"))], Some(Value::Int(2)), None)
            .unwrap();
        a.add_grouping(GroupSpec::path(vec![id(&s, "manufacturer"), id(&s, "origin")]));
        a.set_ops(vec![AggOp::Count]);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 2);
    }

    #[test]
    fn multiple_aggregates_fig_6_2() {
        // Fig 6.2: avg, sum and max price of laptops with 2–4 USB ports,
        // by manufacturer and origin
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.select_range(
            &[PathStep::fwd(id(&s, "usb"))],
            Some(Value::Int(2)),
            Some(Value::Int(4)),
        )
        .unwrap();
        a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        a.add_grouping(GroupSpec::path(vec![id(&s, "manufacturer"), id(&s, "origin")]));
        a.set_measure(MeasureSpec::property(id(&s, "price")));
        a.set_ops(vec![AggOp::Avg, AggOp::Sum, AggOp::Max]);
        let frame = a.run().unwrap();
        assert_eq!(frame.headers.len(), 5);
        assert!(row_value(&frame, "DELL", 2).unwrap().value_eq(&Value::Float(950.0)));
        assert!(row_value(&frame, "DELL", 3).unwrap().value_eq(&Value::Int(1900)));
        assert!(row_value(&frame, "DELL", 4).unwrap().value_eq(&Value::Int(1000)));
    }

    #[test]
    fn derived_year_grouping() {
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.add_grouping(GroupSpec::property(id(&s, "releaseDate")).with_derived(DerivedFn::Year));
        a.set_ops(vec![AggOp::Count]);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 2);
        assert!(row_value(&frame, "2021", 1).unwrap().value_eq(&Value::Int(2)));
    }

    #[test]
    fn both_strategies_agree() {
        let s = store();
        for strategy in [EvalStrategy::TranslatedSparql, EvalStrategy::DirectHifun] {
            let mut a = AnalyticsSession::start(&s).with_strategy(strategy);
            a.select_class(id(&s, "Laptop")).unwrap();
            a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
            a.set_measure(MeasureSpec::property(id(&s, "price")));
            a.set_ops(vec![AggOp::Sum]);
            let frame = a.run().unwrap();
            assert!(row_value(&frame, "DELL", 1).unwrap().value_eq(&Value::Int(1900)));
            assert!(row_value(&frame, "ACER", 1).unwrap().value_eq(&Value::Int(820)));
        }
    }

    #[test]
    fn having_restriction_direct_form() {
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        a.set_measure(MeasureSpec::property(id(&s, "price")));
        a.set_ops(vec![AggOp::Avg]);
        a.add_having(0, CondOp::Gt, Term::integer(900));
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 1);
        assert_eq!(frame.rows[0][0].as_ref().unwrap().display_name(), "DELL");
    }

    #[test]
    fn error_without_ops() {
        let s = store();
        let a = AnalyticsSession::start(&s);
        assert!(a.run().is_err());
    }

    #[test]
    fn generated_sparql_carries_facet_conditions() {
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        a.select_value(id(&s, "manufacturer"), id(&s, "DELL")).unwrap();
        a.set_measure(MeasureSpec::property(id(&s, "price")));
        a.set_ops(vec![AggOp::Avg]);
        let text = a.sparql().unwrap();
        assert!(text.contains("<http://e/manufacturer> <http://e/DELL>"), "{text}");
        assert!(text.contains("rdf-syntax-ns#type> <http://e/Laptop>"), "{text}");
    }

    #[test]
    fn buttons_do_not_change_extension() {
        // §5.2.2: clicking G/⨊ changes the intention, not the extension
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        let before = a.facets().extension().clone();
        a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        a.set_measure(MeasureSpec::property(id(&s, "price")));
        a.set_ops(vec![AggOp::Sum]);
        assert_eq!(a.facets().extension(), &before);
    }

    #[test]
    fn multi_select_falls_back_to_values_pinning() {
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        a.select_class(id(&s, "Laptop")).unwrap();
        let both: std::collections::BTreeSet<TermId> =
            [id(&s, "DELL"), id(&s, "ACER")].into_iter().collect();
        a.select_values(id(&s, "manufacturer"), &both).unwrap();
        a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        a.set_ops(vec![AggOp::Count]);
        // OneOf is not expressible as a HIFUN root condition → VALUES pinning
        let sparql = a.sparql().unwrap();
        assert!(sparql.contains("VALUES ?x1"), "{sparql}");
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 2);
        assert!(row_value(&frame, "DELL", 1).unwrap().value_eq(&Value::Int(2)));
    }

    #[test]
    fn seeded_session_restricts_analytics() {
        // regression: a session started from an explicit result set must
        // carry that seed into the analytic root (via VALUES), not fall back
        // to the whole KG
        let s = store();
        let seed: std::collections::BTreeSet<TermId> =
            [id(&s, "l1"), id(&s, "l3")].into_iter().collect();
        let mut a = AnalyticsSession::start_from(&s, seed);
        a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        a.set_ops(vec![AggOp::Count]);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 2);
        assert!(row_value(&frame, "DELL", 1).unwrap().value_eq(&Value::Int(1)));
        assert!(row_value(&frame, "ACER", 1).unwrap().value_eq(&Value::Int(1)));
        // the generated SPARQL pins the seed
        assert!(a.sparql().unwrap().contains("VALUES ?x1"));
        // and both strategies agree
        let seed2: std::collections::BTreeSet<TermId> =
            [id(&s, "l1"), id(&s, "l3")].into_iter().collect();
        let mut d = AnalyticsSession::start_from(&s, seed2).with_strategy(EvalStrategy::DirectHifun);
        d.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        d.set_ops(vec![AggOp::Count]);
        assert_eq!(d.run().unwrap().rows.len(), 2);
    }

    #[test]
    fn resource_limit_degrades_to_direct_evaluation() {
        let s = store();
        // a 1-row budget the translated SPARQL query cannot fit into
        let mut a = AnalyticsSession::start(&s).with_limits(EvalLimits::default().with_max_rows(1));
        a.select_class(id(&s, "Laptop")).unwrap();
        a.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        a.set_measure(MeasureSpec::property(id(&s, "price")));
        a.set_ops(vec![AggOp::Sum]);
        let frame = a.run().unwrap();
        // the answer is still correct — produced by the direct evaluator
        assert!(row_value(&frame, "DELL", 1).unwrap().value_eq(&Value::Int(1900)));
        let reason = frame.fallback.as_deref().expect("fallback must be recorded");
        assert!(reason.contains("resource limit"), "{reason}");
        assert!(reason.contains("direct HIFUN"), "{reason}");
        assert!(frame.sparql.is_none(), "the SPARQL text did not produce this answer");

        // generous limits: the SPARQL strategy completes, no fallback
        let mut b = AnalyticsSession::start(&s).with_limits(EvalLimits::interactive());
        b.select_class(id(&s, "Laptop")).unwrap();
        b.add_grouping(GroupSpec::property(id(&s, "manufacturer")));
        b.set_measure(MeasureSpec::property(id(&s, "price")));
        b.set_ops(vec![AggOp::Sum]);
        let frame = b.run().unwrap();
        assert!(frame.fallback.is_none());
        assert!(frame.sparql.is_some());
    }

    #[test]
    fn grouping_dedup_and_removal() {
        let s = store();
        let mut a = AnalyticsSession::start(&s);
        let g = GroupSpec::property(id(&s, "manufacturer"));
        a.add_grouping(g.clone());
        a.add_grouping(g);
        assert_eq!(a.groupings().len(), 1);
        a.remove_grouping(0);
        assert!(a.groupings().is_empty());
    }
}
