//! The expressive power of the model (Chapter 7, §7.1): which HIFUN queries
//! the interaction model can formulate.
//!
//! The model reaches every HIFUN query whose grouping and measuring
//! expressions are **compositions of properties** (with an optional terminal
//! derived attribute), possibly **paired**, whose restrictions are value
//! selections or ranges (facet clicks / the ⧩ filter), and whose result
//! restrictions are expressible by reloading the Answer Frame (§5.3.3).
//! Queries using the remaining functional-algebra operators — Cartesian
//! product projection, restrictions of the *operation* expression itself, or
//! derived functions in the middle of a chain — are outside the click
//! vocabulary.

use rdfa_hifun::{HifunQuery, Step};

/// Why a query is not reachable through the interaction model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InexpressibleReason {
    /// A derived attribute appears before the end of a composition chain;
    /// the transform (ƒ) button only applies to a facet's terminal values.
    DerivedMidChain { component: String },
    /// The query has no aggregate operation at all.
    NoOperation,
    /// A restriction's continuation path contains a derived step that is not
    /// terminal.
    DerivedMidRestriction,
}

/// The expressibility verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expressibility {
    /// The query can be formulated by a click sequence.
    Expressible,
    /// It cannot; the reasons say which feature is missing.
    NotExpressible(Vec<InexpressibleReason>),
}

/// Classify a HIFUN query against the model's click vocabulary (§7.1).
pub fn check_expressibility(q: &HifunQuery) -> Expressibility {
    let mut reasons = Vec::new();
    if q.ops.is_empty() {
        reasons.push(InexpressibleReason::NoOperation);
    }
    for (label, steps) in q
        .groupings
        .iter()
        .map(|rp| ("grouping", &rp.path.steps))
        .chain(q.measuring.iter().map(|rp| ("measuring", &rp.path.steps)))
    {
        if has_mid_chain_derived(steps) {
            reasons.push(InexpressibleReason::DerivedMidChain { component: label.to_owned() });
        }
    }
    for rp in q.groupings.iter().chain(q.measuring.iter()) {
        for r in &rp.restrictions {
            if has_mid_chain_derived(&r.path) {
                reasons.push(InexpressibleReason::DerivedMidRestriction);
            }
        }
    }
    if reasons.is_empty() {
        Expressibility::Expressible
    } else {
        Expressibility::NotExpressible(reasons)
    }
}

/// True when a derived step is followed by a property step.
fn has_mid_chain_derived(steps: &[Step]) -> bool {
    let mut seen_derived = false;
    for s in steps {
        match s {
            Step::Derived(_) => seen_derived = true,
            Step::Prop(_) if seen_derived => return true,
            Step::Prop(_) => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_hifun::{AggOp, AttrPath, DerivedFn, HifunQuery};

    #[test]
    fn plain_queries_are_expressible() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::props(&["http://e/a", "http://e/b"]))
            .measure(AttrPath::prop("http://e/q"));
        assert_eq!(check_expressibility(&q), Expressibility::Expressible);
    }

    #[test]
    fn terminal_derived_is_expressible() {
        let q = HifunQuery::new(AggOp::Count)
            .group_by(AttrPath::prop("http://e/date").derived(DerivedFn::Year));
        assert_eq!(check_expressibility(&q), Expressibility::Expressible);
    }

    #[test]
    fn mid_chain_derived_is_not() {
        let mut path = AttrPath::prop("http://e/date").derived(DerivedFn::Year);
        path = path.then("http://e/somethingElse");
        let q = HifunQuery::new(AggOp::Count).group_by(path);
        match check_expressibility(&q) {
            Expressibility::NotExpressible(rs) => {
                assert!(matches!(rs[0], InexpressibleReason::DerivedMidChain { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_op_is_reported() {
        let mut q = HifunQuery::new(AggOp::Count);
        q.ops.clear();
        assert!(matches!(
            check_expressibility(&q),
            Expressibility::NotExpressible(rs) if rs.contains(&InexpressibleReason::NoOperation)
        ));
    }
}
