//! The transform (ƒ) button of §5.1 "Special cases": when a facet's
//! attribute violates HIFUN's functionality assumption (multi-valued or
//! missing values, §4.2.6), the user applies a *feature-creation operator*
//! (Table 4.1) to it; the system derives a new functional feature and loads
//! it, after which analytics proceed normally.
//!
//! The operators themselves live in `rdfa_hifun::fco`; this module selects
//! and applies them over the current extension, returning the transformed
//! store plus the derived feature's property IRI so the caller can G/⨊ it.

use rdfa_hifun::fco;
use rdfa_hifun::{Applicability, AnalysisContext, AttrPath};
use rdfa_model::Graph;
use rdfa_store::{Store, TermId};
use std::collections::BTreeSet;

/// The transform menu: one entry per feature-creation operator of Table 4.1
/// that the GUI offers on a facet.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// FCO1 — `p.value`: materialize, substituting 0 for missing values.
    Value { property: String },
    /// FCO2 — `p.exists`: boolean presence feature.
    Exists { property: String },
    /// FCO3 — `p.count`: number of values.
    Count { property: String },
    /// FCO4 — `p.values.AsFeatures`: one boolean feature per value.
    ValuesAsFeatures { property: String },
    /// FCO5 — node degree.
    Degree,
    /// FCO6 — average neighbour degree.
    AverageDegree,
    /// FCO7 — `p1.p2.exists`.
    PathExists { p1: String, p2: String },
    /// FCO8 — `p1.p2.count`.
    PathCount { p1: String, p2: String },
    /// FCO9 — `p1.p2.value.maxFreq`.
    PathMaxFreq { p1: String, p2: String },
}

/// The outcome: the transformed store (original + derived feature triples)
/// and the derived feature property IRI(s).
#[derive(Debug)]
pub struct Transformed {
    pub store: Store,
    pub features: Vec<String>,
    /// Number of derived triples added.
    pub added: usize,
}

/// Apply a transform over an extension (the current state's focus set).
pub fn apply(store: &Store, extension: &BTreeSet<TermId>, transform: &Transform) -> Transformed {
    let graph: Graph = match transform {
        Transform::Value { property } => fco::fco1_value(store, property, extension),
        Transform::Exists { property } => fco::fco2_exists(store, property, extension),
        Transform::Count { property } => fco::fco3_count(store, property, extension),
        Transform::ValuesAsFeatures { property } => {
            fco::fco4_values_as_features(store, property, extension)
        }
        Transform::Degree => fco::fco5_degree(store, extension),
        Transform::AverageDegree => fco::fco6_average_degree(store, extension),
        Transform::PathExists { p1, p2 } => fco::fco7_path_exists(store, p1, p2, extension),
        Transform::PathCount { p1, p2 } => fco::fco8_path_count(store, p1, p2, extension),
        Transform::PathMaxFreq { p1, p2 } => fco::fco9_path_max_freq(store, p1, p2, extension),
    };
    let added = graph.len();
    let mut features: Vec<String> = graph
        .iter()
        .filter_map(|t| t.predicate.as_iri().map(str::to_owned))
        .collect();
    features.sort();
    features.dedup();
    Transformed { store: fco::apply(store, graph), features, added }
}

/// Suggest a repair for a non-functional attribute: the menu the GUI would
/// preselect when the user presses ƒ on a problematic facet (§4.2.6).
pub fn suggest(store: &Store, extension: &BTreeSet<TermId>, property: &str) -> Option<Transform> {
    let ctx = AnalysisContext::over_set(extension.clone(), vec![AttrPath::prop(property)]);
    match ctx.check_applicability(store).pop()?.1 {
        Applicability::Functional => None,
        Applicability::MissingValues { .. } => {
            Some(Transform::Value { property: property.to_owned() })
        }
        Applicability::MultiValued { .. } => {
            Some(Transform::Count { property: property.to_owned() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{AnalyticsSession, GroupSpec};
    use rdfa_hifun::AggOp;

    const EX: &str = "http://e/";

    /// Companies with multi-valued founders — HIFUN inapplicable directly.
    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:b1 a ex:Company ; ex:founder ex:pA , ex:pB ; ex:sector ex:tech .
               ex:b2 a ex:Company ; ex:founder ex:pC ; ex:sector ex:tech .
               ex:b3 a ex:Company ; ex:sector ex:retail .
            "#
        ))
        .unwrap();
        s
    }

    fn companies(s: &Store) -> BTreeSet<TermId> {
        s.instances(s.lookup_iri(&format!("{EX}Company")).unwrap())
    }

    #[test]
    fn suggest_detects_problem_kind() {
        let s = store();
        let ext = companies(&s);
        // founder: multi-valued → Count suggested
        assert!(matches!(
            suggest(&s, &ext, &format!("{EX}founder")),
            Some(Transform::Count { .. })
        ));
        // sector: functional → no repair needed
        assert_eq!(suggest(&s, &ext, &format!("{EX}sector")), None);
    }

    #[test]
    fn count_transform_enables_analytics() {
        let s = store();
        let ext = companies(&s);
        let t = apply(&s, &ext, &Transform::Count { property: format!("{EX}founder") });
        assert_eq!(t.added, 3);
        assert_eq!(t.features.len(), 1);
        let feature = &t.features[0];

        // the derived feature is functional — analytics now apply
        let fid = t.store.lookup_iri(feature).unwrap();
        assert!(t.store.is_effectively_functional(fid));

        // "number of companies by founder count"
        let mut a = AnalyticsSession::start(&t.store);
        a.select_class(t.store.lookup_iri(&format!("{EX}Company")).unwrap()).unwrap();
        a.add_grouping(GroupSpec::property(fid));
        a.set_ops(vec![AggOp::Count]);
        let frame = a.run().unwrap();
        assert_eq!(frame.rows.len(), 3); // founder counts 0, 1, 2
    }

    #[test]
    fn degree_transform_over_extension_only() {
        let s = store();
        let two: BTreeSet<TermId> = companies(&s).into_iter().take(2).collect();
        let t = apply(&s, &two, &Transform::Degree);
        assert_eq!(t.added, 2);
    }

    #[test]
    fn path_transforms() {
        let mut s = store();
        s.load_turtle(&format!(
            "@prefix ex: <{EX}> . ex:pA ex:nationality ex:FR . ex:pB ex:nationality ex:FR ."
        ))
        .unwrap();
        let ext = companies(&s);
        let t = apply(
            &s,
            &ext,
            &Transform::PathMaxFreq {
                p1: format!("{EX}founder"),
                p2: format!("{EX}nationality"),
            },
        );
        // only b1 has founders with nationalities
        assert_eq!(t.added, 1);
    }
}
