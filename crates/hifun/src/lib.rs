//! # rdfa-hifun — the HIFUN functional analytics language over RDF
//!
//! HIFUN (§2.5 of the paper) views a dataset as a set of uniquely identified
//! items with *functional attributes*; an analytic query is an ordered triple
//! `(g, m, op)` of a grouping function, a measuring function, and an
//! aggregate operation, each possibly restricted:
//! `q = (gE/rg, mE/rm, opE/ro)`.
//!
//! This crate implements:
//!
//! - the query AST ([`query`]) with the functional algebra the paper uses —
//!   composition (`∘`), pairing (`⊗`), restriction (`/`), and derived
//!   attributes (`month ∘ date`);
//! - the [analysis context](context) and its applicability checks (§4.1.1);
//! - the **translation to SPARQL** ([`translate`]) following Algorithms 1–4
//!   of Chapter 4 verbatim (simple case, compositions, pairings,
//!   pairings-over-compositions, the general case with restriction paths);
//! - a **direct functional evaluator** ([`direct`]) implementing HIFUN's
//!   grouping → measuring → reduction semantics natively; it serves as the
//!   reference for the translation-soundness property (Proposition 2);
//! - the **feature-creation operators** FCO1–FCO9 of Table 4.1 ([`fco`]),
//!   which transform RDF data that violates HIFUN's functionality assumption.
//!
//! ```
//! use rdfa_store::Store;
//! use rdfa_hifun::{AttrPath, HifunQuery, AggOp};
//!
//! let mut store = Store::new();
//! store.load_turtle(r#"
//!   @prefix ex: <http://example.org/> .
//!   ex:i1 ex:takesPlaceAt ex:b1 ; ex:inQuantity 200 .
//!   ex:i2 ex:takesPlaceAt ex:b1 ; ex:inQuantity 100 .
//!   ex:i3 ex:takesPlaceAt ex:b2 ; ex:inQuantity 400 .
//! "#).unwrap();
//!
//! // (takesPlaceAt, inQuantity, SUM)
//! let q = HifunQuery::new(AggOp::Sum)
//!     .group_by(AttrPath::prop("http://example.org/takesPlaceAt"))
//!     .measure(AttrPath::prop("http://example.org/inQuantity"));
//!
//! let sparql = rdfa_hifun::translate::to_sparql(&q);
//! assert!(sparql.contains("GROUP BY"));
//! let answer = rdfa_hifun::direct::evaluate(&store, &q).unwrap();
//! assert_eq!(answer.rows.len(), 2);
//! ```

pub mod context;
pub mod direct;
pub mod fco;
pub mod parse;
pub mod query;
pub mod translate;

pub use context::{AnalysisContext, Applicability, RootSpec};
pub use direct::evaluate;
pub use parse::parse_hifun;
pub use query::{AggOp, AttrPath, CondOp, DerivedFn, HifunQuery, Restriction, Step};
pub use translate::to_sparql;

/// Errors from HIFUN evaluation or translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HifunError {
    pub message: String,
}

impl HifunError {
    pub fn new(message: impl Into<String>) -> Self {
        HifunError { message: message.into() }
    }
}

impl std::fmt::Display for HifunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "hifun error: {}", self.message)
    }
}

impl std::error::Error for HifunError {}
