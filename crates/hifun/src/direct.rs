//! Direct functional evaluation of HIFUN queries — the grouping → measuring
//! → reduction semantics of §2.5, implemented natively over the store.
//!
//! This is the *reference semantics* used to validate the SPARQL translation
//! (Proposition 2): on data satisfying HIFUN's functionality assumption the
//! direct answer and the translated query's answer must coincide. The
//! property test in `tests/translation_soundness.rs` exercises exactly this.
//!
//! It is also the "SPARQL-only vs native" alternative implementation whose
//! relative cost Figure 8.3 discusses (experiment E5).

use crate::query::*;
use crate::HifunError;
use rdfa_model::{Date, DateTime, Term, Value};
use rdfa_sparql::Solutions;
use rdfa_store::{Store, TermId};
use std::collections::BTreeSet;

/// Evaluate a HIFUN query directly, producing a solution table whose columns
/// are the grouping values (`g1…gk`) followed by one aggregate per operation
/// (`agg1…aggn`) — the same shape the translated SPARQL query yields.
pub fn evaluate(store: &Store, q: &HifunQuery) -> Result<Solutions, HifunError> {
    let items = root_items(store, &q.root);

    // per-item bindings: cross product of grouping-value tuples and
    // measure values
    struct GroupAccum {
        key: Vec<Term>,
        measures: Vec<Value>,
        distinct_items: BTreeSet<TermId>,
    }
    let mut groups: Vec<GroupAccum> = Vec::new();
    let mut index: std::collections::HashMap<Vec<Term>, usize> = std::collections::HashMap::new();

    for &item in &items {
        // grouping combinations
        let mut combos: Vec<Vec<Term>> = vec![Vec::new()];
        let mut dead = false;
        for rp in &q.groupings {
            let vals = component_values(store, item, rp);
            if vals.is_empty() {
                dead = true;
                break;
            }
            let mut next = Vec::with_capacity(combos.len() * vals.len());
            for combo in &combos {
                for v in &vals {
                    let mut c = combo.clone();
                    c.push(v.clone());
                    next.push(c);
                }
            }
            combos = next;
        }
        if dead {
            continue;
        }
        // measure values
        let measures: Vec<Value> = match &q.measuring {
            None => vec![Value::from_term(store.term(item))],
            Some(rp) => {
                let vals = component_values(store, item, rp);
                if vals.is_empty() {
                    continue; // inner-join semantics
                }
                vals.iter().map(Value::from_term).collect()
            }
        };
        for combo in combos {
            let gi = match index.get(&combo) {
                Some(&i) => i,
                None => {
                    index.insert(combo.clone(), groups.len());
                    groups.push(GroupAccum {
                        key: combo,
                        measures: Vec::new(),
                        distinct_items: BTreeSet::new(),
                    });
                    groups.len() - 1
                }
            };
            groups[gi].measures.extend(measures.iter().cloned());
            groups[gi].distinct_items.insert(item);
        }
    }

    // an aggregate query without grouping always has exactly one group,
    // even over zero items (COUNT(*) = 0, matching SPARQL)
    if groups.is_empty() && q.groupings.is_empty() {
        groups.push(GroupAccum {
            key: Vec::new(),
            measures: Vec::new(),
            distinct_items: BTreeSet::new(),
        });
    }

    // reduction
    let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
    'group: for g in &groups {
        let mut agg_values: Vec<Option<Value>> = Vec::with_capacity(q.ops.len());
        for &op in &q.ops {
            let v = if q.measuring.is_none() {
                // identity measuring: operate on distinct items
                match op {
                    AggOp::Count => Some(Value::Int(g.distinct_items.len() as i64)),
                    _ => reduce(op, &dedup_values(&g.measures)),
                }
            } else {
                reduce(op, &g.measures)
            };
            agg_values.push(v);
        }
        // result restrictions
        for rr in &q.result_restrictions {
            let Some(actual) = agg_values.get(rr.op_index).and_then(|v| v.clone()) else {
                continue 'group;
            };
            let threshold = Value::from_term(&rr.value);
            match actual.compare(&threshold) {
                Some(ord) if rr.op.test(ord) => {}
                _ => continue 'group,
            }
        }
        let mut row: Vec<Option<Term>> = g.key.iter().map(|t| Some(t.clone())).collect();
        row.extend(agg_values.into_iter().map(|v| v.map(|v| v.to_term())));
        rows.push(row);
    }

    let mut vars: Vec<String> = (1..=q.groupings.len()).map(|i| format!("g{i}")).collect();
    vars.extend((1..=q.ops.len()).map(|i| format!("agg{i}")));
    Ok(Solutions::new(vars, rows))
}

fn dedup_values(vals: &[Value]) -> Vec<Value> {
    let mut seen = BTreeSet::new();
    vals.iter()
        .filter(|v| seen.insert(v.to_term()))
        .cloned()
        .collect()
}

/// The root item set of the analysis context: the conjunction of the class,
/// condition, and explicit-set constraints.
fn root_items(store: &Store, root: &Root) -> BTreeSet<TermId> {
    let mut items: BTreeSet<TermId> = match &root.among {
        Some(terms) => terms.iter().filter_map(|t| store.lookup(t)).collect(),
        None => store.iter_explicit().map(|[s, _, _]| s).collect(),
    };
    if let Some(c) = &root.class {
        let insts = match store.lookup_iri(c) {
            Some(cid) => store.instances(cid),
            None => BTreeSet::new(),
        };
        items = items.intersection(&insts).copied().collect();
    }
    if !root.conditions.is_empty() {
        items.retain(|&item| {
            root.conditions.iter().all(|cond| {
                follow(store, item, &cond.path)
                    .iter()
                    .any(|t| passes(t, cond.op, &cond.value))
            })
        });
    }
    items
}

/// Values of a grouping/measuring component for one item, with its
/// restrictions applied.
fn component_values(store: &Store, item: TermId, rp: &RestrictedPath) -> Vec<Term> {
    let vals = follow(store, item, &rp.path.steps);
    vals.into_iter()
        .filter(|t| {
            rp.restrictions.iter().all(|r| {
                if r.path.is_empty() {
                    passes(t, r.op, &r.value)
                } else {
                    // continuation restriction: some extension must pass
                    match store.lookup(t) {
                        Some(id) => follow(store, id, &r.path)
                            .iter()
                            .any(|u| passes(u, r.op, &r.value)),
                        None => false,
                    }
                }
            })
        })
        .collect()
}

/// Enumerate endpoint values of a composition chain from an item. Each
/// distinct *route* contributes one value (bag semantics, matching SPARQL
/// joins); derived steps transform values in place, dropping those where the
/// function is undefined (SPARQL error semantics).
fn follow(store: &Store, start: TermId, steps: &[Step]) -> Vec<Term> {
    let mut current: Vec<Term> = vec![store.term(start).clone()];
    for step in steps {
        let mut next = Vec::new();
        match step {
            Step::Prop(iri) => {
                let Some(p) = store.lookup_iri(iri) else { return Vec::new() };
                for t in &current {
                    if let Some(id) = store.lookup(t) {
                        for [_, _, o] in store.matching(Some(id), Some(p), None) {
                            next.push(store.term(o).clone());
                        }
                    }
                }
            }
            Step::Derived(f) => {
                for t in &current {
                    if let Some(v) = apply_derived(*f, t) {
                        next.push(v);
                    }
                }
            }
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Apply a derived function to a term, mirroring the SPARQL built-in.
pub fn apply_derived(f: DerivedFn, t: &Term) -> Option<Term> {
    let v = Value::from_term(t);
    let (date, dt): (Option<Date>, Option<DateTime>) = match v {
        Value::Date(d) => (Some(d), None),
        Value::DateTime(d) => (None, Some(d)),
        _ => return None,
    };
    let n = match f {
        DerivedFn::Year => date.map(|d| d.year as i64).or(dt.map(|d| d.date.year as i64)),
        DerivedFn::Month => date.map(|d| d.month as i64).or(dt.map(|d| d.date.month as i64)),
        DerivedFn::Day => date.map(|d| d.day as i64).or(dt.map(|d| d.date.day as i64)),
    }?;
    Some(Term::integer(n))
}

fn passes(t: &Term, op: CondOp, value: &Term) -> bool {
    let a = Value::from_term(t);
    let b = Value::from_term(value);
    match op {
        CondOp::Eq => a.value_eq(&b),
        CondOp::Ne => !a.value_eq(&b),
        _ => match a.compare(&b) {
            Some(ord) => op.test(ord),
            None => false,
        },
    }
}

/// The reduction step: aggregate a bag of values.
pub fn reduce(op: AggOp, values: &[Value]) -> Option<Value> {
    match op {
        AggOp::Count => Some(Value::Int(values.len() as i64)),
        AggOp::Sum => {
            let mut acc = Value::Int(0);
            for v in values {
                acc = acc.add(v)?;
            }
            Some(acc)
        }
        AggOp::Avg => {
            if values.is_empty() {
                return None;
            }
            let mut acc = Value::Int(0);
            for v in values {
                acc = acc.add(v)?;
            }
            acc.div(&Value::Int(values.len() as i64))
        }
        AggOp::Min => values
            .iter()
            .cloned()
            .reduce(|a, b| if b.compare(&a) == Some(std::cmp::Ordering::Less) { b } else { a }),
        AggOp::Max => values
            .iter()
            .cloned()
            .reduce(|a, b| if b.compare(&a) == Some(std::cmp::Ordering::Greater) { b } else { a }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    fn invoices() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
               ex:i1 ex:takesPlaceAt ex:b1 ; ex:inQuantity 200 ; ex:delivers ex:p1 ;
                     ex:hasDate "2021-01-15"^^xsd:date .
               ex:i2 ex:takesPlaceAt ex:b1 ; ex:inQuantity 100 ; ex:delivers ex:p2 ;
                     ex:hasDate "2021-01-20"^^xsd:date .
               ex:i3 ex:takesPlaceAt ex:b2 ; ex:inQuantity 400 ; ex:delivers ex:p1 ;
                     ex:hasDate "2021-02-02"^^xsd:date .
               ex:p1 ex:brand ex:CocaCola .
               ex:p2 ex:brand ex:Pepsi .
            "#
        ))
        .unwrap();
        s
    }

    fn p(local: &str) -> String {
        format!("{EX}{local}")
    }

    fn find_row<'a>(sol: &'a Solutions, key: &str) -> &'a Vec<Option<Term>> {
        sol.rows()
            .iter()
            .find(|r| r[0].as_ref().map(|t| t.display_name()) == Some(key.to_owned()))
            .unwrap_or_else(|| panic!("no row {key} in {sol:?}"))
    }

    /// The paper's own worked example (Fig 2.8): seven invoices, query
    /// `Q = (b, q, sum)`, answer `b1 → 300, b2 → 600, b3 → 600`.
    #[test]
    fn fig_2_8_worked_example() {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:d1 ex:b ex:branch1 ; ex:q 200 .
               ex:d2 ex:b ex:branch1 ; ex:q 100 .
               ex:d3 ex:b ex:branch2 ; ex:q 200 .
               ex:d4 ex:b ex:branch2 ; ex:q 400 .
               ex:d5 ex:b ex:branch3 ; ex:q 100 .
               ex:d6 ex:b ex:branch3 ; ex:q 400 .
               ex:d7 ex:b ex:branch3 ; ex:q 100 .
            "#
        ))
        .unwrap();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("b")))
            .measure(AttrPath::prop(p("q")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(find_row(&sol, "branch1")[1], Some(Term::integer(300)));
        assert_eq!(find_row(&sol, "branch2")[1], Some(Term::integer(600)));
        assert_eq!(find_row(&sol, "branch3")[1], Some(Term::integer(600)));
    }

    #[test]
    fn grouping_measuring_reduction() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(sol.len(), 2);
        assert_eq!(find_row(&sol, "b1")[1], Some(Term::integer(300)));
        assert_eq!(find_row(&sol, "b2")[1], Some(Term::integer(400)));
    }

    #[test]
    fn composition_grouping() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::props(&[&p("delivers"), &p("brand")]))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(find_row(&sol, "CocaCola")[1], Some(Term::integer(600)));
        assert_eq!(find_row(&sol, "Pepsi")[1], Some(Term::integer(100)));
    }

    #[test]
    fn derived_month_grouping() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("hasDate")).derived(DerivedFn::Month))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(find_row(&sol, "1")[1], Some(Term::integer(300)));
        assert_eq!(find_row(&sol, "2")[1], Some(Term::integer(400)));
    }

    #[test]
    fn having_restriction() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")))
            .having(0, CondOp::Gt, Term::integer(300));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.rows()[0][0].as_ref().unwrap().display_name(), "b2");
    }

    #[test]
    fn root_conditions_filter_items() {
        let s = invoices();
        // only January invoices
        let q = HifunQuery::new(AggOp::Sum)
            .with_conditions(vec![Restriction::via(
                vec![Step::Prop(p("hasDate")), Step::Derived(DerivedFn::Month)],
                CondOp::Eq,
                Term::integer(1),
            )])
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(find_row(&sol, "b1")[1], Some(Term::integer(300)));
    }

    #[test]
    fn grouping_restriction_uri() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by_restricted(
                RestrictedPath::new(AttrPath::prop(p("takesPlaceAt")))
                    .restricted(Restriction::eq(Term::iri(p("b1")))),
            )
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(sol.len(), 1);
        assert_eq!(find_row(&sol, "b1")[1], Some(Term::integer(300)));
    }

    #[test]
    fn measure_restriction_literal() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure_restricted(
                RestrictedPath::new(AttrPath::prop(p("inQuantity")))
                    .restricted(Restriction::cmp(CondOp::Ge, Term::integer(150))),
            );
        let sol = evaluate(&s, &q).unwrap();
        // i2 (quantity 100) is dropped; b1 sums to 200 only
        assert_eq!(find_row(&sol, "b1")[1], Some(Term::integer(200)));
    }

    #[test]
    fn identity_count() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Count)
            .group_by(AttrPath::prop(p("takesPlaceAt")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(find_row(&sol, "b1")[1], Some(Term::integer(2)));
        assert_eq!(find_row(&sol, "b2")[1], Some(Term::integer(1)));
    }

    #[test]
    fn multiple_ops() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Min)
            .also(AggOp::Max)
            .also(AggOp::Avg)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        let b1 = find_row(&sol, "b1");
        assert_eq!(b1[1], Some(Term::integer(100)));
        assert_eq!(b1[2], Some(Term::integer(200)));
        assert_eq!(b1[3], Some(Term::decimal(150.0)));
    }

    #[test]
    fn pairing_groups_on_tuples() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .group_by(AttrPath::prop(p("delivers")))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert_eq!(sol.len(), 3); // (b1,p1), (b1,p2), (b2,p1)
    }

    #[test]
    fn empty_class_root_yields_no_rows() {
        let s = invoices();
        let q = HifunQuery::new(AggOp::Sum)
            .over_class(p("Nonexistent"))
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")));
        let sol = evaluate(&s, &q).unwrap();
        assert!(sol.is_empty());
    }
}
