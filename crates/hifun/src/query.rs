//! The HIFUN query AST: attribute paths, the functional algebra, and the
//! general query form `q = (gE/rg, mE/rm, opE/ro)` (§4.2.5).

use rdfa_model::Term;
use std::fmt;

/// Aggregate (reduction) operations on measure values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggOp {
    /// The SPARQL aggregate keyword.
    pub fn sparql(self) -> &'static str {
        match self {
            AggOp::Count => "COUNT",
            AggOp::Sum => "SUM",
            AggOp::Avg => "AVG",
            AggOp::Min => "MIN",
            AggOp::Max => "MAX",
        }
    }

    /// Human label used by the answer frame.
    pub fn label(self) -> &'static str {
        match self {
            AggOp::Count => "count",
            AggOp::Sum => "sum",
            AggOp::Avg => "avg",
            AggOp::Min => "min",
            AggOp::Max => "max",
        }
    }

    /// All supported operations (menu of the ⨊ button, §5.1).
    pub fn all() -> [AggOp; 5] {
        [AggOp::Count, AggOp::Sum, AggOp::Avg, AggOp::Min, AggOp::Max]
    }
}

/// Derived attributes: SPARQL built-ins applicable as unary functions
/// (`month ∘ date`, §4.2.4 "Derived attribute").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DerivedFn {
    Year,
    Month,
    Day,
}

impl DerivedFn {
    /// The SPARQL function name.
    pub fn sparql(self) -> &'static str {
        match self {
            DerivedFn::Year => "YEAR",
            DerivedFn::Month => "MONTH",
            DerivedFn::Day => "DAY",
        }
    }
}

/// One step of a composition chain, applied left-to-right from the root:
/// `brand ∘ delivers` is `[Prop(delivers), Prop(brand)]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Step {
    /// A direct attribute: follow the property from the current node.
    Prop(String),
    /// A derived attribute: apply the function to the current value.
    Derived(DerivedFn),
}

/// A composition chain of steps — the `fk ∘ … ∘ f2 ∘ f1` of Algorithm 2,
/// stored in application order (`f1` first).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AttrPath {
    pub steps: Vec<Step>,
}

impl AttrPath {
    /// A single direct attribute.
    pub fn prop(iri: impl Into<String>) -> Self {
        AttrPath { steps: vec![Step::Prop(iri.into())] }
    }

    /// A multi-step property composition `p1 then p2 then …`
    /// (`pk ∘ … ∘ p1` in HIFUN notation).
    pub fn props(iris: &[&str]) -> Self {
        AttrPath { steps: iris.iter().map(|p| Step::Prop((*p).to_string())).collect() }
    }

    /// Append a property step.
    pub fn then(mut self, iri: impl Into<String>) -> Self {
        self.steps.push(Step::Prop(iri.into()));
        self
    }

    /// Append a derived-attribute step (`month ∘ self`).
    pub fn derived(mut self, f: DerivedFn) -> Self {
        self.steps.push(Step::Derived(f));
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the path has no steps (the identity function).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Short display name: local names of the steps joined by `∘` in HIFUN
    /// (right-to-left) order.
    pub fn display_name(&self) -> String {
        let names: Vec<String> = self
            .steps
            .iter()
            .rev()
            .map(|s| match s {
                Step::Prop(iri) => rdfa_model::term::local_name(iri).to_owned(),
                Step::Derived(d) => d.sparql().to_lowercase(),
            })
            .collect();
        names.join("∘")
    }
}

/// Comparison operators in restrictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CondOp {
    /// The SPARQL operator.
    pub fn sparql(self) -> &'static str {
        match self {
            CondOp::Eq => "=",
            CondOp::Ne => "!=",
            CondOp::Lt => "<",
            CondOp::Le => "<=",
            CondOp::Gt => ">",
            CondOp::Ge => ">=",
        }
    }

    /// Apply the comparison to an `Ordering`.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CondOp::Eq => ord == Equal,
            CondOp::Ne => ord != Equal,
            CondOp::Lt => ord == Less,
            CondOp::Le => ord != Greater,
            CondOp::Gt => ord == Greater,
            CondOp::Ge => ord != Less,
        }
    }
}

/// A restriction `…/r` on a grouping or measuring expression (§4.2.2 and the
/// general case of Algorithm 4): an optional continuation path followed by a
/// condition on its final value. A URI value with `Eq` becomes a triple
/// pattern; a literal becomes a FILTER.
#[derive(Debug, Clone, PartialEq)]
pub struct Restriction {
    /// Extra composition steps beyond the restricted expression's value
    /// (empty for a plain `g/v` restriction).
    pub path: Vec<Step>,
    pub op: CondOp,
    pub value: Term,
}

impl Restriction {
    /// Plain equality restriction to a value.
    pub fn eq(value: Term) -> Self {
        Restriction { path: Vec::new(), op: CondOp::Eq, value }
    }

    /// Comparison restriction on the value itself.
    pub fn cmp(op: CondOp, value: Term) -> Self {
        Restriction { path: Vec::new(), op, value }
    }

    /// Restriction through a continuation path (general case, Algorithm 4).
    pub fn via(path: Vec<Step>, op: CondOp, value: Term) -> Self {
        Restriction { path, op, value }
    }
}

/// A grouping/measuring operand: an attribute path plus optional restrictions.
#[derive(Debug, Clone, PartialEq)]
pub struct RestrictedPath {
    pub path: AttrPath,
    pub restrictions: Vec<Restriction>,
}

impl RestrictedPath {
    /// An unrestricted path.
    pub fn new(path: AttrPath) -> Self {
        RestrictedPath { path, restrictions: Vec::new() }
    }

    /// Attach a restriction.
    pub fn restricted(mut self, r: Restriction) -> Self {
        self.restrictions.push(r);
        self
    }
}

/// Restriction on the query result (`op/ro` → SPARQL `HAVING`, §4.2.3).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRestriction {
    /// Index into [`HifunQuery::ops`] the condition applies to.
    pub op_index: usize,
    pub op: CondOp,
    pub value: Term,
}

/// How the root set of the analysis context is constrained. The parts
/// combine conjunctively; all empty = every item with the queried attributes
/// (implicit join).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Root {
    /// Instances of a class (adds `?x1 rdf:type <C>`).
    pub class: Option<String>,
    /// Path conditions from the root (the faceted-search extension `E`).
    pub conditions: Vec<Restriction>,
    /// An explicit item set (translated to a `VALUES ?x1 { … }` clause) —
    /// how the interaction model pins the current state's extension
    /// (Table 5.1 stores it in a temporary class; a VALUES clause is the
    /// equivalent that needs no store mutation).
    pub among: Option<Vec<Term>>,
}

impl Root {
    /// True when the root is completely unconstrained.
    pub fn is_unconstrained(&self) -> bool {
        self.class.is_none() && self.conditions.is_empty() && self.among.is_none()
    }
}

/// The general HIFUN query `q = (gE/rg, mE/rm, opE/ro)` with optional root
/// constraint. Multiple aggregate operations model the GUI's multi-function
/// ⨊ selection (Fig 6.2: avg, sum and max at once).
#[derive(Debug, Clone, PartialEq)]
pub struct HifunQuery {
    pub root: Root,
    /// Grouping components: empty = no grouping (Example 1, §5.1);
    /// one = plain grouping; several = pairing `g1 ⊗ g2 ⊗ …`.
    pub groupings: Vec<RestrictedPath>,
    /// The measuring expression; `None` measures the items themselves
    /// (identity function `ID`, used by COUNT in Example 2).
    pub measuring: Option<RestrictedPath>,
    /// Aggregate operations applied to the measure (at least one).
    pub ops: Vec<AggOp>,
    /// HAVING-style restrictions on the aggregated results.
    pub result_restrictions: Vec<ResultRestriction>,
}

impl HifunQuery {
    /// A query with a single aggregate operation and nothing else yet.
    pub fn new(op: AggOp) -> Self {
        HifunQuery {
            root: Root::default(),
            groupings: Vec::new(),
            measuring: None,
            ops: vec![op],
            result_restrictions: Vec::new(),
        }
    }

    /// Set the root to a class.
    pub fn over_class(mut self, class_iri: impl Into<String>) -> Self {
        self.root.class = Some(class_iri.into());
        self
    }

    /// Add root conditions (the faceted extension `E`).
    pub fn with_conditions(mut self, conds: Vec<Restriction>) -> Self {
        self.root.conditions = conds;
        self
    }

    /// Pin the root to an explicit item set (the current faceted extension).
    pub fn among(mut self, items: Vec<Term>) -> Self {
        self.root.among = Some(items);
        self
    }

    /// Add a grouping component (pairing when called more than once).
    pub fn group_by(mut self, path: AttrPath) -> Self {
        self.groupings.push(RestrictedPath::new(path));
        self
    }

    /// Add a restricted grouping component.
    pub fn group_by_restricted(mut self, rp: RestrictedPath) -> Self {
        self.groupings.push(rp);
        self
    }

    /// Set the measuring expression.
    pub fn measure(mut self, path: AttrPath) -> Self {
        self.measuring = Some(RestrictedPath::new(path));
        self
    }

    /// Set a restricted measuring expression.
    pub fn measure_restricted(mut self, rp: RestrictedPath) -> Self {
        self.measuring = Some(rp);
        self
    }

    /// Add a further aggregate operation.
    pub fn also(mut self, op: AggOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Add a HAVING restriction on the `idx`-th aggregate.
    pub fn having(mut self, idx: usize, op: CondOp, value: Term) -> Self {
        self.result_restrictions.push(ResultRestriction { op_index: idx, op, value });
        self
    }
}

impl fmt::Display for HifunQuery {
    /// HIFUN notation, e.g. `(takesPlaceAt ⊗ (brand∘delivers), inQuantity, SUM)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = if self.groupings.is_empty() {
            "ε".to_owned()
        } else {
            self.groupings
                .iter()
                .map(|rp| {
                    let mut s = rp.path.display_name();
                    if !rp.restrictions.is_empty() {
                        s.push_str("/E");
                    }
                    s
                })
                .collect::<Vec<_>>()
                .join(" ⊗ ")
        };
        let m = match &self.measuring {
            None => "ID".to_owned(),
            Some(rp) => {
                let mut s = rp.path.display_name();
                if !rp.restrictions.is_empty() {
                    s.push_str("/E");
                }
                s
            }
        };
        let ops = self
            .ops
            .iter()
            .map(|o| o.sparql().to_owned())
            .collect::<Vec<_>>()
            .join(",");
        let suffix = if self.result_restrictions.is_empty() { "" } else { "/F" };
        write!(f, "({g}, {m}, {ops}{suffix})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::props(&["http://e/delivers", "http://e/brand"]))
            .group_by(AttrPath::prop("http://e/takesPlaceAt"))
            .measure(AttrPath::prop("http://e/inQuantity"))
            .also(AggOp::Avg)
            .having(0, CondOp::Gt, Term::integer(1000));
        assert_eq!(q.groupings.len(), 2);
        assert_eq!(q.ops, vec![AggOp::Sum, AggOp::Avg]);
        assert_eq!(q.result_restrictions.len(), 1);
    }

    #[test]
    fn display_uses_hifun_notation() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::props(&["http://e/delivers", "http://e/brand"]))
            .measure(AttrPath::prop("http://e/inQuantity"));
        assert_eq!(q.to_string(), "(brand∘delivers, inQuantity, SUM)");
    }

    #[test]
    fn display_empty_grouping_and_identity() {
        let q = HifunQuery::new(AggOp::Count);
        assert_eq!(q.to_string(), "(ε, ID, COUNT)");
    }

    #[test]
    fn derived_step_in_path() {
        let p = AttrPath::prop("http://e/hasDate").derived(DerivedFn::Month);
        assert_eq!(p.display_name(), "month∘hasDate");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn cond_op_test_matches_semantics() {
        use std::cmp::Ordering::*;
        assert!(CondOp::Ge.test(Equal));
        assert!(CondOp::Ge.test(Greater));
        assert!(!CondOp::Ge.test(Less));
        assert!(CondOp::Ne.test(Less));
        assert!(!CondOp::Eq.test(Greater));
    }
}
