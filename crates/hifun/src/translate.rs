//! Translation of HIFUN queries to SPARQL — Algorithms 1–4 of Chapter 4.
//!
//! The translation follows the paper's scheme exactly:
//!
//! - the grouping expression yields variable(s) in the `GROUP BY` clause and
//!   chained triple patterns in `WHERE` (one per composition step);
//! - the measuring expression yields a variable in `WHERE` whose aggregate
//!   appears in `SELECT`;
//! - URI restrictions become triple patterns, literal restrictions become
//!   `FILTER`s (§4.2.2);
//! - result restrictions become a `HAVING` clause (§4.2.3);
//! - derived attributes (`month ∘ date`) become SPARQL built-in calls in
//!   `SELECT`/`GROUP BY` (§4.2.4);
//! - pairing joins components on the shared root variable `?x1` (§4.2.4);
//! - restriction paths of the general case (Algorithm 4) extend the pattern
//!   chain before constraining its final term.

use crate::query::*;
use rdfa_model::{vocab, Term};

/// Accumulates the strings of the query under construction, mirroring the
/// `triplePatterns`, `retVars`, `op(m)` and `restr(Q_ans)` registers of
/// Algorithm 1.
struct Translator {
    values_clause: Option<String>,
    triple_patterns: Vec<String>,
    filters: Vec<String>,
    select_items: Vec<String>,
    group_by: Vec<String>,
    having: Vec<String>,
    var_counter: usize,
}

impl Translator {
    fn new() -> Self {
        Translator {
            values_clause: None,
            triple_patterns: Vec::new(),
            filters: Vec::new(),
            select_items: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            // ?x1 is the root; fresh variables start at ?x2
            var_counter: 1,
        }
    }

    fn new_var(&mut self) -> String {
        self.var_counter += 1;
        format!("?x{}", self.var_counter)
    }

    /// Emit the triple-pattern chain for a composition (Algorithm 2 /
    /// Algorithm 3 with derived attributes). Returns the *return expression*:
    /// either a plain variable or a built-in call over one.
    fn emit_path(&mut self, start: &str, steps: &[Step]) -> String {
        let mut current = start.to_owned();
        let mut expr = current.clone();
        for step in steps {
            match step {
                Step::Prop(iri) => {
                    let next = self.new_var();
                    self.triple_patterns.push(format!("{current} <{iri}> {next} ."));
                    current = next.clone();
                    expr = next;
                }
                Step::Derived(f) => {
                    // derived attribute: no triple pattern, wrap the return var
                    expr = format!("{}({})", f.sparql(), expr);
                }
            }
        }
        expr
    }

    /// Emit a restriction on a value expression whose underlying variable is
    /// `var` (the `right(g)` of the algorithms). URI + equality restrictions
    /// become triple patterns continuing the chain; literal restrictions
    /// become FILTERs.
    fn emit_restriction(&mut self, var: &str, r: &Restriction) {
        // continuation path first (general case, Algorithm 4)
        let end = if r.path.is_empty() {
            var.to_owned()
        } else {
            self.emit_path(var, &r.path)
        };
        match (&r.value, r.op) {
            (Term::Iri(iri), CondOp::Eq) => {
                // rewrite: replace the chain's last object with the URI —
                // equivalently, assert the final pattern with the URI object
                if let Some(last) = self.triple_patterns.iter().rposition(|tp| {
                    tp.split_whitespace().nth(2) == Some(end.as_str())
                }) {
                    let parts: Vec<&str> = self.triple_patterns[last].split_whitespace().collect();
                    self.triple_patterns
                        .push(format!("{} {} <{}> .", parts[0], parts[1], iri));
                } else {
                    self.filters.push(format!("{end} = <{iri}>"));
                }
            }
            (Term::Iri(iri), op) => {
                self.filters.push(format!("{end} {} <{}>", op.sparql(), iri));
            }
            (value, op) => {
                self.filters
                    .push(format!("{end} {} {}", op.sparql(), render_literal(value)));
            }
        }
    }

    fn render(&self, distinct_count_root: bool) -> String {
        let mut out = String::new();
        out.push_str("SELECT ");
        out.push_str(&self.select_items.join(" "));
        out.push_str("\nWHERE {\n");
        if let Some(v) = &self.values_clause {
            out.push_str("  ");
            out.push_str(v);
            out.push('\n');
        }
        for tp in &self.triple_patterns {
            out.push_str("  ");
            out.push_str(tp);
            out.push('\n');
        }
        if !self.filters.is_empty() {
            out.push_str(&format!("  FILTER({})\n", self.filters.join(" && ")));
        }
        out.push_str("}\n");
        if !self.group_by.is_empty() {
            out.push_str("GROUP BY ");
            out.push_str(&self.group_by.join(" "));
            out.push('\n');
        }
        if !self.having.is_empty() {
            out.push_str(&format!("HAVING ({})\n", self.having.join(" && ")));
        }
        let _ = distinct_count_root;
        out
    }
}

fn render_literal(t: &Term) -> String {
    match t {
        Term::Literal(l) => l.to_string(),
        Term::Iri(iri) => format!("<{iri}>"),
        Term::Blank(b) => format!("_:{b}"),
    }
}

/// Translate a HIFUN query to a SPARQL SELECT query (the full algorithm of
/// §4.2.5).
pub fn to_sparql(q: &HifunQuery) -> String {
    let mut tr = Translator::new();
    let root = "?x1";

    // root constraint
    if let Some(items) = &q.root.among {
        let list = items
            .iter()
            .map(render_literal)
            .collect::<Vec<_>>()
            .join(" ");
        tr.values_clause = Some(format!("VALUES {root} {{ {list} }}"));
    }
    if let Some(c) = &q.root.class {
        tr.triple_patterns
            .push(format!("{root} <{}> <{c}> .", vocab::rdf::TYPE));
    }
    {
        let conds = &q.root.conditions;
        {
            for cond in conds {
                // each condition is a path from the root ending in a value
                if let (Term::Iri(iri), CondOp::Eq, false) = (&cond.value, cond.op, cond.path.is_empty())
                {
                    // emit chain with final object fixed to the URI
                    let (last, prefix) = cond.path.split_last().expect("non-empty path");
                    let mut current = root.to_owned();
                    for step in prefix {
                        if let Step::Prop(p) = step {
                            let next = tr.new_var();
                            tr.triple_patterns.push(format!("{current} <{p}> {next} ."));
                            current = next;
                        }
                    }
                    if let Step::Prop(p) = last {
                        tr.triple_patterns.push(format!("{current} <{p}> <{iri}> ."));
                    }
                } else {
                    let end = tr.emit_path(root, &cond.path);
                    tr.filters.push(format!(
                        "{end} {} {}",
                        cond.op.sparql(),
                        render_literal(&cond.value)
                    ));
                }
            }
        }
    }

    // grouping components (pairing over compositions, Algorithm 2)
    for rp in &q.groupings {
        let expr = tr.emit_path(root, &rp.path.steps);
        // locate the variable underlying the expression for restrictions
        let var = underlying_var(&expr);
        for r in &rp.restrictions {
            tr.emit_restriction(&var, r);
        }
        if expr.starts_with('?') {
            tr.select_items.push(expr.clone());
        } else {
            let alias = format!("?g{}", tr.group_by.len() + 1);
            tr.select_items.push(format!("({expr} AS {alias})"));
        }
        tr.group_by.push(expr);
    }

    // measuring expression
    let measure_expr = match &q.measuring {
        None => root.to_owned(), // identity function: measure the items
        Some(rp) => {
            let expr = tr.emit_path(root, &rp.path.steps);
            let var = underlying_var(&expr);
            for r in &rp.restrictions {
                tr.emit_restriction(&var, r);
            }
            expr
        }
    };

    // if nothing binds ?x1 yet (no root patterns, no groupings, identity
    // measuring), bind it with a wildcard pattern
    if tr.triple_patterns.is_empty() && tr.values_clause.is_none() {
        tr.triple_patterns.push(format!("{root} ?p0 ?o0 ."));
    }

    // aggregate operations (SELECT clause)
    for (i, op) in q.ops.iter().enumerate() {
        let inner = if q.measuring.is_none() {
            // ID measuring: count items, not join duplicates
            format!("DISTINCT {measure_expr}")
        } else {
            measure_expr.clone()
        };
        tr.select_items
            .push(format!("({}({inner}) AS ?agg{})", op.sparql(), i + 1));
    }

    // result restrictions → HAVING
    for rr in &q.result_restrictions {
        let op = q.ops[rr.op_index];
        let inner = if q.measuring.is_none() {
            format!("DISTINCT {measure_expr}")
        } else {
            measure_expr.clone()
        };
        tr.having.push(format!(
            "{}({inner}) {} {}",
            op.sparql(),
            rr.op.sparql(),
            render_literal(&rr.value)
        ));
    }

    tr.render(q.measuring.is_none())
}

/// The variable a return expression is built over (`MONTH(?x2)` → `?x2`).
fn underlying_var(expr: &str) -> String {
    match expr.find('?') {
        Some(i) => {
            let rest = &expr[i..];
            let end = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '?'))
                .map(|(j, _)| j)
                .unwrap_or(rest.len());
            rest[..end].to_owned()
        }
        None => expr.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    fn p(local: &str) -> String {
        format!("{EX}{local}")
    }

    /// §4.2.1: (takesPlaceAt, inQuantity, SUM)
    #[test]
    fn simple_query() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")));
        let s = to_sparql(&q);
        assert!(s.contains("SELECT ?x2 (SUM(?x3) AS ?agg1)"), "{s}");
        assert!(s.contains("?x1 <http://example.org/takesPlaceAt> ?x2 ."), "{s}");
        assert!(s.contains("?x1 <http://example.org/inQuantity> ?x3 ."), "{s}");
        assert!(s.contains("GROUP BY ?x2"), "{s}");
    }

    /// §4.2.2: (takesPlaceAt/E, inQuantity, SUM), E = {i | takesPlaceAt(i) = branch1}
    #[test]
    fn attribute_restricted_uri() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by_restricted(
                RestrictedPath::new(AttrPath::prop(p("takesPlaceAt")))
                    .restricted(Restriction::eq(Term::iri(p("branch1")))),
            )
            .measure(AttrPath::prop(p("inQuantity")));
        let s = to_sparql(&q);
        assert!(
            s.contains("?x1 <http://example.org/takesPlaceAt> <http://example.org/branch1> ."),
            "{s}"
        );
    }

    /// §4.2.2: literal restriction on the measuring function → FILTER
    #[test]
    fn attribute_restricted_literal() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure_restricted(
                RestrictedPath::new(AttrPath::prop(p("inQuantity")))
                    .restricted(Restriction::cmp(CondOp::Ge, Term::integer(1))),
            );
        let s = to_sparql(&q);
        assert!(s.contains("FILTER(?x3 >= \"1\""), "{s}");
    }

    /// §4.2.3: result restriction → HAVING
    #[test]
    fn results_restricted() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .measure(AttrPath::prop(p("inQuantity")))
            .having(0, CondOp::Gt, Term::integer(1000));
        let s = to_sparql(&q);
        assert!(s.contains("HAVING (SUM(?x3) > \"1000\""), "{s}");
    }

    /// §4.2.4 Composition: (brand ∘ delivers, inQuantity, SUM)
    #[test]
    fn composition() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::props(&[&p("delivers"), &p("brand")]))
            .measure(AttrPath::prop(p("inQuantity")));
        let s = to_sparql(&q);
        assert!(s.contains("?x1 <http://example.org/delivers> ?x2 ."), "{s}");
        assert!(s.contains("?x2 <http://example.org/brand> ?x3 ."), "{s}");
        assert!(s.contains("GROUP BY ?x3"), "{s}");
    }

    /// §4.2.4 Derived attribute: (month ∘ date, inQuantity, SUM)
    #[test]
    fn derived_attribute() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("hasDate")).derived(DerivedFn::Month))
            .measure(AttrPath::prop(p("inQuantity")));
        let s = to_sparql(&q);
        assert!(s.contains("(MONTH(?x2) AS ?g1)"), "{s}");
        assert!(s.contains("GROUP BY MONTH(?x2)"), "{s}");
    }

    /// §4.2.4 Pairing: (takesPlaceAt ⊗ delivers, inQuantity, SUM)
    #[test]
    fn pairing() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .group_by(AttrPath::prop(p("delivers")))
            .measure(AttrPath::prop(p("inQuantity")));
        let s = to_sparql(&q);
        assert!(s.contains("SELECT ?x2 ?x3 (SUM(?x4) AS ?agg1)"), "{s}");
        assert!(s.contains("GROUP BY ?x2 ?x3"), "{s}");
    }

    /// §4.2.5 worked example: pairing of compositions with month filter,
    /// measure restriction, and HAVING.
    #[test]
    fn full_example() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .group_by(AttrPath::props(&[&p("delivers"), &p("brand")]))
            .with_conditions(vec![Restriction::via(
                vec![Step::Prop(p("hasDate")), Step::Derived(DerivedFn::Month)],
                CondOp::Eq,
                Term::integer(1),
            )])
            .measure_restricted(
                RestrictedPath::new(AttrPath::prop(p("inQuantity")))
                    .restricted(Restriction::cmp(CondOp::Ge, Term::integer(2))),
            )
            .having(0, CondOp::Gt, Term::integer(1000));
        let s = to_sparql(&q);
        assert!(s.contains("MONTH(?x2) = \"1\""), "{s}");
        assert!(s.contains("GROUP BY ?x3 ?x5"), "{s}");
        assert!(s.contains("HAVING (SUM(?x6) > \"1000\""), "{s}");
        assert!(s.contains(">= \"2\""), "{s}");
    }

    /// §5.1 Example 1: (ε, price/E, AVG) — no grouping at all.
    #[test]
    fn no_grouping_avg() {
        let q = HifunQuery::new(AggOp::Avg)
            .over_class(p("Laptop"))
            .measure(AttrPath::prop(p("price")));
        let s = to_sparql(&q);
        assert!(!s.contains("GROUP BY"), "{s}");
        assert!(s.contains("SELECT (AVG(?x2) AS ?agg1)"), "{s}");
        assert!(s.contains("rdf-syntax-ns#type> <http://example.org/Laptop>"), "{s}");
    }

    /// §5.1 Example 2: (g/E, ID, COUNT) — identity measuring counts items.
    #[test]
    fn identity_count_distinct() {
        let q = HifunQuery::new(AggOp::Count)
            .over_class(p("Laptop"))
            .group_by(AttrPath::props(&[&p("manufacturer"), &p("origin")]));
        let s = to_sparql(&q);
        assert!(s.contains("COUNT(DISTINCT ?x1)"), "{s}");
    }

    /// Fig 6.2: three simultaneous aggregates.
    #[test]
    fn multiple_aggregates() {
        let q = HifunQuery::new(AggOp::Avg)
            .also(AggOp::Sum)
            .also(AggOp::Max)
            .group_by(AttrPath::prop(p("manufacturer")))
            .measure(AttrPath::prop(p("price")));
        let s = to_sparql(&q);
        assert!(s.contains("(AVG(?x3) AS ?agg1)"), "{s}");
        assert!(s.contains("(SUM(?x3) AS ?agg2)"), "{s}");
        assert!(s.contains("(MAX(?x3) AS ?agg3)"), "{s}");
    }

    /// Translation completeness (Proposition 1): every query form renders.
    #[test]
    fn all_forms_render_without_panic() {
        let forms = vec![
            HifunQuery::new(AggOp::Count),
            HifunQuery::new(AggOp::Sum).measure(AttrPath::prop(p("q"))),
            HifunQuery::new(AggOp::Min)
                .group_by(AttrPath::prop(p("a")))
                .group_by(AttrPath::props(&[&p("b"), &p("c"), &p("d")]))
                .measure(AttrPath::prop(p("q")))
                .having(0, CondOp::Le, Term::integer(5)),
        ];
        for q in forms {
            let s = to_sparql(&q);
            assert!(s.starts_with("SELECT"), "{s}");
            assert!(rdfa_sparql::parse_query(&s).is_ok(), "generated SPARQL must parse:\n{s}");
        }
    }

    /// Every generated query must be parseable by our SPARQL engine.
    #[test]
    fn generated_sparql_parses() {
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(p("takesPlaceAt")))
            .group_by(AttrPath::props(&[&p("delivers"), &p("brand")]))
            .measure(AttrPath::prop(p("inQuantity")))
            .having(0, CondOp::Gt, Term::integer(1000));
        let s = to_sparql(&q);
        rdfa_sparql::parse_query(&s).unwrap_or_else(|e| panic!("{e}\n{s}"));
    }
}
