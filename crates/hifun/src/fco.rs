//! Linked-Data-based Feature Creation Operators (FCO1–FCO9, Table 4.1).
//!
//! When RDF data violates HIFUN's functionality assumption — missing values
//! or multi-valued properties (§4.2.6) — these operators derive new
//! *functional* features as fresh triples, which can then be loaded
//! alongside (or instead of) the original data. Derived feature property
//! IRIs are the source property IRI with a suffix (`#p` → `#p_count` etc.).

use rdfa_model::{Graph, Term, Triple};
use rdfa_store::{Store, TermId};
use std::collections::{BTreeMap, BTreeSet};

/// Derived-feature IRI for a property and suffix.
pub fn feature_iri(property: &str, suffix: &str) -> String {
    format!("{property}_{suffix}")
}

fn term(store: &Store, id: TermId) -> Term {
    store.term(id).clone()
}

/// FCO1 — `p.value`: materialize the (first) value of `p` for every subject,
/// substituting `0` where the value is missing among `domain` items
/// (the "confirm functional" repair of §4.2.6).
pub fn fco1_value(store: &Store, property: &str, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let Some(p) = store.lookup_iri(property) else { return g };
    let feature = Term::iri(feature_iri(property, "value"));
    for &s in domain {
        let mut vals = store.matching_explicit(Some(s), Some(p), None);
        match vals.next() {
            Some([_, _, o]) => g.add(term(store, s), feature.clone(), term(store, o)),
            None => g.add(term(store, s), feature.clone(), Term::integer(0)),
        }
    }
    g
}

/// FCO2 — `p.exists`: boolean feature, true iff the item has `p` in either
/// direction.
pub fn fco2_exists(store: &Store, property: &str, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let Some(p) = store.lookup_iri(property) else {
        for &s in domain {
            g.add(term(store, s), Term::iri(feature_iri(property, "exists")), Term::boolean(false));
        }
        return g;
    };
    let feature = Term::iri(feature_iri(property, "exists"));
    for &s in domain {
        let has = store.matching_explicit(Some(s), Some(p), None).next().is_some()
            || store.matching_explicit(None, Some(p), Some(s)).next().is_some();
        g.add(term(store, s), feature.clone(), Term::boolean(has));
    }
    g
}

/// FCO3 — `p.count`: integer feature counting the values of `p`.
pub fn fco3_count(store: &Store, property: &str, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let feature = Term::iri(feature_iri(property, "count"));
    let p = store.lookup_iri(property);
    for &s in domain {
        let n = match p {
            Some(p) => store.matching_explicit(Some(s), Some(p), None).count(),
            None => 0,
        };
        g.add(term(store, s), feature.clone(), Term::integer(n as i64));
    }
    g
}

/// FCO4 — `p.values.AsFeatures`: one boolean feature per distinct value of
/// `p` (`founder_Pierre = true`), turning a multi-valued property into a set
/// of functional ones.
pub fn fco4_values_as_features(store: &Store, property: &str, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let Some(p) = store.lookup_iri(property) else { return g };
    let values: BTreeSet<TermId> = store
        .matching_explicit(None, Some(p), None)
        .map(|[_, _, o]| o)
        .collect();
    for &v in &values {
        let label = store.term(v).display_name();
        let feature = Term::iri(feature_iri(property, &label));
        for &s in domain {
            let has = store.contains([s, p, v]);
            g.add(term(store, s), feature.clone(), Term::boolean(has));
        }
    }
    g
}

/// FCO5 — `degree`: number of triples mentioning the item as subject or
/// object.
pub fn fco5_degree(store: &Store, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let feature = Term::iri("urn:rdfa:feature:degree");
    for &e in domain {
        let n = store.matching_explicit(Some(e), None, None).count()
            + store.matching_explicit(None, None, Some(e)).count();
        g.add(term(store, e), feature.clone(), Term::integer(n as i64));
    }
    g
}

/// FCO6 — `average degree`: mean degree of the item's neighbours.
pub fn fco6_average_degree(store: &Store, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let feature = Term::iri("urn:rdfa:feature:avgDegree");
    for &e in domain {
        let neighbours: BTreeSet<TermId> = store
            .matching_explicit(Some(e), None, None)
            .map(|[_, _, o]| o)
            .collect();
        let avg = if neighbours.is_empty() {
            0.0
        } else {
            let total: usize = neighbours
                .iter()
                .map(|&c| {
                    store.matching_explicit(Some(c), None, None).count()
                        + store.matching_explicit(None, None, Some(c)).count()
                })
                .sum();
            total as f64 / neighbours.len() as f64
        };
        g.add(term(store, e), feature.clone(), Term::decimal(avg));
    }
    g
}

/// FCO7 — `p1.p2.exists`: true iff a two-step path exists from the item.
pub fn fco7_path_exists(
    store: &Store,
    p1: &str,
    p2: &str,
    domain: &BTreeSet<TermId>,
) -> Graph {
    let mut g = Graph::new();
    let feature = Term::iri(format!("{}_{}_exists", p1, rdfa_model::term::local_name(p2)));
    let (i1, i2) = (store.lookup_iri(p1), store.lookup_iri(p2));
    for &s in domain {
        let has = match (i1, i2) {
            (Some(a), Some(b)) => store
                .matching_explicit(Some(s), Some(a), None)
                .any(|[_, _, mid]| store.matching_explicit(Some(mid), Some(b), None).next().is_some()),
            _ => false,
        };
        g.add(term(store, s), feature.clone(), Term::boolean(has));
    }
    g
}

/// FCO8 — `p1.p2.count`: number of two-step path endpoints.
pub fn fco8_path_count(store: &Store, p1: &str, p2: &str, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let feature = Term::iri(format!("{}_{}_count", p1, rdfa_model::term::local_name(p2)));
    let (i1, i2) = (store.lookup_iri(p1), store.lookup_iri(p2));
    for &s in domain {
        let n = match (i1, i2) {
            (Some(a), Some(b)) => store
                .matching_explicit(Some(s), Some(a), None)
                .map(|[_, _, mid]| store.matching_explicit(Some(mid), Some(b), None).count())
                .sum::<usize>(),
            _ => 0,
        };
        g.add(term(store, s), feature.clone(), Term::integer(n as i64));
    }
    g
}

/// FCO9 — `p1.p2.value.maxFreq`: the most frequent two-step path endpoint
/// (ties broken by term order for determinism).
pub fn fco9_path_max_freq(store: &Store, p1: &str, p2: &str, domain: &BTreeSet<TermId>) -> Graph {
    let mut g = Graph::new();
    let feature = Term::iri(format!("{}_{}_maxFreq", p1, rdfa_model::term::local_name(p2)));
    let (Some(a), Some(b)) = (store.lookup_iri(p1), store.lookup_iri(p2)) else { return g };
    for &s in domain {
        let mut freq: BTreeMap<TermId, usize> = BTreeMap::new();
        for [_, _, mid] in store.matching_explicit(Some(s), Some(a), None) {
            for [_, _, o] in store.matching_explicit(Some(mid), Some(b), None) {
                *freq.entry(o).or_insert(0) += 1;
            }
        }
        if let Some((&best, _)) = freq.iter().max_by(|(ta, ca), (tb, cb)| {
            ca.cmp(cb).then_with(|| tb.cmp(ta)) // highest count, then smallest id
        }) {
            g.add(term(store, s), feature.clone(), term(store, best));
        }
    }
    g
}

/// Convenience: apply an FCO graph to a copy of the store, producing a new
/// store with the derived features loaded (the "transform then analyze"
/// workflow of §4.1.2).
pub fn apply(store: &Store, features: Graph) -> Store {
    let mut out = store.clone();
    for t in features.iter() {
        out.insert(&Triple::new(t.subject.clone(), t.predicate.clone(), t.object.clone()));
    }
    out.materialize_inference();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:b1 ex:founder ex:pA , ex:pB .
               ex:b2 ex:founder ex:pC .
               ex:b3 ex:name "three" .
               ex:pA ex:nationality ex:FR .
               ex:pB ex:nationality ex:FR .
               ex:pC ex:nationality ex:US .
            "#
        ))
        .unwrap();
        s
    }

    fn domain(s: &Store) -> BTreeSet<TermId> {
        ["b1", "b2", "b3"]
            .iter()
            .map(|l| s.lookup_iri(&format!("{EX}{l}")).unwrap())
            .collect()
    }

    fn lookup(g: &Graph, subj: &str, pred_contains: &str) -> Vec<Term> {
        g.iter()
            .filter(|t| {
                t.subject == Term::iri(format!("{EX}{subj}"))
                    && t.predicate.as_iri().is_some_and(|p| p.contains(pred_contains))
            })
            .map(|t| t.object.clone())
            .collect()
    }

    #[test]
    fn fco2_exists_flags() {
        let s = store();
        let g = fco2_exists(&s, &format!("{EX}founder"), &domain(&s));
        assert_eq!(lookup(&g, "b1", "exists"), vec![Term::boolean(true)]);
        assert_eq!(lookup(&g, "b3", "exists"), vec![Term::boolean(false)]);
    }

    #[test]
    fn fco3_counts() {
        let s = store();
        let g = fco3_count(&s, &format!("{EX}founder"), &domain(&s));
        assert_eq!(lookup(&g, "b1", "count"), vec![Term::integer(2)]);
        assert_eq!(lookup(&g, "b2", "count"), vec![Term::integer(1)]);
        assert_eq!(lookup(&g, "b3", "count"), vec![Term::integer(0)]);
    }

    #[test]
    fn fco4_boolean_per_value() {
        let s = store();
        let g = fco4_values_as_features(&s, &format!("{EX}founder"), &domain(&s));
        assert_eq!(lookup(&g, "b1", "founder_pA"), vec![Term::boolean(true)]);
        assert_eq!(lookup(&g, "b2", "founder_pA"), vec![Term::boolean(false)]);
        // 3 values × 3 domain items
        assert_eq!(g.len(), 9);
    }

    #[test]
    fn fco5_degree_counts_both_directions() {
        let s = store();
        let g = fco5_degree(&s, &domain(&s));
        assert_eq!(lookup(&g, "b1", "degree"), vec![Term::integer(2)]);
        assert_eq!(lookup(&g, "b3", "degree"), vec![Term::integer(1)]);
    }

    #[test]
    fn fco7_and_fco8_paths() {
        let s = store();
        let f = format!("{EX}founder");
        let n = format!("{EX}nationality");
        let ge = fco7_path_exists(&s, &f, &n, &domain(&s));
        assert_eq!(lookup(&ge, "b1", "exists"), vec![Term::boolean(true)]);
        assert_eq!(lookup(&ge, "b3", "exists"), vec![Term::boolean(false)]);
        let gc = fco8_path_count(&s, &f, &n, &domain(&s));
        assert_eq!(lookup(&gc, "b1", "count"), vec![Term::integer(2)]);
    }

    #[test]
    fn fco9_max_freq() {
        let s = store();
        let g = fco9_path_max_freq(
            &s,
            &format!("{EX}founder"),
            &format!("{EX}nationality"),
            &domain(&s),
        );
        // b1's founders are both French
        assert_eq!(lookup(&g, "b1", "maxFreq"), vec![Term::iri(format!("{EX}FR"))]);
        // b3 has no founders → no feature triple
        assert!(lookup(&g, "b3", "maxFreq").is_empty());
    }

    #[test]
    fn fco1_fills_missing_with_zero() {
        let s = store();
        let g = fco1_value(&s, &format!("{EX}founder"), &domain(&s));
        assert_eq!(lookup(&g, "b3", "value"), vec![Term::integer(0)]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn apply_extends_store() {
        let s = store();
        let g = fco3_count(&s, &format!("{EX}founder"), &domain(&s));
        let s2 = apply(&s, g);
        assert_eq!(s2.len(), s.len() + 3);
    }

    #[test]
    fn fco6_average_degree_of_neighbours() {
        let s = store();
        let g = fco6_average_degree(&s, &domain(&s));
        // b1's neighbours pA, pB each have degree 2 (founder-in + nationality-out)
        assert_eq!(lookup(&g, "b1", "avgDegree"), vec![Term::decimal(2.0)]);
    }
}
