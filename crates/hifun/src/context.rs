//! Analysis contexts and HIFUN applicability over RDF (§4.1).
//!
//! An analysis context is a root set of items plus a set of attributes (each
//! viewed as a function from items to values). HIFUN is applicable when the
//! items are uniquely identified (always true for RDF resources) and the
//! attributes are functional — [`AnalysisContext::check_applicability`]
//! reports, per attribute, whether that holds or a feature-creation operator
//! (Table 4.1) is needed first.

use crate::query::{AttrPath, Step};
use rdfa_store::{Store, TermId};
use std::collections::BTreeSet;

/// How the context's root set is defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RootSpec {
    /// Every subject in the store.
    AllSubjects,
    /// Instances of a class (under RDFS entailment).
    Class(String),
    /// An explicit set of resources (e.g. the current faceted-search
    /// extension, §5.2.2).
    Explicit(BTreeSet<TermId>),
}

/// Applicability verdict for one attribute (§4.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Applicability {
    /// Functional (or effectively functional): HIFUN applies directly.
    Functional,
    /// Some items lack a value: incomplete information (§4.2.6); FCO1/FCO2
    /// can repair.
    MissingValues { items_without_value: usize },
    /// Some items have several values: multi-valued (§4.2.6); FCO3/FCO4 or
    /// an aggregation feature can repair.
    MultiValued { max_values: usize },
}

/// An analysis context `(R, F)`: a root and the attribute paths relevant to
/// the analysis (§2.5.1).
#[derive(Debug, Clone)]
pub struct AnalysisContext {
    pub root: RootSpec,
    pub attributes: Vec<AttrPath>,
}

impl AnalysisContext {
    /// Context over a class with the given attribute paths.
    pub fn over_class(class_iri: impl Into<String>, attributes: Vec<AttrPath>) -> Self {
        AnalysisContext { root: RootSpec::Class(class_iri.into()), attributes }
    }

    /// Context over an explicit resource set.
    pub fn over_set(items: BTreeSet<TermId>, attributes: Vec<AttrPath>) -> Self {
        AnalysisContext { root: RootSpec::Explicit(items), attributes }
    }

    /// Resolve the root set against a store.
    pub fn items(&self, store: &Store) -> BTreeSet<TermId> {
        match &self.root {
            RootSpec::AllSubjects => store.iter_explicit().map(|[s, _, _]| s).collect(),
            RootSpec::Class(c) => store
                .lookup_iri(c)
                .map(|cid| store.instances(cid))
                .unwrap_or_default(),
            RootSpec::Explicit(set) => set.clone(),
        }
    }

    /// Check each attribute's functionality over the context's items
    /// (§4.1.1 prerequisites). Returns one verdict per attribute, in order.
    pub fn check_applicability(&self, store: &Store) -> Vec<(AttrPath, Applicability)> {
        let items = self.items(store);
        self.attributes
            .iter()
            .map(|path| {
                let mut missing = 0usize;
                let mut max_values = 0usize;
                for &item in &items {
                    let n = count_values(store, item, &path.steps);
                    if n == 0 {
                        missing += 1;
                    }
                    max_values = max_values.max(n);
                }
                let verdict = if max_values > 1 {
                    Applicability::MultiValued { max_values }
                } else if missing > 0 {
                    Applicability::MissingValues { items_without_value: missing }
                } else {
                    Applicability::Functional
                };
                (path.clone(), verdict)
            })
            .collect()
    }
}

fn count_values(store: &Store, item: TermId, steps: &[Step]) -> usize {
    let mut frontier = vec![item];
    for step in steps {
        let mut next = Vec::new();
        match step {
            Step::Prop(iri) => {
                let Some(p) = store.lookup_iri(iri) else { return 0 };
                for &node in &frontier {
                    for [_, _, o] in store.matching(Some(node), Some(p), None) {
                        next.push(o);
                    }
                }
            }
            Step::Derived(_) => {
                // derived steps are 1:1 over values
                next = frontier.clone();
            }
        }
        frontier = next;
        if frontier.is_empty() {
            return 0;
        }
    }
    frontier.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://example.org/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
               ex:Laptop rdfs:subClassOf ex:Product .
               ex:l1 a ex:Laptop ; ex:price 900 ; ex:founder ex:a , ex:b .
               ex:l2 a ex:Laptop ; ex:price 1000 .
               ex:l3 a ex:Laptop .
            "#
        ))
        .unwrap();
        s
    }

    #[test]
    fn class_root_resolution() {
        let s = store();
        let ctx = AnalysisContext::over_class(format!("{EX}Product"), vec![]);
        assert_eq!(ctx.items(&s).len(), 3);
    }

    #[test]
    fn applicability_verdicts() {
        let s = store();
        let ctx = AnalysisContext::over_class(
            format!("{EX}Laptop"),
            vec![AttrPath::prop(format!("{EX}price")), AttrPath::prop(format!("{EX}founder"))],
        );
        let verdicts = ctx.check_applicability(&s);
        // price: l3 has none → MissingValues
        assert_eq!(
            verdicts[0].1,
            Applicability::MissingValues { items_without_value: 1 }
        );
        // founder: l1 has two → MultiValued
        assert_eq!(verdicts[1].1, Applicability::MultiValued { max_values: 2 });
    }

    #[test]
    fn functional_attribute_passes() {
        let s = store();
        let two: BTreeSet<TermId> = [
            s.lookup_iri(&format!("{EX}l1")).unwrap(),
            s.lookup_iri(&format!("{EX}l2")).unwrap(),
        ]
        .into_iter()
        .collect();
        let ctx = AnalysisContext::over_set(two, vec![AttrPath::prop(format!("{EX}price"))]);
        assert_eq!(ctx.check_applicability(&s)[0].1, Applicability::Functional);
    }
}
