//! Parser for HIFUN's textual notation — the form the paper writes queries
//! in: `(g, m, op)` triples with composition (`∘`), pairing (`⊗`),
//! restrictions (`attr>=v`), derived attributes (`month∘date`), the identity
//! measuring function `ID`, the empty grouping `ε`, and result restrictions
//! (`SUM/>1000`).
//!
//! Attribute names are resolved against a namespace; derived-function names
//! (`year`, `month`, `day`) are recognized positionally (they may only head
//! a composition, matching the expressibility rule of Chapter 7).
//!
//! ```
//! use rdfa_hifun::parse::parse_hifun;
//! let q = parse_hifun("(takesPlaceAt, inQuantity, SUM)", "http://e/").unwrap();
//! assert_eq!(q.to_string(), "(takesPlaceAt, inQuantity, SUM)");
//! ```

use crate::query::*;
use crate::HifunError;
use rdfa_model::Term;

/// Parse a HIFUN query written in the paper's notation. `ns` is prepended to
/// every bare attribute or value name.
pub fn parse_hifun(text: &str, ns: &str) -> Result<HifunQuery, HifunError> {
    let inner = text
        .trim()
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| HifunError::new("a HIFUN query is parenthesized: (g, m, op)"))?;
    let parts = split_top(inner, ',');
    if parts.len() < 3 {
        return Err(HifunError::new("expected three components: (g, m, op)"));
    }
    let g_text = parts[0].trim();
    let m_text = parts[1].trim();
    let ops_text: Vec<&str> = parts[2..].iter().map(|s| s.trim()).collect();

    // operations (plus optional result restriction per op: SUM/>1000)
    let mut ops = Vec::new();
    let mut result_restrictions = Vec::new();
    for (i, op_text) in ops_text.iter().enumerate() {
        let (op_name, restr) = match op_text.split_once('/') {
            Some((o, r)) => (o.trim(), Some(r.trim())),
            None => (*op_text, None),
        };
        let op = match op_name.to_ascii_uppercase().as_str() {
            "COUNT" => AggOp::Count,
            "SUM" => AggOp::Sum,
            "AVG" => AggOp::Avg,
            "MIN" => AggOp::Min,
            "MAX" => AggOp::Max,
            other => return Err(HifunError::new(format!("unknown operation '{other}'"))),
        };
        ops.push(op);
        if let Some(r) = restr {
            let (cond, value) = parse_condition(r, ns)?;
            result_restrictions.push(ResultRestriction { op_index: i, op: cond, value });
        }
    }

    // grouping: ε | component (⊗ component)*
    let mut groupings = Vec::new();
    if !(g_text.is_empty() || g_text == "ε" || g_text.eq_ignore_ascii_case("eps")) {
        for comp in split_top(g_text, '⊗') {
            groupings.push(parse_component(comp.trim(), ns)?);
        }
    }

    // measuring: ID | component
    let measuring = if m_text.eq_ignore_ascii_case("ID") {
        None
    } else {
        Some(parse_component(m_text, ns)?)
    };

    let mut q = HifunQuery::new(ops[0]);
    q.ops = ops;
    q.groupings = groupings;
    q.measuring = measuring;
    q.result_restrictions = result_restrictions;
    Ok(q)
}

/// Split at a separator, respecting parenthesis nesting.
fn split_top(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// One grouping/measuring component: a composition chain with an optional
/// trailing condition (`origin∘manufacturer=USA`, `inQuantity>=2`).
fn parse_component(text: &str, ns: &str) -> Result<RestrictedPath, HifunError> {
    // find a top-level comparator
    let (path_text, cond) = split_condition(text);
    let path = parse_path(path_text.trim(), ns)?;
    let mut rp = RestrictedPath::new(path);
    if let Some((op_text, value_text)) = cond {
        let op = cond_op(op_text)?;
        let value = parse_value(value_text.trim(), ns);
        rp = rp.restricted(Restriction::cmp(op, value));
    }
    Ok(rp)
}

fn split_condition(text: &str) -> (&str, Option<(&str, &str)>) {
    // scan outside <…> IRI brackets for the first comparator
    let bytes = text.as_bytes();
    let mut in_iri = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'<' if !in_iri => {
                // '<' opens an IRI when followed by a scheme-ish char,
                // otherwise it is the comparator
                let next = bytes.get(i + 1).copied();
                if matches!(next, Some(c) if c.is_ascii_alphabetic()) {
                    in_iri = true;
                } else if next == Some(b'=') {
                    return (&text[..i], Some(("<=", &text[i + 2..])));
                } else {
                    return (&text[..i], Some(("<", &text[i + 1..])));
                }
            }
            b'>' if in_iri => in_iri = false,
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    return (&text[..i], Some((">=", &text[i + 2..])));
                }
                return (&text[..i], Some((">", &text[i + 1..])));
            }
            b'=' if !in_iri => return (&text[..i], Some(("=", &text[i + 1..]))),
            b'!' if !in_iri && bytes.get(i + 1) == Some(&b'=') => {
                return (&text[..i], Some(("!=", &text[i + 2..])));
            }
            _ => {}
        }
        i += 1;
    }
    (text, None)
}

fn cond_op(op: &str) -> Result<CondOp, HifunError> {
    Ok(match op {
        "=" => CondOp::Eq,
        "!=" => CondOp::Ne,
        "<" => CondOp::Lt,
        "<=" => CondOp::Le,
        ">" => CondOp::Gt,
        ">=" => CondOp::Ge,
        other => return Err(HifunError::new(format!("unknown comparator '{other}'"))),
    })
}

fn parse_condition(text: &str, ns: &str) -> Result<(CondOp, Term), HifunError> {
    let (lhs, cond) = split_condition(text);
    if !lhs.trim().is_empty() {
        return Err(HifunError::new(format!("unexpected '{lhs}' before comparator")));
    }
    let (op_text, value_text) =
        cond.ok_or_else(|| HifunError::new(format!("expected comparator in '{text}'")))?;
    Ok((cond_op(op_text)?, parse_value(value_text.trim(), ns)))
}

fn parse_value(text: &str, ns: &str) -> Term {
    if let Ok(v) = text.parse::<i64>() {
        return Term::integer(v);
    }
    if let Ok(v) = text.parse::<f64>() {
        return Term::decimal(v);
    }
    if text == "true" || text == "false" {
        return Term::boolean(text == "true");
    }
    if let Some(iri) = text.strip_prefix('<').and_then(|t| t.strip_suffix('>')) {
        return Term::iri(iri);
    }
    Term::iri(format!("{ns}{text}"))
}

/// Parse `f_k∘…∘f_1` — HIFUN composition is right-to-left, so the chain is
/// reversed into application order. `year|month|day` at the head become
/// derived steps.
fn parse_path(text: &str, ns: &str) -> Result<AttrPath, HifunError> {
    let names: Vec<&str> = text.split('∘').map(str::trim).collect();
    if names.iter().any(|n| n.is_empty()) {
        return Err(HifunError::new(format!("malformed composition '{text}'")));
    }
    let mut steps = Vec::with_capacity(names.len());
    for (i, name) in names.iter().rev().enumerate() {
        let derived = match name.to_ascii_lowercase().as_str() {
            "year" => Some(DerivedFn::Year),
            "month" => Some(DerivedFn::Month),
            "day" => Some(DerivedFn::Day),
            _ => None,
        };
        match derived {
            Some(f) => {
                if i + 1 != names.len() {
                    return Err(HifunError::new(format!(
                        "derived function '{name}' must head the composition"
                    )));
                }
                steps.push(Step::Derived(f));
            }
            None => {
                let iri = if let Some(full) = name.strip_prefix('<').and_then(|t| t.strip_suffix('>'))
                {
                    full.to_owned()
                } else {
                    format!("{ns}{name}")
                };
                steps.push(Step::Prop(iri));
            }
        }
    }
    Ok(AttrPath { steps })
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: &str = "http://e/";

    #[test]
    fn simple_triple() {
        let q = parse_hifun("(takesPlaceAt, inQuantity, SUM)", NS).unwrap();
        assert_eq!(q.groupings.len(), 1);
        assert_eq!(q.groupings[0].path, AttrPath::prop(format!("{NS}takesPlaceAt")));
        assert_eq!(q.ops, vec![AggOp::Sum]);
    }

    #[test]
    fn composition_is_right_to_left() {
        let q = parse_hifun("(brand∘delivers, inQuantity, SUM)", NS).unwrap();
        assert_eq!(
            q.groupings[0].path,
            AttrPath::props(&[&format!("{NS}delivers"), &format!("{NS}brand")])
        );
    }

    #[test]
    fn derived_head() {
        let q = parse_hifun("(month∘hasDate, inQuantity, SUM)", NS).unwrap();
        assert_eq!(
            q.groupings[0].path,
            AttrPath::prop(format!("{NS}hasDate")).derived(DerivedFn::Month)
        );
        // derived not at the head is rejected
        assert!(parse_hifun("(hasDate∘month, inQuantity, SUM)", NS).is_err());
    }

    #[test]
    fn pairing_and_multiple_ops() {
        let q = parse_hifun("(takesPlaceAt ⊗ delivers, inQuantity, SUM, AVG)", NS).unwrap();
        assert_eq!(q.groupings.len(), 2);
        assert_eq!(q.ops, vec![AggOp::Sum, AggOp::Avg]);
    }

    #[test]
    fn restrictions_and_having() {
        let q = parse_hifun("(takesPlaceAt=branch1, inQuantity>=2, SUM/>1000)", NS).unwrap();
        assert_eq!(q.groupings[0].restrictions.len(), 1);
        assert_eq!(q.groupings[0].restrictions[0].value, Term::iri(format!("{NS}branch1")));
        let m = q.measuring.as_ref().unwrap();
        assert_eq!(m.restrictions[0].op, CondOp::Ge);
        assert_eq!(q.result_restrictions.len(), 1);
        assert_eq!(q.result_restrictions[0].value, Term::integer(1000));
    }

    #[test]
    fn identity_and_empty_grouping() {
        let q = parse_hifun("(ε, ID, COUNT)", NS).unwrap();
        assert!(q.groupings.is_empty());
        assert!(q.measuring.is_none());
    }

    #[test]
    fn display_parse_roundtrip() {
        for text in [
            "(takesPlaceAt, inQuantity, SUM)",
            "(brand∘delivers, inQuantity, SUM)",
            "(ε, ID, COUNT)",
            "(takesPlaceAt ⊗ delivers, inQuantity, MIN)",
        ] {
            let q = parse_hifun(text, NS).unwrap();
            assert_eq!(q.to_string(), text, "roundtrip of {text}");
        }
    }

    #[test]
    fn parsed_query_evaluates() {
        let mut store = rdfa_store::Store::new();
        store
            .load_turtle(&format!(
                r#"@prefix ex: <{NS}> .
                   ex:i1 ex:takesPlaceAt ex:b1 ; ex:inQuantity 200 .
                   ex:i2 ex:takesPlaceAt ex:b2 ; ex:inQuantity 400 .
                "#
            ))
            .unwrap();
        let q = parse_hifun("(takesPlaceAt, inQuantity, SUM)", NS).unwrap();
        let answer = crate::direct::evaluate(&store, &q).unwrap();
        assert_eq!(answer.len(), 2);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_hifun("no parens", NS).is_err());
        assert!(parse_hifun("(a, b)", NS).is_err());
        assert!(parse_hifun("(a, b, MEDIAN)", NS).is_err());
    }

    #[test]
    fn full_iri_names() {
        let q = parse_hifun("(<http://x/p>, <http://x/q>, AVG)", NS).unwrap();
        assert_eq!(q.groupings[0].path, AttrPath::prop("http://x/p"));
    }
}
