//! # rdfa-sparql — a SPARQL 1.1 subset engine
//!
//! Parser, algebra, and evaluator for the SPARQL fragment the RDF-Analytics
//! system needs (§2.4 and Chapter 4 of the paper): `SELECT` (with `DISTINCT`,
//! expression projections, and sub-selects), basic graph patterns, `FILTER`
//! with the full comparison/arithmetic/boolean operator set and the built-ins
//! used by derived attributes (`YEAR`, `MONTH`, `DAY`, …), `OPTIONAL`,
//! `UNION`, `VALUES`, `BIND`, property paths (`/`, `^`, `|`, `+`, `*`, `?`),
//! `GROUP BY` (variables and expressions), all standard aggregates, `HAVING`,
//! `ORDER BY`, `LIMIT`/`OFFSET`, and `CONSTRUCT`.
//!
//! ```
//! use rdfa_store::Store;
//! use rdfa_sparql::Engine;
//!
//! let mut store = Store::new();
//! store.load_turtle(r#"
//!   @prefix ex: <http://example.org/> .
//!   ex:l1 ex:price 900 ; ex:manufacturer ex:DELL .
//!   ex:l2 ex:price 1000 ; ex:manufacturer ex:DELL .
//! "#).unwrap();
//! let engine = Engine::builder(&store).build();
//! let prepared = engine.prepare(r#"
//!   PREFIX ex: <http://example.org/>
//!   SELECT ?m (AVG(?p) AS ?avg) WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . }
//!   GROUP BY ?m
//! "#).unwrap();
//! let results = prepared.execute().unwrap();
//! assert_eq!(results.solutions().unwrap().len(), 1);
//! // the compiled plan is reusable and explainable
//! assert!(prepared.explain().contains("physical plan:"));
//! ```

pub mod ast;
pub mod batch;
pub mod engine;
pub mod eval;
pub mod explain;
pub mod expr;
pub mod limits;
pub mod parser;
pub mod path;
pub mod plan;
pub mod results;
pub mod token;
pub mod update;

pub use ast::{Query, QueryForm, SelectQuery};
pub use engine::{Engine, EngineBuilder, PreparedQuery};
pub use eval::{EvalOptions, ExecMode};
pub use explain::{explain, Plan};
pub use limits::{CancelFlag, EvalLimits, LimitKind};
pub use parser::parse_query;
pub use plan::{ExecStats, OpStats};
pub use results::{QueryResults, Solutions};
pub use update::{execute_update, execute_update_recording, UpdateOp, UpdateStats};

/// Errors from parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// A parse or evaluation error, with a human-readable message.
    Query(String),
    /// Evaluation exceeded a configured resource budget (see [`EvalLimits`]).
    /// `limit` is the configured ceiling: milliseconds for
    /// [`LimitKind::Deadline`], a count otherwise.
    ResourceLimit { kind: LimitKind, limit: u64 },
}

impl SparqlError {
    /// A plain query error (the common case throughout the parser).
    pub fn new(message: impl Into<String>) -> Self {
        SparqlError::Query(message.into())
    }

    /// The human-readable message, whatever the variant.
    pub fn message(&self) -> String {
        match self {
            SparqlError::Query(m) => m.clone(),
            SparqlError::ResourceLimit { kind: LimitKind::Cancelled, .. } => {
                "query cancelled: client disconnected or server draining".to_owned()
            }
            SparqlError::ResourceLimit { kind, limit } => {
                format!("resource limit exceeded: {kind} (limit {limit})")
            }
        }
    }

    /// True when evaluation stopped because its [`CancelFlag`] was set
    /// (client gone or server draining) rather than a budget being exceeded.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SparqlError::ResourceLimit { kind: LimitKind::Cancelled, .. })
    }

    /// True for the structured resource-limit variant. Callers use this to
    /// choose between failing and degrading gracefully (e.g. the analytics
    /// session falls back to direct functional evaluation).
    pub fn is_resource_limit(&self) -> bool {
        matches!(self, SparqlError::ResourceLimit { .. })
    }
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sparql error: {}", self.message())
    }
}

impl std::error::Error for SparqlError {}
