//! Abstract syntax of the supported SPARQL fragment.

use rdfa_model::Term;

/// A complete query: prologue prefixes plus the query form.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub form: QueryForm,
}

/// The query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    Select(SelectQuery),
    /// `CONSTRUCT { template } WHERE { pattern }` — used by feature-creation
    /// operators (§4.1.2) to derive new datasets.
    Construct {
        template: Vec<TriplePattern>,
        where_: GroupPattern,
    },
    /// `ASK WHERE { pattern }`
    Ask(GroupPattern),
    /// `DESCRIBE <iri>…` — returns the concise bounded description of the
    /// named resources (all triples with the resource as subject, expanding
    /// through blank-node objects).
    Describe(Vec<Term>),
}

/// A `SELECT` query (possibly nested as a sub-select).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub distinct: bool,
    pub projection: Projection,
    pub where_: GroupPattern,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderSpec>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

/// The projection clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// Explicit items.
    Items(Vec<SelectItem>),
}

/// One projected column.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    /// Output name: the variable name, the `AS` alias, or a synthesized name
    /// for bare expressions.
    pub alias: String,
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub expr: Expr,
    pub descending: bool,
}

/// A group graph pattern: a sequence of elements combined by join.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupPattern {
    pub elements: Vec<PatternElement>,
}

/// One element of a group pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternElement {
    Triple(TriplePattern),
    Filter(Expr),
    Optional(GroupPattern),
    Union(Vec<GroupPattern>),
    /// `BIND(expr AS ?v)`
    Bind(Expr, String),
    /// Inline data: `VALUES (?a ?b) { (..) (..) }`; `None` = UNDEF.
    Values(Vec<String>, Vec<Vec<Option<Term>>>),
    SubSelect(Box<SelectQuery>),
    /// `MINUS { ... }`: remove rows compatible with a solution of the inner
    /// pattern (on shared variables).
    Minus(GroupPattern),
    /// A nested group `{ ... }` evaluated as a unit (scope barrier ignored:
    /// our fragment does not rely on bottom-up scoping subtleties).
    Group(GroupPattern),
}

/// A triple pattern whose predicate may be a property path.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub predicate: PathOrVar,
    pub object: TermPattern,
}

/// Subject/object position: variable or concrete term.
#[derive(Debug, Clone, PartialEq)]
pub enum TermPattern {
    Var(String),
    Term(Term),
}

impl TermPattern {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }
}

/// Predicate position: a variable, or a property path (a single IRI is the
/// trivial path).
#[derive(Debug, Clone, PartialEq)]
pub enum PathOrVar {
    Var(String),
    Path(PropertyPath),
}

/// SPARQL 1.1 property paths (§4.2's arbitrarily long paths; Fig 5.5's
/// path expansion relies on sequences).
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyPath {
    Iri(String),
    Inverse(Box<PropertyPath>),
    Sequence(Box<PropertyPath>, Box<PropertyPath>),
    Alternative(Box<PropertyPath>, Box<PropertyPath>),
    ZeroOrMore(Box<PropertyPath>),
    OneOrMore(Box<PropertyPath>),
    ZeroOrOne(Box<PropertyPath>),
}

impl PropertyPath {
    /// Build a sequence path from IRIs: `p1/p2/.../pk`.
    pub fn sequence_of(iris: &[&str]) -> PropertyPath {
        let mut it = iris.iter();
        let first = PropertyPath::Iri((*it.next().expect("non-empty path")).to_owned());
        it.fold(first, |acc, p| {
            PropertyPath::Sequence(Box::new(acc), Box::new(PropertyPath::Iri((*p).to_owned())))
        })
    }
}

/// Expressions: used in FILTER, BIND, HAVING, SELECT, GROUP BY, ORDER BY.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(String),
    Const(Term),
    Or(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Compare(Box<Expr>, CompareOp, Box<Expr>),
    Arith(Box<Expr>, ArithOp, Box<Expr>),
    Neg(Box<Expr>),
    /// `expr IN (e1, …)` / `NOT IN`
    In(Box<Expr>, Vec<Expr>, bool),
    /// Built-in call by (upper-cased) name.
    Call(String, Vec<Expr>),
    /// Aggregate call; only valid where aggregation is in scope.
    Aggregate(AggregateOp, bool, Option<Box<Expr>>),
    /// `EXISTS { ... }` / `NOT EXISTS { ... }` (bool = negated).
    Exists(GroupPattern, bool),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Aggregate operations (§2.4: COUNT, SUM, AVG, MIN, MAX, GROUP_CONCAT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Sample,
    GroupConcat,
}

impl AggregateOp {
    /// The SPARQL keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            AggregateOp::Count => "COUNT",
            AggregateOp::Sum => "SUM",
            AggregateOp::Avg => "AVG",
            AggregateOp::Min => "MIN",
            AggregateOp::Max => "MAX",
            AggregateOp::Sample => "SAMPLE",
            AggregateOp::GroupConcat => "GROUP_CONCAT",
        }
    }

    /// Parse from a (case-insensitive) keyword.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        match kw.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggregateOp::Count),
            "SUM" => Some(AggregateOp::Sum),
            "AVG" => Some(AggregateOp::Avg),
            "MIN" => Some(AggregateOp::Min),
            "MAX" => Some(AggregateOp::Max),
            "SAMPLE" => Some(AggregateOp::Sample),
            "GROUP_CONCAT" => Some(AggregateOp::GroupConcat),
            _ => None,
        }
    }
}

impl Expr {
    /// True if the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate(..) => true,
            Expr::Var(_) | Expr::Const(_) | Expr::Exists(..) => false,
            Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(a, _, b) | Expr::Arith(a, _, b) => {
                a.has_aggregate() || b.has_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) => e.has_aggregate(),
            Expr::In(e, list, _) => e.has_aggregate() || list.iter().any(Expr::has_aggregate),
            Expr::Call(_, args) => args.iter().any(Expr::has_aggregate),
        }
    }

    /// Collect variable names referenced by the expression.
    pub fn variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(a, _, b) | Expr::Arith(a, _, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Not(e) | Expr::Neg(e) => e.variables(out),
            Expr::In(e, list, _) => {
                e.variables(out);
                for x in list {
                    x.variables(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
            Expr::Aggregate(_, _, Some(e)) => e.variables(out),
            Expr::Aggregate(_, _, None) => {}
            // EXISTS vars are scoped to the inner pattern
            Expr::Exists(..) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let e = Expr::Arith(
            Box::new(Expr::Aggregate(AggregateOp::Sum, false, Some(Box::new(Expr::Var("x".into()))))),
            ArithOp::Div,
            Box::new(Expr::Const(Term::integer(2))),
        );
        assert!(e.has_aggregate());
        assert!(!Expr::Var("x".into()).has_aggregate());
    }

    #[test]
    fn sequence_path_builder() {
        let p = PropertyPath::sequence_of(&["a", "b", "c"]);
        match p {
            PropertyPath::Sequence(ab, c) => {
                assert_eq!(*c, PropertyPath::Iri("c".into()));
                match *ab {
                    PropertyPath::Sequence(a, b) => {
                        assert_eq!(*a, PropertyPath::Iri("a".into()));
                        assert_eq!(*b, PropertyPath::Iri("b".into()));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_collection_dedups() {
        let e = Expr::And(
            Box::new(Expr::Var("x".into())),
            Box::new(Expr::Compare(
                Box::new(Expr::Var("x".into())),
                CompareOp::Lt,
                Box::new(Expr::Var("y".into())),
            )),
        );
        let mut vars = Vec::new();
        e.variables(&mut vars);
        assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn aggregate_keyword_roundtrip() {
        for op in [
            AggregateOp::Count,
            AggregateOp::Sum,
            AggregateOp::Avg,
            AggregateOp::Min,
            AggregateOp::Max,
            AggregateOp::Sample,
            AggregateOp::GroupConcat,
        ] {
            assert_eq!(AggregateOp::from_keyword(op.keyword()), Some(op));
        }
        assert_eq!(AggregateOp::from_keyword("MEDIAN"), None);
    }
}
