//! Physical query plans over the interned ID space.
//!
//! [`compile_select`] lowers a parsed `SELECT` into a small operator tree
//! (scan/join → filter → bind/values → optional/union → project/aggregate)
//! once, ahead of execution. The executor evaluates the tree over columnar
//! [`Batch`]es of packed execution ids ([`crate::batch`]): joins compare
//! `u32`s against the store's triple indexes, hash `GROUP BY` keys are
//! `Vec<u32>`, and terms are materialized only at the [`Solutions`]
//! boundary. Hash aggregation runs on a scoped thread pool when the input
//! is large enough: contiguous row chunks build per-worker partial group
//! maps that are merged in chunk order, which preserves the first-seen
//! group order of the sequential path exactly.
//!
//! Queries using constructs outside this fragment (sub-selects, `MINUS`,
//! non-IRI property paths) return `None` from [`compile_select`] and fall
//! back to the term-space [`crate::eval::Evaluator`].

use crate::ast::*;
use crate::batch::{as_store, pack_store, Batch, EId, TermArena, UNBOUND};
use crate::eval::{finalize_rows, Bound, EvalOptions, Evaluator, Frame, Row};
use crate::expr::eval_expr_limited;
use crate::limits::{LimitGuard, LimitKind, ProbeInfo};
use crate::results::Solutions;
use crate::SparqlError;
use rdfa_model::{Term, Value};
use rdfa_store::{Store, TermId};
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};

/// Estimated materialization cost of one batch row (one `EId` per column),
/// charged against [`crate::EvalLimits::max_memory_bytes`].
fn batch_row_cost(width: usize) -> u64 {
    (width * std::mem::size_of::<EId>() + std::mem::size_of::<u32>()) as u64
}

/// Minimum input rows before hash aggregation fans out to worker threads.
const PARALLEL_MIN_ROWS: usize = 4096;
/// Rows between cooperative deadline probes inside a worker.
const WORKER_PROBE_INTERVAL: usize = 512;

// ---- plan structure --------------------------------------------------------

/// A compiled subject/object position.
#[derive(Debug, Clone)]
pub(crate) enum CSlot {
    /// Constant present in the store.
    Const(TermId),
    /// Variable at this frame slot.
    Var(usize),
    /// Constant absent from the store: the pattern can never match.
    Missing,
}

/// A compiled predicate position.
#[derive(Debug, Clone)]
pub(crate) enum CPred {
    Const(TermId),
    Var(usize),
    Missing,
}

/// One operator of the physical plan. `Input` is the leaf that consumes
/// whatever batch the parent feeds in (the seed row at the root, the outer
/// batch inside `OPTIONAL`/`UNION` subtrees).
#[derive(Debug)]
pub(crate) enum Node {
    Input,
    Join { input: Box<Node>, s: CSlot, p: CPred, o: CSlot, op: usize },
    Filter { input: Box<Node>, exprs: Vec<Expr>, op: usize },
    Bind { input: Box<Node>, expr: Expr, slot: usize, op: usize },
    Values { input: Box<Node>, slots: Vec<usize>, data: Vec<Vec<Option<Term>>>, op: usize },
    Optional { input: Box<Node>, inner: Box<Node>, op: usize },
    Union { input: Box<Node>, arms: Vec<Node>, op: usize },
}

/// Static description of one operator (label + compile-time estimate).
#[derive(Debug, Clone)]
pub struct OpMeta {
    /// Human-readable operator label, e.g. `IndexJoin ?x <p> ?o`.
    pub label: String,
    /// Operator kind: `join`, `filter`, `bind`, `values`, `optional`,
    /// `union`, `select`.
    pub kind: &'static str,
    /// Compile-time cardinality estimate, where one exists (joins).
    pub estimate: Option<f64>,
}

/// A compiled physical plan for one `SELECT` query.
#[derive(Debug)]
pub struct PhysicalPlan {
    pub(crate) root: Node,
    pub(crate) frame: Frame,
    /// Operator metadata indexed by operator id.
    pub(crate) ops: Vec<OpMeta>,
    /// Static nesting depth of the WHERE clause (for the recursion budget).
    pub(crate) depth: u32,
    /// Operator id of the final projection/aggregation stage.
    pub(crate) select_op: usize,
    /// Whether the final stage groups and aggregates.
    pub(crate) grouped: bool,
}

impl PhysicalPlan {
    /// Number of operators in the plan.
    pub fn operator_count(&self) -> usize {
        self.ops.len()
    }
}

// ---- execution statistics --------------------------------------------------

/// Observed cardinality of one operator after execution.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Operator label (copied from the plan).
    pub label: String,
    /// Operator kind (copied from the plan).
    pub kind: &'static str,
    /// Compile-time estimate, where one exists.
    pub estimate: Option<f64>,
    /// Rows the operator produced across all invocations.
    pub rows_out: u64,
    /// Times the operator ran.
    pub invocations: u64,
}

/// Per-execution statistics reported by a prepared query.
#[derive(Debug, Clone)]
pub struct ExecStats {
    /// Per-operator cardinalities, indexed like the plan's operators.
    pub operators: Vec<OpStats>,
    /// Rows in the final result.
    pub rows_out: usize,
    /// Worker threads used by the aggregation stage (1 = sequential).
    pub threads_used: usize,
    /// Whether hash aggregation ran on the parallel path.
    pub parallel_groupby: bool,
    /// Terms interned into the execution arena (computed terms).
    pub arena_terms: usize,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Render the plan as an indented operator tree, one operator per line,
/// with estimates and (when `stats` is given) observed cardinalities.
pub(crate) fn describe_plan(plan: &PhysicalPlan, stats: Option<&ExecStats>) -> Vec<String> {
    fn line(plan: &PhysicalPlan, stats: Option<&ExecStats>, op: usize, indent: usize) -> String {
        let meta = &plan.ops[op];
        let mut s = format!("{}{}", "  ".repeat(indent), meta.label);
        if let Some(est) = meta.estimate {
            s.push_str(&format!(" est={est}"));
        }
        if let Some(st) = stats {
            s.push_str(&format!(" rows={}", st.operators[op].rows_out));
        }
        s
    }
    fn walk(
        plan: &PhysicalPlan,
        stats: Option<&ExecStats>,
        node: &Node,
        indent: usize,
        out: &mut Vec<String>,
    ) {
        match node {
            Node::Input => {}
            Node::Join { input, op, .. }
            | Node::Filter { input, op, .. }
            | Node::Bind { input, op, .. }
            | Node::Values { input, op, .. } => {
                walk(plan, stats, input, indent, out);
                out.push(line(plan, stats, *op, indent));
            }
            Node::Optional { input, inner, op } => {
                walk(plan, stats, input, indent, out);
                out.push(line(plan, stats, *op, indent));
                walk(plan, stats, inner, indent + 1, out);
            }
            Node::Union { input, arms, op } => {
                walk(plan, stats, input, indent, out);
                out.push(line(plan, stats, *op, indent));
                for arm in arms {
                    walk(plan, stats, arm, indent + 1, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, stats, &plan.root, 1, &mut out);
    out.push(line(plan, stats, plan.select_op, 0));
    out
}

// ---- compilation -----------------------------------------------------------

/// Compile a `SELECT` query to a physical plan, or `None` when it uses a
/// construct outside the batched fragment (the caller falls back to the
/// term-space evaluator).
pub(crate) fn compile_select(
    q: &SelectQuery,
    store: &Store,
    options: &EvalOptions,
) -> Option<PhysicalPlan> {
    let mut frame = Frame::default();
    Evaluator::collect_vars(&q.where_, &mut frame);
    let mut c = Compiler { store, frame: &frame, reorder: options.reorder_bgp, ops: Vec::new() };
    let mut bound = vec![false; frame.len()];
    let mut depth = 0u32;
    let root = c.compile_group(&q.where_, Node::Input, &mut bound, 1, &mut depth)?;
    let items = select_items(q, &frame);
    let has_agg = items.iter().any(|it| it.expr.has_aggregate())
        || q.having.as_ref().is_some_and(|h| h.has_aggregate());
    let grouped = !q.group_by.is_empty() || has_agg;
    let select_op = c.op(
        if grouped {
            format!("GroupAggregate(keys={}, items={})", q.group_by.len(), items.len())
        } else {
            format!("Project({} items)", items.len())
        },
        "select",
        None,
    );
    let ops = c.ops;
    Some(PhysicalPlan { root, frame, ops, depth, select_op, grouped })
}

/// The effective projection items (expanding `SELECT *` over the frame).
fn select_items(q: &SelectQuery, frame: &Frame) -> Vec<SelectItem> {
    match &q.projection {
        Projection::Star => frame
            .names()
            .iter()
            .map(|v| SelectItem { expr: Expr::Var(v.clone()), alias: v.clone() })
            .collect(),
        Projection::Items(items) => items.clone(),
    }
}

struct Compiler<'a> {
    store: &'a Store,
    frame: &'a Frame,
    reorder: bool,
    ops: Vec<OpMeta>,
}

impl Compiler<'_> {
    fn op(&mut self, label: String, kind: &'static str, estimate: Option<f64>) -> usize {
        self.ops.push(OpMeta { label, kind, estimate });
        self.ops.len() - 1
    }

    fn compile_group(
        &mut self,
        g: &GroupPattern,
        input: Node,
        bound: &mut Vec<bool>,
        level: u32,
        max_depth: &mut u32,
    ) -> Option<Node> {
        *max_depth = (*max_depth).max(level);
        let mut node = input;
        let mut filters: Vec<Expr> = Vec::new();
        let els = &g.elements;
        let mut i = 0;
        while i < els.len() {
            match &els[i] {
                PatternElement::Triple(_) => {
                    let mut bgp: Vec<&TriplePattern> = Vec::new();
                    while i < els.len() {
                        if let PatternElement::Triple(t) = &els[i] {
                            bgp.push(t);
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    node = self.compile_bgp(&bgp, node, bound)?;
                    continue;
                }
                PatternElement::Filter(e) => filters.push(e.clone()),
                PatternElement::Optional(g2) => {
                    let mut inner_bound = bound.clone();
                    let inner =
                        self.compile_group(g2, Node::Input, &mut inner_bound, level + 1, max_depth)?;
                    // after OPTIONAL the inner vars *may* be bound; treating
                    // them as bound only steers later join ordering
                    *bound = inner_bound;
                    let op = self.op("Optional".to_owned(), "optional", None);
                    node = Node::Optional { input: Box::new(node), inner: Box::new(inner), op };
                }
                PatternElement::Union(arms) => {
                    let mut arm_nodes = Vec::new();
                    let mut merged = bound.clone();
                    for arm in arms {
                        let mut ab = bound.clone();
                        arm_nodes.push(self.compile_group(
                            arm,
                            Node::Input,
                            &mut ab,
                            level + 1,
                            max_depth,
                        )?);
                        for (m, b) in merged.iter_mut().zip(&ab) {
                            *m = *m || *b;
                        }
                    }
                    *bound = merged;
                    let op = self.op(format!("Union({} arms)", arm_nodes.len()), "union", None);
                    node = Node::Union { input: Box::new(node), arms: arm_nodes, op };
                }
                PatternElement::Group(g2) => {
                    node = self.compile_group(g2, node, bound, level + 1, max_depth)?;
                }
                PatternElement::Bind(e, v) => {
                    let slot = self.frame.index(v)?;
                    let op = self.op(format!("Bind ?{v}"), "bind", None);
                    bound[slot] = true;
                    node = Node::Bind { input: Box::new(node), expr: e.clone(), slot, op };
                }
                PatternElement::Values(vars, data) => {
                    let slots: Vec<usize> =
                        vars.iter().map(|v| self.frame.index(v)).collect::<Option<_>>()?;
                    for &s in &slots {
                        bound[s] = true;
                    }
                    let op = self.op(format!("Values({} tuples)", data.len()), "values", None);
                    node = Node::Values { input: Box::new(node), slots, data: data.clone(), op };
                }
                // outside the batched fragment: fall back to the term-space
                // evaluator, which implements these
                PatternElement::SubSelect(_) | PatternElement::Minus(_) => return None,
            }
            i += 1;
        }
        if !filters.is_empty() {
            let op = self.op(format!("Filter({} exprs)", filters.len()), "filter", None);
            node = Node::Filter { input: Box::new(node), exprs: filters, op };
        }
        Some(node)
    }

    fn compile_bgp(
        &mut self,
        patterns: &[&TriplePattern],
        input: Node,
        bound: &mut [bool],
    ) -> Option<Node> {
        for tp in patterns {
            if matches!(&tp.predicate, PathOrVar::Path(p) if !matches!(p, PropertyPath::Iri(_))) {
                return None; // property paths stay on the term-space engine
            }
        }
        let order = if self.reorder {
            plan_order(self.store, patterns, self.frame, bound)
        } else {
            (0..patterns.len()).collect()
        };
        let mut node = input;
        for idx in order {
            let tp = patterns[idx];
            let est = estimate_pattern(self.store, tp);
            let s = self.cslot(&tp.subject, bound)?;
            let o = self.cslot(&tp.object, bound)?;
            let p = match &tp.predicate {
                PathOrVar::Var(v) => {
                    let slot = self.frame.index(v)?;
                    bound[slot] = true;
                    CPred::Var(slot)
                }
                PathOrVar::Path(PropertyPath::Iri(iri)) => match self.store.lookup_iri(iri) {
                    Some(id) => CPred::Const(id),
                    None => CPred::Missing,
                },
                PathOrVar::Path(_) => unreachable!("checked above"),
            };
            let op = self.op(format!("IndexJoin {}", fmt_pattern(tp)), "join", Some(est));
            node = Node::Join { input: Box::new(node), s, p, o, op };
        }
        Some(node)
    }

    fn cslot(&self, t: &TermPattern, bound: &mut [bool]) -> Option<CSlot> {
        Some(match t {
            TermPattern::Term(term) => match self.store.lookup(term) {
                Some(id) => CSlot::Const(id),
                None => CSlot::Missing,
            },
            TermPattern::Var(v) => {
                let slot = self.frame.index(v)?;
                bound[slot] = true;
                CSlot::Var(slot)
            }
        })
    }
}

/// The same greedy ordering as the term-space planner, driven by the static
/// may-be-bound variable set instead of a sample row: start from the most
/// selective pattern, then repeatedly pick the cheapest pattern connected
/// to the bound variables (100× bonus against cartesian products).
fn plan_order(
    store: &Store,
    patterns: &[&TriplePattern],
    frame: &Frame,
    bound: &[bool],
) -> Vec<usize> {
    let mut bound_vars = bound.to_vec();
    let estimates: Vec<f64> = patterns.iter().map(|tp| estimate_pattern(store, tp)).collect();
    let pattern_vars: Vec<Vec<usize>> = patterns
        .iter()
        .map(|tp| {
            let mut v = Vec::new();
            if let Some(name) = tp.subject.as_var() {
                if let Some(i) = frame.index(name) {
                    v.push(i);
                }
            }
            if let PathOrVar::Var(name) = &tp.predicate {
                if let Some(i) = frame.index(name) {
                    v.push(i);
                }
            }
            if let Some(name) = tp.object.as_var() {
                if let Some(i) = frame.index(name) {
                    v.push(i);
                }
            }
            v
        })
        .collect();
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    while !remaining.is_empty() {
        let best = remaining
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let score = |i: usize| {
                    let connected = pattern_vars[i].iter().any(|&v| bound_vars[v]);
                    let bonus = if connected || order.is_empty() { 0.01 } else { 1.0 };
                    estimates[i] * bonus
                };
                score(a).partial_cmp(&score(b)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty remaining");
        remaining.retain(|&i| i != best);
        for &v in &pattern_vars[best] {
            bound_vars[v] = true;
        }
        order.push(best);
    }
    order
}

/// Static cardinality estimate for one pattern (constants only), shared
/// with the term-space planner via [`Store::count_matching`].
pub(crate) fn estimate_pattern(store: &Store, tp: &TriplePattern) -> f64 {
    let s = match &tp.subject {
        TermPattern::Term(t) => match store.lookup(t) {
            Some(id) => Some(id),
            None => return 0.0,
        },
        TermPattern::Var(_) => None,
    };
    let o = match &tp.object {
        TermPattern::Term(t) => match store.lookup(t) {
            Some(id) => Some(id),
            None => return 0.0,
        },
        TermPattern::Var(_) => None,
    };
    let p = match &tp.predicate {
        PathOrVar::Path(PropertyPath::Iri(iri)) => match store.lookup_iri(iri) {
            Some(id) => Some(id),
            None => return 0.0,
        },
        PathOrVar::Path(_) => return 1000.0, // complex path: moderately expensive
        PathOrVar::Var(_) => None,
    };
    store.count_matching(s, p, o, 10_000) as f64
}

fn fmt_pattern(tp: &TriplePattern) -> String {
    fn pos(t: &TermPattern) -> String {
        match t {
            TermPattern::Var(v) => format!("?{v}"),
            TermPattern::Term(t) => t.display_name(),
        }
    }
    let p = match &tp.predicate {
        PathOrVar::Var(v) => format!("?{v}"),
        PathOrVar::Path(PropertyPath::Iri(iri)) => Term::iri(iri.clone()).display_name(),
        PathOrVar::Path(_) => "<path>".to_owned(),
    };
    format!("{} {} {}", pos(&tp.subject), p, pos(&tp.object))
}

// ---- aggregation state -----------------------------------------------------

/// One distinct aggregate call appearing in the projection or `HAVING`.
#[derive(Debug, Clone, PartialEq)]
struct AggSpec {
    op: AggregateOp,
    distinct: bool,
    inner: Option<Expr>,
}

/// Collect the distinct aggregate calls of an expression. `Call` and
/// `EXISTS` arguments are *not* descended into: the term-space engine
/// treats them as leaves evaluated on the representative row, and the
/// batched engine mirrors that.
fn collect_agg_specs(e: &Expr, out: &mut Vec<AggSpec>) {
    match e {
        Expr::Aggregate(op, distinct, inner) => {
            let spec = AggSpec { op: *op, distinct: *distinct, inner: inner.as_deref().cloned() };
            if !out.contains(&spec) {
                out.push(spec);
            }
        }
        Expr::Or(a, b) | Expr::And(a, b) | Expr::Compare(a, _, b) | Expr::Arith(a, _, b) => {
            collect_agg_specs(a, out);
            collect_agg_specs(b, out);
        }
        Expr::Not(x) | Expr::Neg(x) => collect_agg_specs(x, out),
        Expr::In(x, list, _) => {
            collect_agg_specs(x, out);
            for item in list {
                collect_agg_specs(item, out);
            }
        }
        Expr::Var(_) | Expr::Const(_) | Expr::Call(..) | Expr::Exists(..) => {}
    }
}

/// Streaming accumulator for one aggregate over one group. The update and
/// finalize rules replicate the term-space `compute_aggregate` exactly,
/// including its poisoning behaviour (a failing `add` turns the whole
/// SUM/AVG into an unbound result).
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    /// `None` = poisoned by a failed addition.
    Sum(Option<Value>),
    Avg { acc: Option<Value>, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
    Sample(Option<Value>),
    Concat(Vec<String>),
    /// DISTINCT aggregates buffer first-occurrence values and replay the
    /// non-streaming fold at finalize, for exact parity.
    Distinct { op: AggregateOp, seen: HashSet<Term>, values: Vec<Value> },
}

impl AggState {
    fn new(spec: &AggSpec) -> AggState {
        if spec.distinct {
            return AggState::Distinct { op: spec.op, seen: HashSet::new(), values: Vec::new() };
        }
        match spec.op {
            AggregateOp::Count => AggState::Count(0),
            AggregateOp::Sum => AggState::Sum(Some(Value::Int(0))),
            AggregateOp::Avg => AggState::Avg { acc: Some(Value::Int(0)), n: 0 },
            AggregateOp::Min => AggState::Min(None),
            AggregateOp::Max => AggState::Max(None),
            AggregateOp::Sample => AggState::Sample(None),
            AggregateOp::GroupConcat => AggState::Concat(Vec::new()),
        }
    }

    fn update(&mut self, v: Value) {
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum(acc) => {
                if let Some(a) = acc.take() {
                    *acc = a.add(&v);
                }
            }
            AggState::Avg { acc, n } => {
                if let Some(a) = acc.take() {
                    *acc = a.add(&v);
                }
                *n += 1;
            }
            AggState::Min(best) => {
                *best = Some(match best.take() {
                    None => v,
                    Some(b) => {
                        if v.compare(&b) == Some(std::cmp::Ordering::Less) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            AggState::Max(best) => {
                *best = Some(match best.take() {
                    None => v,
                    Some(b) => {
                        if v.compare(&b) == Some(std::cmp::Ordering::Greater) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            AggState::Sample(s) => {
                if s.is_none() {
                    *s = Some(v);
                }
            }
            AggState::Concat(parts) => parts.push(v.render()),
            AggState::Distinct { seen, values, .. } => {
                if seen.insert(v.to_term()) {
                    values.push(v);
                }
            }
        }
    }

    /// Fold a later chunk's state into an earlier chunk's (parallel merge).
    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => {
                *a = match (a.take(), b) {
                    (Some(x), Some(y)) => x.add(&y),
                    _ => None,
                };
            }
            (AggState::Avg { acc: aa, n: an }, AggState::Avg { acc: ba, n: bn }) => {
                *aa = match (aa.take(), ba) {
                    (Some(x), Some(y)) => x.add(&y),
                    _ => None,
                };
                *an += bn;
            }
            (AggState::Min(a), AggState::Min(b)) => {
                if let Some(bv) = b {
                    *a = Some(match a.take() {
                        None => bv,
                        Some(av) => {
                            if bv.compare(&av) == Some(std::cmp::Ordering::Less) {
                                bv
                            } else {
                                av
                            }
                        }
                    });
                }
            }
            (AggState::Max(a), AggState::Max(b)) => {
                if let Some(bv) = b {
                    *a = Some(match a.take() {
                        None => bv,
                        Some(av) => {
                            if bv.compare(&av) == Some(std::cmp::Ordering::Greater) {
                                bv
                            } else {
                                av
                            }
                        }
                    });
                }
            }
            (AggState::Sample(a), AggState::Sample(b)) => {
                if a.is_none() {
                    *a = b;
                }
            }
            (AggState::Concat(a), AggState::Concat(b)) => a.extend(b),
            (AggState::Distinct { seen, values, .. }, AggState::Distinct { values: bv, .. }) => {
                for v in bv {
                    if seen.insert(v.to_term()) {
                        values.push(v);
                    }
                }
            }
            _ => unreachable!("mismatched aggregate states"),
        }
    }

    fn finalize(self) -> Option<Value> {
        match self {
            AggState::Count(n) => Some(Value::Int(n)),
            AggState::Sum(acc) => acc,
            AggState::Avg { acc, n } => {
                if n == 0 {
                    None
                } else {
                    acc?.div(&Value::Int(n))
                }
            }
            AggState::Min(best) | AggState::Max(best) | AggState::Sample(best) => best,
            AggState::Concat(parts) => Some(Value::Str(parts.join(" "), None)),
            AggState::Distinct { op, values, .. } => aggregate_values(op, values),
        }
    }
}

/// The non-streaming aggregate fold of the term-space engine, used to
/// finalize DISTINCT accumulators over their deduplicated value list.
fn aggregate_values(op: AggregateOp, values: Vec<Value>) -> Option<Value> {
    match op {
        AggregateOp::Count => Some(Value::Int(values.len() as i64)),
        AggregateOp::Sum => {
            let mut acc = Value::Int(0);
            for v in &values {
                acc = acc.add(v)?;
            }
            Some(acc)
        }
        AggregateOp::Avg => {
            if values.is_empty() {
                return None;
            }
            let n = values.len() as i64;
            let mut acc = Value::Int(0);
            for v in &values {
                acc = acc.add(v)?;
            }
            acc.div(&Value::Int(n))
        }
        AggregateOp::Min => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if v.compare(&b) == Some(std::cmp::Ordering::Less) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
        AggregateOp::Max => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if v.compare(&b) == Some(std::cmp::Ordering::Greater) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
        AggregateOp::Sample => values.into_iter().next(),
        AggregateOp::GroupConcat => {
            let joined = values.iter().map(Value::render).collect::<Vec<_>>().join(" ");
            Some(Value::Str(joined, None))
        }
    }
}

/// One group under construction: canonical key, first source row (the
/// representative for non-aggregate expressions), and one state per spec.
struct GroupAcc {
    key: Vec<EId>,
    first_row: usize,
    states: Vec<AggState>,
}

/// A group-key column, pre-canonicalized for plain variables.
enum KeyCol {
    Canon(Vec<EId>),
    Complex(Expr),
}

/// Where one aggregate draws its per-row input from.
enum SpecIn {
    /// `COUNT(*)`: every row contributes `1`.
    CountStar,
    /// A plain variable at this frame slot.
    Slot(usize),
    /// A variable absent from the frame: never contributes.
    Never,
    /// An arbitrary expression (sequential path only).
    Complex(Expr),
}

/// The parallel-safe subset of [`SpecIn`].
#[derive(Clone, Copy)]
enum SimpleIn {
    CountStar,
    Slot(usize),
    Never,
}

// ---- execution -------------------------------------------------------------

/// Run a compiled plan. Returns the solutions plus per-operator statistics.
pub(crate) fn execute_plan(
    plan: &PhysicalPlan,
    q: &SelectQuery,
    store: &Store,
    options: &EvalOptions,
) -> Result<(Solutions, ExecStats), SparqlError> {
    let t0 = Instant::now();
    let guard = Rc::new(LimitGuard::new(options.limits.clone()));
    let mut ex = Executor {
        store,
        frame: &plan.frame,
        options: options.clone(),
        guard: Rc::clone(&guard),
        arena: TermArena::new(),
        op_rows: vec![0; plan.ops.len()],
        op_calls: vec![0; plan.ops.len()],
        threads_used: 1,
        parallel_groupby: false,
    };
    // charge the static nesting depth against the recursion budget, like the
    // per-group scopes of the term-space evaluator; the scopes stay alive
    // for the whole execution so EXISTS sub-evaluations nest below them
    let mut scopes = Vec::with_capacity(plan.depth as usize);
    for _ in 0..plan.depth {
        scopes.push(guard.enter()?);
    }
    let out = ex.exec(&plan.root, Batch::seed(plan.frame.len()))?;
    let solutions = ex.finish_select(plan, q, out)?;
    drop(scopes);
    ex.op_rows[plan.select_op] = solutions.rows().len() as u64;
    ex.op_calls[plan.select_op] = 1;
    let stats = ExecStats {
        operators: plan
            .ops
            .iter()
            .enumerate()
            .map(|(i, m)| OpStats {
                label: m.label.clone(),
                kind: m.kind,
                estimate: m.estimate,
                rows_out: ex.op_rows[i],
                invocations: ex.op_calls[i],
            })
            .collect(),
        rows_out: solutions.rows().len(),
        threads_used: ex.threads_used,
        parallel_groupby: ex.parallel_groupby,
        arena_terms: ex.arena.len(),
        elapsed: t0.elapsed(),
    };
    Ok((solutions, stats))
}

struct Executor<'s> {
    store: &'s Store,
    frame: &'s Frame,
    options: EvalOptions,
    guard: Rc<LimitGuard>,
    arena: TermArena,
    op_rows: Vec<u64>,
    op_calls: Vec<u64>,
    threads_used: usize,
    parallel_groupby: bool,
}

/// Runtime anchor of a join position for one input row.
enum RAnchor {
    Fixed(TermId),
    BoundV(TermId),
    Free(usize),
}

impl RAnchor {
    fn id(&self) -> Option<TermId> {
        match self {
            RAnchor::Fixed(id) | RAnchor::BoundV(id) => Some(*id),
            RAnchor::Free(_) => None,
        }
    }
}

fn same_free(a: &RAnchor, b: &RAnchor) -> bool {
    matches!((a, b), (RAnchor::Free(x), RAnchor::Free(y)) if x == y)
}

/// Bind an anchor to a matched id; false rejects the match.
fn anchor_bind(a: &RAnchor, value: TermId, overrides: &mut Vec<(usize, EId)>) -> bool {
    match a {
        RAnchor::Fixed(_) => true,
        RAnchor::BoundV(id) => *id == value,
        RAnchor::Free(slot) => {
            overrides.push((*slot, pack_store(value)));
            true
        }
    }
}

impl Executor<'_> {
    fn note(&mut self, op: usize, rows: usize) {
        self.op_rows[op] += rows as u64;
        self.op_calls[op] += 1;
    }

    fn exec(&mut self, node: &Node, input: Batch) -> Result<Batch, SparqlError> {
        match node {
            Node::Input => Ok(input),
            Node::Join { input: child, s, p, o, op } => {
                let b = self.exec(child, input)?;
                let out = self.exec_join(&b, s, p, o)?;
                self.note(*op, out.len());
                Ok(out)
            }
            Node::Filter { input: child, exprs, op } => {
                let b = self.exec(child, input)?;
                let out = self.exec_filter(b, exprs)?;
                self.note(*op, out.len());
                Ok(out)
            }
            Node::Bind { input: child, expr, slot, op } => {
                let b = self.exec(child, input)?;
                let out = self.exec_bind(b, expr, *slot)?;
                self.note(*op, out.len());
                Ok(out)
            }
            Node::Values { input: child, slots, data, op } => {
                let b = self.exec(child, input)?;
                let out = self.exec_values(&b, slots, data)?;
                self.note(*op, out.len());
                Ok(out)
            }
            Node::Optional { input: child, inner, op } => {
                let b = self.exec(child, input)?;
                let out = self.exec_optional(&b, inner)?;
                self.note(*op, out.len());
                Ok(out)
            }
            Node::Union { input: child, arms, op } => {
                let base = self.exec(child, input)?;
                let mut out = Batch::new(base.width());
                for arm in arms {
                    let arm_out = self.exec(arm, base.clone())?;
                    out.append(&arm_out);
                }
                self.note(*op, out.len());
                Ok(out)
            }
        }
    }

    fn exec_join(
        &mut self,
        input: &Batch,
        s: &CSlot,
        p: &CPred,
        o: &CSlot,
    ) -> Result<Batch, SparqlError> {
        let mut out = Batch::new(input.width());
        let mut overrides: Vec<(usize, EId)> = Vec::with_capacity(3);
        for r in 0..input.len() {
            // probe per (pattern, row) pair, like the term-space evaluator
            self.guard.check_deadline()?;
            let sa = match self.resolve(s, input, r) {
                Some(a) => a,
                None => continue,
            };
            let oa = match self.resolve(o, input, r) {
                Some(a) => a,
                None => continue,
            };
            let (p_fixed, p_slot) = match p {
                CPred::Const(id) => (Some(*id), None),
                CPred::Missing => continue,
                CPred::Var(slot) => {
                    let v = input.get(r, *slot);
                    if v == UNBOUND {
                        (None, Some(*slot))
                    } else if let Some(tid) = as_store(v) {
                        (Some(tid), None)
                    } else {
                        continue; // bound to a computed term: never in the store
                    }
                }
            };
            for [sv, pv, ov] in self.store.matching(sa.id(), p_fixed, oa.id()) {
                // repeated-variable consistency (?x p ?x)
                if same_free(&sa, &oa) && sv != ov {
                    continue;
                }
                overrides.clear();
                if !anchor_bind(&sa, sv, &mut overrides) || !anchor_bind(&oa, ov, &mut overrides) {
                    continue;
                }
                if let Some(ps) = p_slot {
                    // the predicate binding wins on slot collisions, matching
                    // the term-space evaluator's overwrite order
                    overrides.push((ps, pack_store(pv)));
                }
                self.guard.count_row_bytes(batch_row_cost(out.width()))?;
                out.push_row_from(input, r, &overrides);
            }
        }
        Ok(out)
    }

    fn resolve(&self, c: &CSlot, input: &Batch, r: usize) -> Option<RAnchor> {
        match c {
            CSlot::Const(id) => Some(RAnchor::Fixed(*id)),
            CSlot::Missing => None,
            CSlot::Var(slot) => {
                let v = input.get(r, *slot);
                if v == UNBOUND {
                    Some(RAnchor::Free(*slot))
                } else {
                    // a computed (arena-local) term can never match the store
                    as_store(v).map(RAnchor::BoundV)
                }
            }
        }
    }

    fn exec_filter(&mut self, mut batch: Batch, exprs: &[Expr]) -> Result<Batch, SparqlError> {
        for e in exprs {
            let keep: Vec<bool> = (0..batch.len())
                .map(|r| {
                    let row = self.to_row(&batch, r);
                    eval_expr_limited(e, &row, self.frame, self.store, &self.guard)
                        .and_then(|v| v.effective_boolean())
                        .unwrap_or(false)
                })
                .collect();
            batch.retain_rows(&keep);
            self.guard.surface()?;
        }
        Ok(batch)
    }

    fn exec_bind(
        &mut self,
        mut batch: Batch,
        expr: &Expr,
        slot: usize,
    ) -> Result<Batch, SparqlError> {
        let ids: Vec<EId> = (0..batch.len())
            .map(|r| {
                let row = self.to_row(&batch, r);
                match eval_expr_limited(expr, &row, self.frame, self.store, &self.guard) {
                    Some(v) => self.arena.intern(self.store, &v.to_term()),
                    None => UNBOUND,
                }
            })
            .collect();
        for (r, id) in ids.into_iter().enumerate() {
            batch.set(r, slot, id);
        }
        self.guard.surface()?;
        Ok(batch)
    }

    fn exec_values(
        &mut self,
        input: &Batch,
        slots: &[usize],
        data: &[Vec<Option<Term>>],
    ) -> Result<Batch, SparqlError> {
        let tuples: Vec<Vec<Option<EId>>> = data
            .iter()
            .map(|tuple| {
                tuple.iter().map(|t| t.as_ref().map(|t| self.arena.intern(self.store, t))).collect()
            })
            .collect();
        let mut out = Batch::new(input.width());
        let mut overrides: Vec<(usize, EId)> = Vec::new();
        for r in 0..input.len() {
            'data: for tuple in &tuples {
                overrides.clear();
                for (slot, id) in slots.iter().zip(tuple) {
                    if let Some(id) = id {
                        let existing = input.get(r, *slot);
                        if existing != UNBOUND {
                            if existing != *id {
                                continue 'data; // incompatible binding
                            }
                        } else {
                            overrides.push((*slot, *id));
                        }
                    }
                }
                self.guard.count_row_bytes(batch_row_cost(out.width()))?;
                out.push_row_from(input, r, &overrides);
            }
        }
        Ok(out)
    }

    fn exec_optional(&mut self, input: &Batch, inner: &Node) -> Result<Batch, SparqlError> {
        let mut inner_input = input.clone();
        inner_input.reset_prov();
        let extended = self.exec(inner, inner_input)?;
        // regroup extended rows under their source row, in source order
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); input.len()];
        for r in 0..extended.len() {
            buckets[extended.prov(r) as usize].push(r);
        }
        let mut out = Batch::new(input.width());
        for (r, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                out.push_row(&input.row(r), input.prov(r));
            } else {
                for &ir in bucket {
                    out.push_row(&extended.row(ir), input.prov(r));
                }
            }
        }
        Ok(out)
    }

    fn to_row(&self, batch: &Batch, r: usize) -> Row {
        (0..batch.width())
            .map(|c| {
                let id = batch.get(r, c);
                if id == UNBOUND {
                    None
                } else if let Some(tid) = as_store(id) {
                    Some(Bound::Id(tid))
                } else {
                    Some(Bound::Term(self.arena.term(self.store, id).clone()))
                }
            })
            .collect()
    }

    fn finish_select(
        &mut self,
        plan: &PhysicalPlan,
        q: &SelectQuery,
        batch: Batch,
    ) -> Result<Solutions, SparqlError> {
        let items = select_items(q, &plan.frame);
        let vars: Vec<String> = items.iter().map(|it| it.alias.clone()).collect();
        let out_rows = if plan.grouped {
            self.grouped_rows(q, &items, &batch)?
        } else {
            self.projected_rows(&items, &batch)?
        };
        finalize_rows(q, vars, out_rows, self.store, &self.guard)
    }

    // ---- plain projection --------------------------------------------------

    fn projected_rows(
        &mut self,
        items: &[SelectItem],
        batch: &Batch,
    ) -> Result<Vec<Vec<Option<Term>>>, SparqlError> {
        // pre-resolve Var items to slots; anything else evaluates per row
        let slots: Vec<Option<Option<usize>>> = items
            .iter()
            .map(|it| match &it.expr {
                Expr::Var(v) => Some(self.frame.index(v)),
                _ => None,
            })
            .collect();
        let all_vars = slots.iter().all(|s| s.is_some());
        // projected term per execution id, memoized: the value round trip
        // (term -> typed value -> canonical term) matches the term-space
        // engine's per-cell evaluation, but runs once per distinct id
        let mut memo: HashMap<EId, Option<Term>> = HashMap::new();
        let mut out = Vec::with_capacity(batch.len());
        for r in 0..batch.len() {
            let row: Row = if all_vars { Vec::new() } else { self.to_row(batch, r) };
            let cells: Vec<Option<Term>> = items
                .iter()
                .zip(&slots)
                .map(|(it, slot)| match slot {
                    Some(None) => None, // projected var absent from the frame
                    Some(Some(c)) => {
                        let id = batch.get(r, *c);
                        if id == UNBOUND {
                            None
                        } else if let Some(t) = memo.get(&id) {
                            t.clone()
                        } else {
                            let term = self.arena.term(self.store, id);
                            let t = Some(Value::from_term(term).to_term());
                            memo.insert(id, t.clone());
                            t
                        }
                    }
                    None => eval_expr_limited(&it.expr, &row, self.frame, self.store, &self.guard)
                        .map(|v| v.to_term()),
                })
                .collect();
            out.push(cells);
        }
        Ok(out)
    }

    // ---- grouping / aggregation --------------------------------------------

    fn grouped_rows(
        &mut self,
        q: &SelectQuery,
        items: &[SelectItem],
        batch: &Batch,
    ) -> Result<Vec<Vec<Option<Term>>>, SparqlError> {
        // distinct aggregate specs across projection and HAVING
        let mut specs: Vec<AggSpec> = Vec::new();
        for it in items {
            collect_agg_specs(&it.expr, &mut specs);
        }
        if let Some(h) = &q.having {
            collect_agg_specs(h, &mut specs);
        }

        // group-key columns: plain variables canonicalize id-to-id; anything
        // else evaluates per row on the sequential path
        let mut canon_memo: HashMap<EId, EId> = HashMap::new();
        let mut key_cols: Vec<KeyCol> = Vec::with_capacity(q.group_by.len());
        let mut all_var_keys = true;
        for e in &q.group_by {
            match e {
                Expr::Var(v) => {
                    let col: Vec<EId> = match self.frame.index(v) {
                        Some(c) => (0..batch.len())
                            .map(|r| self.canon_id(batch.get(r, c), &mut canon_memo))
                            .collect(),
                        None => vec![UNBOUND; batch.len()],
                    };
                    key_cols.push(KeyCol::Canon(col));
                }
                _ => {
                    all_var_keys = false;
                    key_cols.push(KeyCol::Complex(e.clone()));
                }
            }
        }

        let mut all_simple_specs = true;
        let spec_in: Vec<SpecIn> = specs
            .iter()
            .map(|s| match &s.inner {
                None => SpecIn::CountStar,
                Some(Expr::Var(v)) => match self.frame.index(v) {
                    Some(c) => SpecIn::Slot(c),
                    None => SpecIn::Never,
                },
                Some(e) => {
                    all_simple_specs = false;
                    SpecIn::Complex(e.clone())
                }
            })
            .collect();

        let threads = effective_threads(self.options.threads);
        let parallel =
            all_var_keys && all_simple_specs && threads > 1 && batch.len() >= PARALLEL_MIN_ROWS;

        let mut groups: Vec<GroupAcc> = if parallel {
            let canon: Vec<&[EId]> = key_cols
                .iter()
                .map(|k| match k {
                    KeyCol::Canon(c) => c.as_slice(),
                    KeyCol::Complex(_) => unreachable!("parallel requires var keys"),
                })
                .collect();
            let simple: Vec<SimpleIn> = spec_in
                .iter()
                .map(|s| match s {
                    SpecIn::CountStar => SimpleIn::CountStar,
                    SpecIn::Slot(c) => SimpleIn::Slot(*c),
                    SpecIn::Never => SimpleIn::Never,
                    SpecIn::Complex(_) => unreachable!("parallel requires var inputs"),
                })
                .collect();
            let workers = threads.min(batch.len().div_ceil(PARALLEL_MIN_ROWS / 4)).max(2);
            self.threads_used = workers;
            self.parallel_groupby = true;
            let ctx = ParCtx {
                store: self.store,
                arena: &self.arena,
                batch,
                canon: &canon,
                specs: &specs,
                simple: &simple,
            };
            match parallel_group(&ctx, workers, self.guard.probe_info()) {
                Some(groups) => groups,
                None => {
                    // a worker saw the deadline expire (or the query was
                    // cancelled): record the right trip kind and surface
                    if self.guard.is_cancelled() {
                        self.guard.note_trip(LimitKind::Cancelled, 0);
                    } else {
                        let ms = self
                            .guard
                            .limits()
                            .deadline
                            .map(|d| d.as_millis() as u64)
                            .unwrap_or(0);
                        self.guard.note_trip(LimitKind::Deadline, ms);
                    }
                    self.guard.surface()?;
                    unreachable!("surface must fail after a recorded trip");
                }
            }
        } else {
            self.sequential_group(batch, &key_cols, &specs, &spec_in)
        };

        // an aggregate query with no GROUP BY over zero rows still yields
        // one group (COUNT(*) = 0)
        if groups.is_empty() && q.group_by.is_empty() {
            groups.push(GroupAcc {
                key: Vec::new(),
                first_row: usize::MAX,
                states: specs.iter().map(AggState::new).collect(),
            });
        }

        let mut out_rows = Vec::with_capacity(groups.len());
        for g in &groups {
            let rep_row: Row = if g.first_row == usize::MAX {
                Vec::new()
            } else {
                self.to_row(batch, g.first_row)
            };
            let agg_vals: Vec<Option<Value>> =
                g.states.iter().map(|s| s.clone().finalize()).collect();
            if let Some(having) = &q.having {
                let keep = self
                    .eval_with_aggs(having, &specs, &agg_vals, &rep_row)
                    .and_then(|v| v.effective_boolean())
                    .unwrap_or(false);
                if !keep {
                    continue;
                }
            }
            let cells: Vec<Option<Term>> = items
                .iter()
                .map(|it| {
                    self.eval_with_aggs(&it.expr, &specs, &agg_vals, &rep_row).map(|v| v.to_term())
                })
                .collect();
            out_rows.push(cells);
        }
        Ok(out_rows)
    }

    /// Canonical execution id of a group-key cell: the id of the term's
    /// value round trip, so e.g. `"07"^^xsd:integer` and `"7"^^xsd:integer`
    /// land in the same group — exactly like term-space group keys.
    fn canon_id(&mut self, id: EId, memo: &mut HashMap<EId, EId>) -> EId {
        if id == UNBOUND {
            return UNBOUND;
        }
        if let Some(&c) = memo.get(&id) {
            return c;
        }
        let canon_term = Value::from_term(self.arena.term(self.store, id)).to_term();
        let c = self.arena.intern(self.store, &canon_term);
        memo.insert(id, c);
        c
    }

    fn sequential_group(
        &mut self,
        batch: &Batch,
        key_cols: &[KeyCol],
        specs: &[AggSpec],
        spec_in: &[SpecIn],
    ) -> Vec<GroupAcc> {
        let mut groups: Vec<GroupAcc> = Vec::new();
        let mut index: HashMap<Vec<EId>, usize> = HashMap::new();
        let mut val_memo: HashMap<EId, Value> = HashMap::new();
        let need_row = key_cols.iter().any(|k| matches!(k, KeyCol::Complex(_)))
            || spec_in.iter().any(|s| matches!(s, SpecIn::Complex(_)));
        for r in 0..batch.len() {
            let row: Row = if need_row { self.to_row(batch, r) } else { Vec::new() };
            let mut key: Vec<EId> = Vec::with_capacity(key_cols.len());
            for k in key_cols {
                key.push(match k {
                    KeyCol::Canon(col) => col[r],
                    KeyCol::Complex(e) => {
                        match eval_expr_limited(e, &row, self.frame, self.store, &self.guard) {
                            Some(v) => self.arena.intern(self.store, &v.to_term()),
                            None => UNBOUND,
                        }
                    }
                });
            }
            let gi = match index.get(&key) {
                Some(&i) => i,
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push(GroupAcc {
                        key,
                        first_row: r,
                        states: specs.iter().map(AggState::new).collect(),
                    });
                    groups.len() - 1
                }
            };
            for (si, input) in spec_in.iter().enumerate() {
                let v: Option<Value> = match input {
                    SpecIn::CountStar => Some(Value::Int(1)),
                    SpecIn::Never => None,
                    SpecIn::Slot(c) => {
                        let id = batch.get(r, *c);
                        if id == UNBOUND {
                            None
                        } else if let Some(v) = val_memo.get(&id) {
                            Some(v.clone())
                        } else {
                            let v = Value::from_term(self.arena.term(self.store, id));
                            val_memo.insert(id, v.clone());
                            Some(v)
                        }
                    }
                    SpecIn::Complex(e) => {
                        eval_expr_limited(e, &row, self.frame, self.store, &self.guard)
                    }
                };
                if let Some(v) = v {
                    groups[gi].states[si].update(v);
                }
            }
        }
        groups
    }

    /// Evaluate a projection/`HAVING` expression against one finished group:
    /// aggregate leaves substitute the precomputed values, everything else
    /// mirrors the term-space `eval_agg_expr` (non-aggregate leaves are
    /// evaluated on the group's representative row).
    fn eval_with_aggs(
        &self,
        expr: &Expr,
        specs: &[AggSpec],
        agg_vals: &[Option<Value>],
        rep_row: &Row,
    ) -> Option<Value> {
        match expr {
            Expr::Aggregate(op, distinct, inner) => {
                let idx = specs.iter().position(|s| {
                    s.op == *op && s.distinct == *distinct && s.inner.as_ref() == inner.as_deref()
                })?;
                agg_vals[idx].clone()
            }
            Expr::Var(_) | Expr::Const(_) | Expr::Call(..) | Expr::Exists(..) => {
                eval_expr_limited(expr, rep_row, self.frame, self.store, &self.guard)
            }
            Expr::Or(a, b) => {
                let va = self
                    .eval_with_aggs(a, specs, agg_vals, rep_row)
                    .and_then(|v| v.effective_boolean());
                let vb = self
                    .eval_with_aggs(b, specs, agg_vals, rep_row)
                    .and_then(|v| v.effective_boolean());
                match (va, vb) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            Expr::And(a, b) => {
                let va = self
                    .eval_with_aggs(a, specs, agg_vals, rep_row)
                    .and_then(|v| v.effective_boolean());
                let vb = self
                    .eval_with_aggs(b, specs, agg_vals, rep_row)
                    .and_then(|v| v.effective_boolean());
                match (va, vb) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            Expr::Not(e) => {
                let v = self.eval_with_aggs(e, specs, agg_vals, rep_row)?.effective_boolean()?;
                Some(Value::Bool(!v))
            }
            Expr::Compare(a, op, b) => {
                let va = self.eval_with_aggs(a, specs, agg_vals, rep_row)?;
                let vb = self.eval_with_aggs(b, specs, agg_vals, rep_row)?;
                match op {
                    CompareOp::Eq => Some(Value::Bool(va.value_eq(&vb))),
                    CompareOp::Ne => Some(Value::Bool(!va.value_eq(&vb))),
                    _ => {
                        let ord = va.compare(&vb)?;
                        Some(Value::Bool(match op {
                            CompareOp::Lt => ord == std::cmp::Ordering::Less,
                            CompareOp::Le => ord != std::cmp::Ordering::Greater,
                            CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                            CompareOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        }))
                    }
                }
            }
            Expr::Arith(a, op, b) => {
                let va = self.eval_with_aggs(a, specs, agg_vals, rep_row)?;
                let vb = self.eval_with_aggs(b, specs, agg_vals, rep_row)?;
                match op {
                    ArithOp::Add => va.add(&vb),
                    ArithOp::Sub => va.sub(&vb),
                    ArithOp::Mul => va.mul(&vb),
                    ArithOp::Div => va.div(&vb),
                }
            }
            Expr::Neg(e) => {
                let v = self.eval_with_aggs(e, specs, agg_vals, rep_row)?;
                Value::Int(0).sub(&v)
            }
            Expr::In(e, list, negated) => {
                let v = self.eval_with_aggs(e, specs, agg_vals, rep_row)?;
                let mut found = false;
                for item in list {
                    if let Some(vi) = self.eval_with_aggs(item, specs, agg_vals, rep_row) {
                        if v.value_eq(&vi) {
                            found = true;
                            break;
                        }
                    }
                }
                Some(Value::Bool(found != *negated))
            }
        }
    }
}

// ---- parallel hash aggregation ---------------------------------------------

/// Shared read-only context for aggregation workers.
struct ParCtx<'a> {
    store: &'a Store,
    arena: &'a TermArena,
    batch: &'a Batch,
    canon: &'a [&'a [EId]],
    specs: &'a [AggSpec],
    simple: &'a [SimpleIn],
}

/// Hash-aggregate `ctx.batch` across `workers` scoped threads over
/// contiguous row chunks, then merge the per-worker partial maps in chunk
/// order (preserving global first-seen group order). Returns `None` when a
/// worker observed the deadline expire or the query's cancellation flag.
fn parallel_group(
    ctx: &ParCtx<'_>,
    workers: usize,
    probe: ProbeInfo,
) -> Option<Vec<GroupAcc>> {
    let rows = ctx.batch.len();
    let chunk = rows.div_ceil(workers);
    let stop = AtomicBool::new(false);
    let partials: Vec<Option<Vec<GroupAcc>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(rows);
                let stop = &stop;
                let probe = probe.clone();
                scope.spawn(move || worker_group(ctx, start, end, stop, probe))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("aggregation worker panicked")).collect()
    });
    if stop.load(AtomicOrdering::Relaxed) {
        return None;
    }
    // merge in chunk order: chunk 0's rows precede chunk 1's, so first-seen
    // order (and each group's representative row) matches the sequential scan
    let mut groups: Vec<GroupAcc> = Vec::new();
    let mut index: HashMap<Vec<EId>, usize> = HashMap::new();
    for partial in partials.into_iter().flatten() {
        for g in partial {
            match index.get(&g.key) {
                Some(&i) => {
                    let dst = &mut groups[i];
                    for (a, b) in dst.states.iter_mut().zip(g.states) {
                        a.merge(b);
                    }
                }
                None => {
                    index.insert(g.key.clone(), groups.len());
                    groups.push(g);
                }
            }
        }
    }
    Some(groups)
}

/// One worker: sequential hash aggregation over `[start, end)`, probing the
/// shared stop flag, the deadline, and the cancellation flag every
/// [`WORKER_PROBE_INTERVAL`] rows.
fn worker_group(
    ctx: &ParCtx<'_>,
    start: usize,
    end: usize,
    stop: &AtomicBool,
    probe: ProbeInfo,
) -> Option<Vec<GroupAcc>> {
    let mut groups: Vec<GroupAcc> = Vec::new();
    let mut index: HashMap<Vec<EId>, usize> = HashMap::new();
    let mut val_memo: HashMap<EId, Value> = HashMap::new();
    for (i, r) in (start..end).enumerate() {
        if i % WORKER_PROBE_INTERVAL == 0 {
            if stop.load(AtomicOrdering::Relaxed) {
                return None;
            }
            if probe.cancelled() || probe.deadline_expired() {
                stop.store(true, AtomicOrdering::Relaxed);
                return None;
            }
        }
        let key: Vec<EId> = ctx.canon.iter().map(|col| col[r]).collect();
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                index.insert(key.clone(), groups.len());
                groups.push(GroupAcc {
                    key,
                    first_row: r,
                    states: ctx.specs.iter().map(AggState::new).collect(),
                });
                groups.len() - 1
            }
        };
        for (si, input) in ctx.simple.iter().enumerate() {
            let v: Option<Value> = match input {
                SimpleIn::CountStar => Some(Value::Int(1)),
                SimpleIn::Never => None,
                SimpleIn::Slot(c) => {
                    let id = ctx.batch.get(r, *c);
                    if id == UNBOUND {
                        None
                    } else if let Some(v) = val_memo.get(&id) {
                        Some(v.clone())
                    } else {
                        let v = Value::from_term(ctx.arena.term(ctx.store, id));
                        val_memo.insert(id, v.clone());
                        Some(v)
                    }
                }
            };
            if let Some(v) = v {
                groups[gi].states[si].update(v);
            }
        }
    }
    Some(groups)
}

fn effective_threads(configured: usize) -> usize {
    if configured != 0 {
        configured
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}
