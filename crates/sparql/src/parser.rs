//! Recursive-descent parser for the supported SPARQL fragment.
//!
//! Accepts standard SPARQL 1.1 syntax, plus two convenience relaxations that
//! the paper's query listings use (Figures 1.3, 2.6, §4.2): bare aggregate
//! projections without `AS` (`SELECT ?m SUM(?x3)`), and bare built-in calls
//! in `GROUP BY` (`GROUP BY month(?x2)`). Synthesized aliases are assigned
//! for unnamed projections.

use crate::ast::*;
use crate::token::{tokenize, Token};
use crate::SparqlError;
use rdfa_model::{vocab::xsd, Literal, Term};
use std::collections::HashMap;

/// Parse a complete query.
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { toks: tokens, pos: 0, prefixes: HashMap::new(), synth: 0 };
    p.parse_prologue()?;
    let form = if p.peek_kw("SELECT") {
        QueryForm::Select(p.parse_select()?)
    } else if p.peek_kw("CONSTRUCT") {
        p.parse_construct()?
    } else if p.peek_kw("ASK") {
        p.bump();
        let _ = p.eat_kw("WHERE");
        QueryForm::Ask(p.parse_group()?)
    } else if p.peek_kw("DESCRIBE") {
        p.bump();
        let mut resources = Vec::new();
        loop {
            match p.peek().cloned() {
                Some(Token::IriRef(iri)) => {
                    p.bump();
                    resources.push(Term::iri(iri));
                }
                Some(Token::PName(pre, local)) => {
                    p.bump();
                    resources.push(Term::iri(p.resolve_pname(&pre, &local)?));
                }
                _ => break,
            }
        }
        if resources.is_empty() {
            return Err(SparqlError::new("DESCRIBE needs at least one IRI"));
        }
        QueryForm::Describe(resources)
    } else {
        return Err(SparqlError::new("expected SELECT, CONSTRUCT, ASK or DESCRIBE"));
    };
    if p.pos != p.toks.len() {
        return Err(SparqlError::new(format!(
            "trailing tokens after query: {:?}",
            &p.toks[p.pos..p.toks.len().min(p.pos + 5)]
        )));
    }
    Ok(Query { form })
}

/// Parse a SPARQL Update request (possibly several operations joined by
/// `;`). See [`crate::update`] for the supported forms.
pub fn parse_update_ops(input: &str) -> Result<Vec<crate::update::UpdateOp>, SparqlError> {
    use crate::update::UpdateOp;
    let tokens = tokenize(input)?;
    let mut p = Parser { toks: tokens, pos: 0, prefixes: HashMap::new(), synth: 0 };
    p.parse_prologue()?;
    let mut ops = Vec::new();
    loop {
        if p.eat_kw("INSERT") {
            if p.eat_kw("DATA") {
                ops.push(UpdateOp::InsertData(p.parse_ground_triples()?));
            } else {
                // INSERT { t } WHERE { … }
                let insert = p.parse_template()?;
                let _ = p.eat_kw("WHERE");
                let where_ = p.parse_group()?;
                ops.push(UpdateOp::Modify { delete: Vec::new(), insert, where_ });
            }
        } else if p.eat_kw("DELETE") {
            if p.eat_kw("DATA") {
                ops.push(UpdateOp::DeleteData(p.parse_ground_triples()?));
            } else if p.eat_kw("WHERE") {
                ops.push(UpdateOp::DeleteWhere(p.parse_template()?));
            } else {
                // DELETE { t } [INSERT { t }] WHERE { … }
                let delete = p.parse_template()?;
                let insert = if p.eat_kw("INSERT") { p.parse_template()? } else { Vec::new() };
                p.expect_kw("WHERE")?;
                let where_ = p.parse_group()?;
                ops.push(UpdateOp::Modify { delete, insert, where_ });
            }
        } else {
            return Err(SparqlError::new(format!(
                "expected INSERT or DELETE, got {:?}",
                p.peek()
            )));
        }
        // operations chain with ';'
        if !p.eat_punct(";") {
            break;
        }
        if p.peek().is_none() {
            break;
        }
        p.parse_prologue()?; // each op may re-declare prefixes
    }
    if p.pos != p.toks.len() {
        return Err(SparqlError::new("trailing tokens after update request"));
    }
    Ok(ops)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
    synth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SparqlError::new(format!("expected {kw}, got {:?}", self.peek())))
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Some(Token::Punct(q)) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), SparqlError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(SparqlError::new(format!("expected '{p}', got {:?}", self.peek())))
        }
    }

    fn fresh_alias(&mut self, hint: &str) -> String {
        self.synth += 1;
        format!("{}_{}", hint, self.synth)
    }

    // ---- prologue ---------------------------------------------------------

    fn parse_prologue(&mut self) -> Result<(), SparqlError> {
        loop {
            if self.eat_kw("PREFIX") {
                let (pfx, local) = match self.bump() {
                    Some(Token::PName(p, l)) => (p, l),
                    other => {
                        return Err(SparqlError::new(format!("expected prefix name, got {other:?}")))
                    }
                };
                if !local.is_empty() {
                    return Err(SparqlError::new("prefix declaration must end with ':'"));
                }
                match self.bump() {
                    Some(Token::IriRef(iri)) => {
                        self.prefixes.insert(pfx, iri);
                    }
                    other => {
                        return Err(SparqlError::new(format!("expected IRI, got {other:?}")))
                    }
                }
            } else if self.eat_kw("BASE") {
                let _ = self.bump();
            } else {
                return Ok(());
            }
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(SparqlError::new(format!("undeclared prefix '{prefix}:'"))),
        }
    }

    // ---- SELECT -----------------------------------------------------------

    fn parse_select(&mut self) -> Result<SelectQuery, SparqlError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let _ = self.eat_kw("REDUCED");
        let projection = self.parse_projection()?;
        let _ = self.eat_kw("WHERE");
        let where_ = self.parse_group()?;

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        if let Some(Token::Var(v)) = self.bump() {
                            group_by.push(Expr::Var(v));
                        }
                    }
                    Some(Token::Punct("(")) => {
                        self.bump();
                        let e = self.parse_expr()?;
                        // optional AS alias is tolerated and ignored here
                        if self.eat_kw("AS") {
                            let _ = self.bump();
                        }
                        self.expect_punct(")")?;
                        group_by.push(e);
                    }
                    Some(Token::Word(w)) if self.is_call_start(w) => {
                        let e = self.parse_primary()?;
                        group_by.push(e);
                    }
                    _ => break,
                }
                if !matches!(
                    self.peek(),
                    Some(Token::Var(_)) | Some(Token::Punct("(")) | Some(Token::Word(_))
                ) {
                    break;
                }
                // a Word could also start HAVING/ORDER/LIMIT — stop on those
                if self.peek_kw("HAVING")
                    || self.peek_kw("ORDER")
                    || self.peek_kw("LIMIT")
                    || self.peek_kw("OFFSET")
                {
                    break;
                }
            }
        }

        let having = if self.eat_kw("HAVING") {
            // HAVING (expr) — parens required by the grammar but we accept bare
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                if self.eat_kw("DESC") {
                    self.expect_punct("(")?;
                    let e = self.parse_expr()?;
                    self.expect_punct(")")?;
                    order_by.push(OrderSpec { expr: e, descending: true });
                } else if self.eat_kw("ASC") {
                    self.expect_punct("(")?;
                    let e = self.parse_expr()?;
                    self.expect_punct(")")?;
                    order_by.push(OrderSpec { expr: e, descending: false });
                } else {
                    match self.peek() {
                        Some(Token::Var(_)) => {
                            if let Some(Token::Var(v)) = self.bump() {
                                order_by.push(OrderSpec { expr: Expr::Var(v), descending: false });
                            }
                        }
                        Some(Token::Punct("(")) => {
                            self.bump();
                            let e = self.parse_expr()?;
                            self.expect_punct(")")?;
                            order_by.push(OrderSpec { expr: e, descending: false });
                        }
                        _ => break,
                    }
                }
                // stop unless another order condition follows
                let more = matches!(self.peek(), Some(Token::Var(_)) | Some(Token::Punct("(")))
                    || self.peek_kw("DESC")
                    || self.peek_kw("ASC");
                if !more {
                    break;
                }
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("LIMIT") {
                limit = Some(self.parse_usize()?);
            } else if self.eat_kw("OFFSET") {
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }

        Ok(SelectQuery { distinct, projection, where_, group_by, having, order_by, limit, offset })
    }

    fn parse_usize(&mut self) -> Result<usize, SparqlError> {
        match self.bump() {
            Some(Token::Number(n)) => n
                .parse::<usize>()
                .map_err(|_| SparqlError::new(format!("invalid count {n}"))),
            other => Err(SparqlError::new(format!("expected number, got {other:?}"))),
        }
    }

    fn is_call_start(&self, word: &str) -> bool {
        // a word starts a call if followed by '('
        let _ = word;
        matches!(self.peek2(), Some(Token::Punct("(")))
    }

    fn parse_projection(&mut self) -> Result<Projection, SparqlError> {
        if self.eat_punct("*") {
            return Ok(Projection::Star);
        }
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Var(_)) => {
                    if let Some(Token::Var(v)) = self.bump() {
                        items.push(SelectItem { expr: Expr::Var(v.clone()), alias: v });
                    }
                }
                Some(Token::Punct("(")) => {
                    self.bump();
                    let expr = self.parse_expr()?;
                    let alias = if self.eat_kw("AS") {
                        match self.bump() {
                            Some(Token::Var(v)) => v,
                            other => {
                                return Err(SparqlError::new(format!(
                                    "expected variable after AS, got {other:?}"
                                )))
                            }
                        }
                    } else {
                        self.fresh_alias("expr")
                    };
                    self.expect_punct(")")?;
                    items.push(SelectItem { expr, alias });
                }
                // relaxed: bare aggregate/builtin call `SUM(?x)` without parens
                Some(Token::Word(w)) if !w.eq_ignore_ascii_case("WHERE") && self.is_call_start(w) => {
                    let expr = self.parse_primary()?;
                    let alias = self.fresh_alias("agg");
                    items.push(SelectItem { expr, alias });
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(SparqlError::new("empty projection"));
        }
        Ok(Projection::Items(items))
    }

    // ---- CONSTRUCT --------------------------------------------------------

    fn parse_construct(&mut self) -> Result<QueryForm, SparqlError> {
        self.expect_kw("CONSTRUCT")?;
        self.expect_punct("{")?;
        let mut template = Vec::new();
        while !matches!(self.peek(), Some(Token::Punct("}"))) {
            template.extend(self.parse_triples_same_subject()?);
            let _ = self.eat_punct(".");
        }
        self.expect_punct("}")?;
        let _ = self.eat_kw("WHERE");
        let where_ = self.parse_group()?;
        Ok(QueryForm::Construct { template, where_ })
    }

    // ---- update helpers -----------------------------------------------------

    /// `{ triple patterns }` used as an insert/delete template.
    fn parse_template(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !matches!(self.peek(), Some(Token::Punct("}"))) {
            out.extend(self.parse_triples_same_subject()?);
            let _ = self.eat_punct(".");
        }
        self.expect_punct("}")?;
        Ok(out)
    }

    /// `{ ground triples }` for INSERT/DELETE DATA — variables are an error.
    fn parse_ground_triples(&mut self) -> Result<Vec<rdfa_model::Triple>, SparqlError> {
        let template = self.parse_template()?;
        template
            .into_iter()
            .map(|tp| {
                let s = match tp.subject {
                    TermPattern::Term(t) => t,
                    TermPattern::Var(v) => {
                        return Err(SparqlError::new(format!("variable ?{v} in ground data")))
                    }
                };
                let p = match tp.predicate {
                    PathOrVar::Path(PropertyPath::Iri(iri)) => Term::iri(iri),
                    other => {
                        return Err(SparqlError::new(format!(
                            "predicate must be an IRI in ground data, got {other:?}"
                        )))
                    }
                };
                let o = match tp.object {
                    TermPattern::Term(t) => t,
                    TermPattern::Var(v) => {
                        return Err(SparqlError::new(format!("variable ?{v} in ground data")))
                    }
                };
                Ok(rdfa_model::Triple::new(s, p, o))
            })
            .collect()
    }

    // ---- group graph pattern ---------------------------------------------

    fn parse_group(&mut self) -> Result<GroupPattern, SparqlError> {
        self.expect_punct("{")?;
        let mut elements = Vec::new();
        loop {
            match self.peek() {
                None => return Err(SparqlError::new("unterminated group pattern")),
                Some(Token::Punct("}")) => {
                    self.bump();
                    break;
                }
                Some(Token::Punct("{")) => {
                    // nested group, possibly a UNION chain
                    let first = self.parse_group()?;
                    if self.peek_kw("UNION") {
                        let mut arms = vec![first];
                        while self.eat_kw("UNION") {
                            arms.push(self.parse_group()?);
                        }
                        elements.push(PatternElement::Union(arms));
                    } else if first.elements.len() == 1
                        && matches!(first.elements[0], PatternElement::SubSelect(_))
                    {
                        // unwrap `{ SELECT … }` so sub-selects appear directly
                        elements.push(first.elements.into_iter().next().unwrap());
                    } else {
                        elements.push(PatternElement::Group(first));
                    }
                    let _ = self.eat_punct(".");
                }
                Some(t) if t.is_kw("FILTER") => {
                    self.bump();
                    // FILTER(expr) or FILTER builtin(...)
                    let e = if self.eat_punct("(") {
                        let e = self.parse_expr()?;
                        self.expect_punct(")")?;
                        e
                    } else {
                        self.parse_primary()?
                    };
                    elements.push(PatternElement::Filter(e));
                    let _ = self.eat_punct(".");
                }
                Some(t) if t.is_kw("OPTIONAL") => {
                    self.bump();
                    let g = self.parse_group()?;
                    elements.push(PatternElement::Optional(g));
                    let _ = self.eat_punct(".");
                }
                Some(t) if t.is_kw("BIND") => {
                    self.bump();
                    self.expect_punct("(")?;
                    let e = self.parse_expr()?;
                    self.expect_kw("AS")?;
                    let v = match self.bump() {
                        Some(Token::Var(v)) => v,
                        other => {
                            return Err(SparqlError::new(format!(
                                "expected variable after AS, got {other:?}"
                            )))
                        }
                    };
                    self.expect_punct(")")?;
                    elements.push(PatternElement::Bind(e, v));
                    let _ = self.eat_punct(".");
                }
                Some(t) if t.is_kw("MINUS") => {
                    self.bump();
                    let g = self.parse_group()?;
                    elements.push(PatternElement::Minus(g));
                    let _ = self.eat_punct(".");
                }
                Some(t) if t.is_kw("VALUES") => {
                    self.bump();
                    elements.push(self.parse_values()?);
                    let _ = self.eat_punct(".");
                }
                Some(t) if t.is_kw("SELECT") => {
                    let sub = self.parse_select()?;
                    elements.push(PatternElement::SubSelect(Box::new(sub)));
                    let _ = self.eat_punct(".");
                }
                _ => {
                    let triples = self.parse_triples_same_subject()?;
                    elements.extend(triples.into_iter().map(PatternElement::Triple));
                    let _ = self.eat_punct(".");
                }
            }
        }
        Ok(GroupPattern { elements })
    }

    fn parse_values(&mut self) -> Result<PatternElement, SparqlError> {
        let mut vars = Vec::new();
        let multi = self.eat_punct("(");
        loop {
            match self.peek() {
                Some(Token::Var(_)) => {
                    if let Some(Token::Var(v)) = self.bump() {
                        vars.push(v);
                    }
                    if !multi {
                        break;
                    }
                }
                Some(Token::Punct(")")) if multi => {
                    self.bump();
                    break;
                }
                other => return Err(SparqlError::new(format!("bad VALUES vars: {other:?}"))),
            }
        }
        self.expect_punct("{")?;
        let mut rows = Vec::new();
        while !self.eat_punct("}") {
            if multi {
                self.expect_punct("(")?;
                let mut row = Vec::new();
                while !self.eat_punct(")") {
                    row.push(self.parse_values_term()?);
                }
                if row.len() != vars.len() {
                    return Err(SparqlError::new("VALUES row arity mismatch"));
                }
                rows.push(row);
            } else {
                rows.push(vec![self.parse_values_term()?]);
            }
        }
        Ok(PatternElement::Values(vars, rows))
    }

    fn parse_values_term(&mut self) -> Result<Option<Term>, SparqlError> {
        if self.peek_kw("UNDEF") {
            self.bump();
            return Ok(None);
        }
        let tp = self.parse_term_pattern()?;
        match tp {
            TermPattern::Term(t) => Ok(Some(t)),
            TermPattern::Var(_) => Err(SparqlError::new("variable not allowed in VALUES data")),
        }
    }

    // ---- triples ----------------------------------------------------------

    fn parse_triples_same_subject(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        let subject = self.parse_term_pattern()?;
        let mut out = Vec::new();
        loop {
            let predicate = self.parse_path_or_var()?;
            loop {
                let object = self.parse_term_pattern()?;
                out.push(TriplePattern {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
            if !self.eat_punct(";") {
                break;
            }
            // allow dangling ';' before '.'
            if matches!(self.peek(), Some(Token::Punct(".")) | Some(Token::Punct("}"))) {
                break;
            }
        }
        Ok(out)
    }

    fn parse_term_pattern(&mut self) -> Result<TermPattern, SparqlError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(TermPattern::Var(v)),
            Some(Token::IriRef(iri)) => Ok(TermPattern::Term(Term::iri(iri))),
            Some(Token::PName(p, l)) => {
                Ok(TermPattern::Term(Term::iri(self.resolve_pname(&p, &l)?)))
            }
            Some(Token::BlankNode(b)) => Ok(TermPattern::Term(Term::blank(b))),
            Some(Token::Str(s)) => Ok(TermPattern::Term(self.finish_string_literal(s)?)),
            Some(Token::Number(n)) => Ok(TermPattern::Term(number_literal(&n))),
            Some(Token::Word(w)) if w == "true" || w == "false" => {
                Ok(TermPattern::Term(Term::Literal(Literal::typed(w, xsd::BOOLEAN))))
            }
            Some(Token::Word(w)) if w == "a" => {
                Ok(TermPattern::Term(Term::iri(rdfa_model::vocab::rdf::TYPE)))
            }
            other => Err(SparqlError::new(format!("expected term, got {other:?}"))),
        }
    }

    fn finish_string_literal(&mut self, body: String) -> Result<Term, SparqlError> {
        match self.peek() {
            Some(Token::LangTag(_)) => {
                if let Some(Token::LangTag(lang)) = self.bump() {
                    Ok(Term::Literal(Literal::lang_string(body, lang)))
                } else {
                    unreachable!()
                }
            }
            Some(Token::DtSep) => {
                self.bump();
                let dt = match self.bump() {
                    Some(Token::IriRef(iri)) => iri,
                    Some(Token::PName(p, l)) => self.resolve_pname(&p, &l)?,
                    other => {
                        return Err(SparqlError::new(format!("expected datatype, got {other:?}")))
                    }
                };
                Ok(Term::Literal(Literal::typed(body, dt)))
            }
            _ => Ok(Term::string(body)),
        }
    }

    // ---- property paths ---------------------------------------------------

    fn parse_path_or_var(&mut self) -> Result<PathOrVar, SparqlError> {
        if let Some(Token::Var(_)) = self.peek() {
            if let Some(Token::Var(v)) = self.bump() {
                return Ok(PathOrVar::Var(v));
            }
            unreachable!()
        }
        Ok(PathOrVar::Path(self.parse_path_alt()?))
    }

    fn parse_path_alt(&mut self) -> Result<PropertyPath, SparqlError> {
        let mut left = self.parse_path_seq()?;
        while self.eat_punct("|") {
            let right = self.parse_path_seq()?;
            left = PropertyPath::Alternative(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_seq(&mut self) -> Result<PropertyPath, SparqlError> {
        let mut left = self.parse_path_elt()?;
        while self.eat_punct("/") {
            let right = self.parse_path_elt()?;
            left = PropertyPath::Sequence(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_path_elt(&mut self) -> Result<PropertyPath, SparqlError> {
        let inverse = self.eat_punct("^");
        let mut p = self.parse_path_primary()?;
        if inverse {
            p = PropertyPath::Inverse(Box::new(p));
        }
        if self.eat_punct("*") {
            p = PropertyPath::ZeroOrMore(Box::new(p));
        } else if self.eat_punct("+") {
            p = PropertyPath::OneOrMore(Box::new(p));
        } else if self.eat_punct("?") {
            p = PropertyPath::ZeroOrOne(Box::new(p));
        }
        Ok(p)
    }

    fn parse_path_primary(&mut self) -> Result<PropertyPath, SparqlError> {
        match self.bump() {
            Some(Token::IriRef(iri)) => Ok(PropertyPath::Iri(iri)),
            Some(Token::PName(p, l)) => Ok(PropertyPath::Iri(self.resolve_pname(&p, &l)?)),
            Some(Token::Word(w)) if w == "a" => {
                Ok(PropertyPath::Iri(rdfa_model::vocab::rdf::TYPE.to_owned()))
            }
            Some(Token::Punct("(")) => {
                let p = self.parse_path_alt()?;
                self.expect_punct(")")?;
                Ok(p)
            }
            other => Err(SparqlError::new(format!("expected path, got {other:?}"))),
        }
    }

    // ---- expressions -------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_and()?;
        while self.eat_punct("||") {
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_relational()?;
        while self.eat_punct("&&") {
            let right = self.parse_relational()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<Expr, SparqlError> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Some(Token::Punct("=")) => Some(CompareOp::Eq),
            Some(Token::Punct("!=")) => Some(CompareOp::Ne),
            Some(Token::Punct("<")) => Some(CompareOp::Lt),
            Some(Token::Punct("<=")) => Some(CompareOp::Le),
            Some(Token::Punct(">")) => Some(CompareOp::Gt),
            Some(Token::Punct(">=")) => Some(CompareOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.parse_additive()?;
            return Ok(Expr::Compare(Box::new(left), op, Box::new(right)));
        }
        if self.peek_kw("IN") {
            self.bump();
            let list = self.parse_expr_list()?;
            return Ok(Expr::In(Box::new(left), list, false));
        }
        if self.peek_kw("NOT") {
            self.bump();
            self.expect_kw("IN")?;
            let list = self.parse_expr_list()?;
            return Ok(Expr::In(Box::new(left), list, true));
        }
        Ok(left)
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>, SparqlError> {
        self.expect_punct("(")?;
        let mut list = Vec::new();
        if !self.eat_punct(")") {
            loop {
                list.push(self.parse_expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(list)
    }

    fn parse_additive(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat_punct("+") {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(Box::new(left), ArithOp::Add, Box::new(right));
            } else if self.eat_punct("-") {
                let right = self.parse_multiplicative()?;
                left = Expr::Arith(Box::new(left), ArithOp::Sub, Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat_punct("*") {
                let right = self.parse_unary()?;
                left = Expr::Arith(Box::new(left), ArithOp::Mul, Box::new(right));
            } else if self.eat_punct("/") {
                let right = self.parse_unary()?;
                left = Expr::Arith(Box::new(left), ArithOp::Div, Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_punct("+") {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek().cloned() {
            Some(Token::Punct("(")) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Token::Var(_)) => {
                if let Some(Token::Var(v)) = self.bump() {
                    Ok(Expr::Var(v))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Number(_)) => {
                if let Some(Token::Number(n)) = self.bump() {
                    Ok(Expr::Const(number_literal(&n)))
                } else {
                    unreachable!()
                }
            }
            Some(Token::Str(_)) => {
                if let Some(Token::Str(s)) = self.bump() {
                    Ok(Expr::Const(self.finish_string_literal(s)?))
                } else {
                    unreachable!()
                }
            }
            Some(Token::IriRef(iri)) => {
                self.bump();
                // IRI function call syntax (e.g. casting) is not supported;
                // a bare IRI is a constant.
                Ok(Expr::Const(Term::iri(iri)))
            }
            Some(Token::PName(p, l)) => {
                self.bump();
                Ok(Expr::Const(Term::iri(self.resolve_pname(&p, &l)?)))
            }
            Some(Token::Word(w)) => {
                if w == "true" || w == "false" {
                    self.bump();
                    return Ok(Expr::Const(Term::Literal(Literal::typed(w, xsd::BOOLEAN))));
                }
                // EXISTS { ... } / NOT EXISTS { ... }
                if w.eq_ignore_ascii_case("EXISTS") {
                    self.bump();
                    let g = self.parse_group()?;
                    return Ok(Expr::Exists(g, false));
                }
                if w.eq_ignore_ascii_case("NOT") && matches!(self.peek2(), Some(t) if t.is_kw("EXISTS"))
                {
                    self.bump();
                    self.bump();
                    let g = self.parse_group()?;
                    return Ok(Expr::Exists(g, true));
                }
                // aggregate?
                if let Some(op) = AggregateOp::from_keyword(&w) {
                    if matches!(self.peek2(), Some(Token::Punct("("))) {
                        self.bump();
                        self.expect_punct("(")?;
                        let distinct = self.eat_kw("DISTINCT");
                        if self.eat_punct("*") {
                            self.expect_punct(")")?;
                            return Ok(Expr::Aggregate(op, distinct, None));
                        }
                        let inner = self.parse_expr()?;
                        // GROUP_CONCAT separator clause: `; SEPARATOR = ","`
                        if self.eat_punct(";") {
                            let _ = self.eat_kw("SEPARATOR");
                            let _ = self.eat_punct("=");
                            let _ = self.bump();
                        }
                        self.expect_punct(")")?;
                        return Ok(Expr::Aggregate(op, distinct, Some(Box::new(inner))));
                    }
                }
                // generic builtin call
                if matches!(self.peek2(), Some(Token::Punct("("))) {
                    self.bump();
                    let args = self.parse_expr_list()?;
                    return Ok(Expr::Call(w.to_ascii_uppercase(), args));
                }
                Err(SparqlError::new(format!("unexpected word '{w}' in expression")))
            }
            other => Err(SparqlError::new(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

fn number_literal(lexical: &str) -> Term {
    if lexical.contains(['.', 'e', 'E']) {
        Term::Literal(Literal::typed(lexical, xsd::DECIMAL))
    } else {
        Term::Literal(Literal::typed(lexical, xsd::INTEGER))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(q: &str) -> SelectQuery {
        match parse_query(q).unwrap().form {
            QueryForm::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn parses_simple_group_by_query() {
        let q = select(
            r#"PREFIX ex: <http://ex.org/>
               SELECT ?m (AVG(?p) AS ?avg)
               WHERE { ?x ex:manufacturer ?m . ?x ex:price ?p . }
               GROUP BY ?m"#,
        );
        assert!(!q.distinct);
        assert_eq!(q.group_by, vec![Expr::Var("m".into())]);
        match &q.projection {
            Projection::Items(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].alias, "avg");
                assert!(items[1].expr.has_aggregate());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_paper_fig_1_3() {
        // the dissertation's flagship query, verbatim structure
        let q = select(
            r#"
            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            PREFIX ex: <http://www.ics.forth.gr/example#>
            SELECT ?m (AVG(?p) as ?avgprice)
            WHERE {
              ?s rdf:type ex:Laptop.
              ?s ex:manufacturer ?m.
              ?m ex:origin ex:USA.
              ?s ex:price ?p.
              ?s ex:USBPorts ?u.
              ?s ex:hardDrive ?hd.
              ?hd rdf:type ex:SSD.
              ?hd ex:manufacturer ?hdm.
              ?hdm ex:origin ?hdmc.
              ?hdmc ex:locatedAt ex:Asia.
              FILTER (?u >= 2).
              ?s ex:releaseDate ?rd .
              FILTER ( ?rd >= "2021-01-01T00:00:00"^^xsd:dateTime &&
                       ?rd <= "2021-12-31T00:00:00"^^xsd:dateTime)
            } GROUP BY ?m"#,
        );
        assert_eq!(q.group_by.len(), 1);
        let triples = q
            .where_
            .elements
            .iter()
            .filter(|e| matches!(e, PatternElement::Triple(_)))
            .count();
        assert_eq!(triples, 11);
        let filters = q
            .where_
            .elements
            .iter()
            .filter(|e| matches!(e, PatternElement::Filter(_)))
            .count();
        assert_eq!(filters, 2);
    }

    #[test]
    fn relaxed_bare_aggregate_projection() {
        let q = select("SELECT ?x2 SUM(?x3) WHERE { ?x1 <http://p> ?x2 . ?x1 <http://q> ?x3 . } GROUP BY ?x2");
        match &q.projection {
            Projection::Items(items) => {
                assert_eq!(items.len(), 2);
                assert!(items[1].expr.has_aggregate());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn group_by_builtin_call() {
        let q = select(
            "SELECT (MONTH(?d) AS ?m) (SUM(?q) AS ?t) WHERE { ?x <http://d> ?d ; <http://q> ?q . } GROUP BY MONTH(?d)",
        );
        assert_eq!(q.group_by.len(), 1);
        assert!(matches!(&q.group_by[0], Expr::Call(name, _) if name == "MONTH"));
    }

    #[test]
    fn having_and_order_and_limit() {
        let q = select(
            "SELECT ?b (SUM(?q) AS ?t) WHERE { ?x <http://b> ?b ; <http://q> ?q . } \
             GROUP BY ?b HAVING (SUM(?q) > 1000) ORDER BY DESC(?t) LIMIT 5 OFFSET 2",
        );
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, Some(2));
    }

    #[test]
    fn property_path_parsing() {
        let q = select(
            "PREFIX ex: <http://e/> SELECT ?o WHERE { ?s ex:a/ex:b ?m . ?m ^ex:c|ex:d* ?o . }",
        );
        let paths: Vec<_> = q
            .where_
            .elements
            .iter()
            .filter_map(|e| match e {
                PatternElement::Triple(t) => Some(&t.predicate),
                _ => None,
            })
            .collect();
        assert!(matches!(paths[0], PathOrVar::Path(PropertyPath::Sequence(..))));
        assert!(matches!(paths[1], PathOrVar::Path(PropertyPath::Alternative(..))));
    }

    #[test]
    fn optional_union_bind_values() {
        let q = select(
            r#"SELECT ?s WHERE {
                 ?s <http://p> ?o .
                 OPTIONAL { ?s <http://q> ?r . }
                 { ?s <http://t> ?u . } UNION { ?s <http://v> ?w . }
                 BIND(?o + 1 AS ?o2)
                 VALUES ?z { 1 2 UNDEF }
               }"#,
        );
        let kinds: Vec<_> = q.where_.elements.iter().map(std::mem::discriminant).collect();
        assert_eq!(kinds.len(), 5);
        assert!(q
            .where_
            .elements
            .iter()
            .any(|e| matches!(e, PatternElement::Values(v, rows) if v.len() == 1 && rows.len() == 3)));
    }

    #[test]
    fn subselect() {
        let q = select(
            "SELECT ?s WHERE { ?s <http://p> ?o . { SELECT ?o (COUNT(*) AS ?c) WHERE { ?x <http://q> ?o . } GROUP BY ?o } }",
        );
        assert!(q
            .where_
            .elements
            .iter()
            .any(|e| matches!(e, PatternElement::SubSelect(_))));
    }

    #[test]
    fn construct_form() {
        let q = parse_query(
            "PREFIX ex: <http://e/> CONSTRUCT { ?s ex:p2 ?o } WHERE { ?s ex:p ?o . }",
        )
        .unwrap();
        assert!(matches!(q.form, QueryForm::Construct { .. }));
    }

    #[test]
    fn ask_form() {
        let q = parse_query("ASK WHERE { ?s ?p ?o . }").unwrap();
        assert!(matches!(q.form, QueryForm::Ask(_)));
    }

    #[test]
    fn error_on_undeclared_prefix() {
        let e = parse_query("SELECT ?s WHERE { ?s ex:p ?o . }").unwrap_err();
        assert!(e.message().contains("undeclared prefix"));
    }

    #[test]
    fn distinct_and_count_star() {
        let q = select("SELECT DISTINCT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }");
        assert!(q.distinct);
        match &q.projection {
            Projection::Items(items) => {
                assert!(matches!(items[0].expr, Expr::Aggregate(AggregateOp::Count, false, None)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn not_in_expression() {
        let q = select("SELECT ?s WHERE { ?s <http://p> ?o . FILTER(?o NOT IN (1, 2)) }");
        let f = q
            .where_
            .elements
            .iter()
            .find_map(|e| match e {
                PatternElement::Filter(f) => Some(f),
                _ => None,
            })
            .unwrap();
        assert!(matches!(f, Expr::In(_, list, true) if list.len() == 2));
    }
}
