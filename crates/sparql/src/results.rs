//! Query result types returned at the public API boundary, with text,
//! CSV, and W3C SPARQL-JSON serializations.

use rdfa_model::{vocab::xsd, Graph, Literal, Term, Value};

/// A solution sequence: named columns plus rows of optional terms
/// (`None` = unbound, e.g. under `OPTIONAL`).
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    #[deprecated(since = "0.4.0", note = "use `vars()` instead of poking the field")]
    pub vars: Vec<String>,
    #[deprecated(
        since = "0.4.0",
        note = "use `rows()` / `into_rows()` instead of poking the field"
    )]
    pub rows: Vec<Vec<Option<Term>>>,
}

#[allow(deprecated)] // the accessors are the blessed path to the fields
impl Solutions {
    /// Build a solution table from column names and rows.
    pub fn new(vars: Vec<String>, rows: Vec<Vec<Option<Term>>>) -> Self {
        Solutions { vars, rows }
    }

    /// The projected variable names, in column order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The solution rows (one `Option<Term>` per column; `None` = unbound).
    pub fn rows(&self) -> &[Vec<Option<Term>>] {
        &self.rows
    }

    /// Consume into the row set without cloning.
    pub fn into_rows(self) -> Vec<Vec<Option<Term>>> {
        self.rows
    }

    /// Number of solution rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the solution sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Iterate one column as terms (unbound cells skipped).
    pub fn column<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Term> + 'a {
        let idx = self.var_index(name);
        self.rows
            .iter()
            .filter_map(move |row| idx.and_then(|i| row[i].as_ref()))
    }

    /// Interpret one column as typed values.
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        self.column(name).map(Value::from_term).collect()
    }

    /// Render as a plain-text table (used by examples and tests).
    /// Column widths are measured in characters, not bytes, so non-ASCII
    /// IRIs and literals stay aligned.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.chars().count() + 1).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.as_ref().map(|t| t.display_name()).unwrap_or_default();
                        widths[i] = widths[i].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", format!("?{v}"), w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.vars.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// RFC-4180 field quoting for the SPARQL CSV results format.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// JSON string escaping (quotes included in the output).
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One term in the W3C SPARQL-JSON binding shape.
fn term_json(t: &Term) -> String {
    match t {
        Term::Iri(iri) => format!("{{\"type\":\"uri\",\"value\":{}}}", js(iri)),
        Term::Blank(b) => format!("{{\"type\":\"bnode\",\"value\":{}}}", js(b)),
        Term::Literal(Literal { lexical, datatype, lang: Some(lang) }) => {
            let _ = datatype;
            format!("{{\"type\":\"literal\",\"xml:lang\":{},\"value\":{}}}", js(lang), js(lexical))
        }
        Term::Literal(Literal { lexical, datatype, lang: None }) => {
            if datatype == xsd::STRING {
                format!("{{\"type\":\"literal\",\"value\":{}}}", js(lexical))
            } else {
                format!(
                    "{{\"type\":\"literal\",\"datatype\":{},\"value\":{}}}",
                    js(datatype),
                    js(lexical)
                )
            }
        }
    }
}

#[allow(deprecated)]
impl Solutions {
    /// Serialize per the SPARQL 1.1 CSV results format: a header of bare
    /// variable names, then value rows (IRIs bare, literal lexical forms,
    /// RFC-4180 quoting, CRLF line endings).
    pub fn to_csv(&self) -> String {
        let mut out = Vec::with_capacity(64 * self.rows.len().max(1));
        self.write_csv(&mut out).expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("CSV serialization is UTF-8")
    }

    /// Stream the SPARQL 1.1 CSV serialization row by row into `out`.
    /// Memory stays bounded by one row regardless of result size — this is
    /// what the server's chunked-transfer path calls, so a `LIMIT`-less
    /// SELECT never builds a whole-body `String`.
    pub fn write_csv(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let header = self.vars.iter().map(|v| csv_field(v)).collect::<Vec<_>>().join(",");
        out.write_all(header.as_bytes())?;
        out.write_all(b"\r\n")?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                let cell = match c {
                    None => String::new(),
                    Some(Term::Iri(iri)) => csv_field(iri),
                    Some(Term::Blank(b)) => csv_field(&format!("_:{b}")),
                    Some(Term::Literal(l)) => csv_field(&l.lexical),
                };
                out.write_all(cell.as_bytes())?;
            }
            out.write_all(b"\r\n")?;
        }
        Ok(())
    }

    /// Serialize per the W3C "SPARQL 1.1 Query Results JSON Format":
    /// `{"head":{"vars":[…]},"results":{"bindings":[…]}}`.
    pub fn to_json(&self) -> String {
        let mut out = Vec::with_capacity(128 * self.rows.len().max(1));
        self.write_json(&mut out).expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSON serialization is UTF-8")
    }

    /// Stream the W3C SPARQL-JSON serialization binding by binding into
    /// `out`; the streaming counterpart of [`Solutions::to_json`].
    pub fn write_json(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let head = self.vars.iter().map(|v| js(v)).collect::<Vec<_>>().join(",");
        write!(out, "{{\"head\":{{\"vars\":[{head}]}},\"results\":{{\"bindings\":[")?;
        for (r, row) in self.rows.iter().enumerate() {
            if r > 0 {
                out.write_all(b",")?;
            }
            out.write_all(b"{")?;
            let mut first = true;
            for (v, c) in self.vars.iter().zip(row) {
                if let Some(t) = c {
                    if !first {
                        out.write_all(b",")?;
                    }
                    first = false;
                    write!(out, "{}:{}", js(v), term_json(t))?;
                }
            }
            out.write_all(b"}")?;
        }
        out.write_all(b"]}}")
    }
}

/// The result of a query: a solution table, a constructed graph, or a boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    Solutions(Solutions),
    Graph(Graph),
    Boolean(bool),
}

impl QueryResults {
    /// The solutions, if this was a SELECT.
    pub fn solutions(&self) -> Option<&Solutions> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            _ => None,
        }
    }

    /// Consume into solutions.
    pub fn into_solutions(self) -> Option<Solutions> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            _ => None,
        }
    }

    /// The constructed graph, if this was a CONSTRUCT.
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            QueryResults::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// The boolean, if this was an ASK.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_format() {
        let s = Solutions::new(
            vec!["m".into(), "n".into()],
            vec![
                vec![Some(Term::iri("http://e/DELL")), Some(Term::integer(2))],
                vec![Some(Term::string("a,b")), None],
            ],
        );
        let csv = s.to_csv();
        // SPARQL 1.1 CSV results require CRLF line endings (header and rows)
        assert_eq!(csv, "m,n\r\nhttp://e/DELL,2\r\n\"a,b\",\r\n");
    }

    #[test]
    fn csv_quoting_survives_embedded_newlines() {
        let s = Solutions::new(
            vec!["x".into()],
            vec![vec![Some(Term::string("line1\nline2"))], vec![Some(Term::string("say \"hi\""))]],
        );
        let csv = s.to_csv();
        assert_eq!(csv, "x\r\n\"line1\nline2\"\r\n\"say \"\"hi\"\"\"\r\n");
    }

    #[test]
    fn streaming_writers_match_string_serializers() {
        let s = Solutions::new(
            vec!["m".into(), "n".into()],
            vec![
                vec![Some(Term::iri("http://e/DELL")), Some(Term::integer(2))],
                vec![Some(Term::string("a,b")), None],
                vec![Some(Term::Literal(Literal::lang_string("héllo", "en"))), None],
            ],
        );
        let mut csv = Vec::new();
        s.write_csv(&mut csv).unwrap();
        assert_eq!(String::from_utf8(csv).unwrap(), s.to_csv());
        let mut json = Vec::new();
        s.write_json(&mut json).unwrap();
        assert_eq!(String::from_utf8(json).unwrap(), s.to_json());
    }

    #[test]
    fn json_format_matches_w3c_shape() {
        let s = Solutions::new(
            vec!["x".into()],
            vec![
                vec![Some(Term::iri("http://e/a"))],
                vec![Some(Term::integer(5))],
                vec![Some(Term::Literal(crate::results::Literal::lang_string("hi", "en")))],
                vec![None],
            ],
        );
        let json = s.to_json();
        assert!(json.starts_with("{\"head\":{\"vars\":[\"x\"]}"));
        assert!(json.contains("\"type\":\"uri\",\"value\":\"http://e/a\""));
        assert!(json.contains("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""));
        assert!(json.contains("\"xml:lang\":\"en\""));
        // unbound row serializes as an empty binding object
        assert!(json.contains("{}"));
    }

    #[test]
    fn json_escapes_control_characters() {
        let s = Solutions::new(vec!["x".into()], vec![vec![Some(Term::string("a\"b\\c\nd"))]]);
        let json = s.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn table_rendering_and_columns() {
        let s = Solutions::new(
            vec!["m".into(), "avg".into()],
            vec![
                vec![Some(Term::iri("http://e/DELL")), Some(Term::decimal(950.0))],
                vec![Some(Term::iri("http://e/ACER")), None],
            ],
        );
        let t = s.to_table();
        assert!(t.contains("?m"));
        assert!(t.contains("DELL"));
        assert_eq!(s.column("m").count(), 2);
        assert_eq!(s.column("avg").count(), 1);
        assert_eq!(s.column_values("avg"), vec![Value::Float(950.0)]);
    }
}
