//! Query result types returned at the public API boundary, with text,
//! CSV, and W3C SPARQL-JSON serializations.

use rdfa_model::{vocab::xsd, Graph, Literal, Term, Value};

/// A solution sequence: named columns plus rows of optional terms
/// (`None` = unbound, e.g. under `OPTIONAL`).
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    #[deprecated(since = "0.4.0", note = "use `vars()` instead of poking the field")]
    pub vars: Vec<String>,
    #[deprecated(
        since = "0.4.0",
        note = "use `rows()` / `into_rows()` instead of poking the field"
    )]
    pub rows: Vec<Vec<Option<Term>>>,
}

#[allow(deprecated)] // the accessors are the blessed path to the fields
impl Solutions {
    /// Build a solution table from column names and rows.
    pub fn new(vars: Vec<String>, rows: Vec<Vec<Option<Term>>>) -> Self {
        Solutions { vars, rows }
    }

    /// The projected variable names, in column order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// The solution rows (one `Option<Term>` per column; `None` = unbound).
    pub fn rows(&self) -> &[Vec<Option<Term>>] {
        &self.rows
    }

    /// Consume into the row set without cloning.
    pub fn into_rows(self) -> Vec<Vec<Option<Term>>> {
        self.rows
    }

    /// Number of solution rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the solution sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// Iterate one column as terms (unbound cells skipped).
    pub fn column<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Term> + 'a {
        let idx = self.var_index(name);
        self.rows
            .iter()
            .filter_map(move |row| idx.and_then(|i| row[i].as_ref()))
    }

    /// Interpret one column as typed values.
    pub fn column_values(&self, name: &str) -> Vec<Value> {
        self.column(name).map(Value::from_term).collect()
    }

    /// Render as a plain-text table (used by examples and tests).
    /// Column widths are measured in characters, not bytes, so non-ASCII
    /// IRIs and literals stay aligned.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.chars().count() + 1).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let s = c.as_ref().map(|t| t.display_name()).unwrap_or_default();
                        widths[i] = widths[i].max(s.chars().count());
                        s
                    })
                    .collect()
            })
            .collect();
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", format!("?{v}"), w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.vars.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

#[allow(deprecated)]
impl Solutions {
    /// Serialize per the SPARQL 1.1 CSV results format: a header of bare
    /// variable names, then value rows (IRIs bare, literal lexical forms,
    /// RFC-4180 quoting).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = self.vars.iter().map(|v| field(v)).collect::<Vec<_>>().join(",");
        out.push('\n');
        for row in &self.rows {
            let line = row
                .iter()
                .map(|c| match c {
                    None => String::new(),
                    Some(Term::Iri(iri)) => field(iri),
                    Some(Term::Blank(b)) => field(&format!("_:{b}")),
                    Some(Term::Literal(l)) => field(&l.lexical),
                })
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Serialize per the W3C "SPARQL 1.1 Query Results JSON Format":
    /// `{"head":{"vars":[…]},"results":{"bindings":[…]}}`.
    pub fn to_json(&self) -> String {
        fn js(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn term_json(t: &Term) -> String {
            match t {
                Term::Iri(iri) => format!("{{\"type\":\"uri\",\"value\":{}}}", js(iri)),
                Term::Blank(b) => format!("{{\"type\":\"bnode\",\"value\":{}}}", js(b)),
                Term::Literal(Literal { lexical, datatype, lang: Some(lang) }) => {
                    let _ = datatype;
                    format!(
                        "{{\"type\":\"literal\",\"xml:lang\":{},\"value\":{}}}",
                        js(lang),
                        js(lexical)
                    )
                }
                Term::Literal(Literal { lexical, datatype, lang: None }) => {
                    if datatype == xsd::STRING {
                        format!("{{\"type\":\"literal\",\"value\":{}}}", js(lexical))
                    } else {
                        format!(
                            "{{\"type\":\"literal\",\"datatype\":{},\"value\":{}}}",
                            js(datatype),
                            js(lexical)
                        )
                    }
                }
            }
        }
        let head = self.vars.iter().map(|v| js(v)).collect::<Vec<_>>().join(",");
        let bindings = self
            .rows
            .iter()
            .map(|row| {
                let cells = self
                    .vars
                    .iter()
                    .zip(row)
                    .filter_map(|(v, c)| c.as_ref().map(|t| format!("{}:{}", js(v), term_json(t))))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{{cells}}}")
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"head\":{{\"vars\":[{head}]}},\"results\":{{\"bindings\":[{bindings}]}}}}")
    }
}

/// The result of a query: a solution table, a constructed graph, or a boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResults {
    Solutions(Solutions),
    Graph(Graph),
    Boolean(bool),
}

impl QueryResults {
    /// The solutions, if this was a SELECT.
    pub fn solutions(&self) -> Option<&Solutions> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            _ => None,
        }
    }

    /// Consume into solutions.
    pub fn into_solutions(self) -> Option<Solutions> {
        match self {
            QueryResults::Solutions(s) => Some(s),
            _ => None,
        }
    }

    /// The constructed graph, if this was a CONSTRUCT.
    pub fn graph(&self) -> Option<&Graph> {
        match self {
            QueryResults::Graph(g) => Some(g),
            _ => None,
        }
    }

    /// The boolean, if this was an ASK.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_format() {
        let s = Solutions::new(
            vec!["m".into(), "n".into()],
            vec![
                vec![Some(Term::iri("http://e/DELL")), Some(Term::integer(2))],
                vec![Some(Term::string("a,b")), None],
            ],
        );
        let csv = s.to_csv();
        assert_eq!(csv, "m,n\nhttp://e/DELL,2\n\"a,b\",\n");
    }

    #[test]
    fn json_format_matches_w3c_shape() {
        let s = Solutions::new(
            vec!["x".into()],
            vec![
                vec![Some(Term::iri("http://e/a"))],
                vec![Some(Term::integer(5))],
                vec![Some(Term::Literal(crate::results::Literal::lang_string("hi", "en")))],
                vec![None],
            ],
        );
        let json = s.to_json();
        assert!(json.starts_with("{\"head\":{\"vars\":[\"x\"]}"));
        assert!(json.contains("\"type\":\"uri\",\"value\":\"http://e/a\""));
        assert!(json.contains("\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\""));
        assert!(json.contains("\"xml:lang\":\"en\""));
        // unbound row serializes as an empty binding object
        assert!(json.contains("{}"));
    }

    #[test]
    fn json_escapes_control_characters() {
        let s = Solutions::new(vec!["x".into()], vec![vec![Some(Term::string("a\"b\\c\nd"))]]);
        let json = s.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn table_rendering_and_columns() {
        let s = Solutions::new(
            vec!["m".into(), "avg".into()],
            vec![
                vec![Some(Term::iri("http://e/DELL")), Some(Term::decimal(950.0))],
                vec![Some(Term::iri("http://e/ACER")), None],
            ],
        );
        let t = s.to_table();
        assert!(t.contains("?m"));
        assert!(t.contains("DELL"));
        assert_eq!(s.column("m").count(), 2);
        assert_eq!(s.column("avg").count(), 1);
        assert_eq!(s.column_values("avg"), vec![Value::Float(950.0)]);
    }
}
