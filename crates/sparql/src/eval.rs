//! Bottom-up evaluation of the SPARQL algebra over the store.
//!
//! Bindings are rows of [`Bound`] slots indexed by a per-query [`Frame`].
//! Basic graph patterns are evaluated by index nested-loop joins; a greedy
//! selectivity heuristic reorders patterns unless disabled (the join-order
//! ablation of DESIGN.md).

use crate::ast::*;
use crate::expr::{bound_term, eval_expr_limited};
use crate::limits::{EvalLimits, LimitGuard};
use crate::path::eval_path_limited;
use crate::results::Solutions;
use crate::SparqlError;
use rdfa_model::{Graph, Term, Value};
use rdfa_store::{Store, TermId};
use std::collections::HashMap;
use std::rc::Rc;

/// A bound value: an interned term or a computed (owned) term.
#[derive(Debug, Clone)]
pub enum Bound {
    Id(TermId),
    Term(Term),
}

/// One solution row: a slot per frame variable.
pub type Row = Vec<Option<Bound>>;

/// Estimated materialization cost of one row, charged against
/// [`EvalLimits::max_memory_bytes`]. Slot-count based (owned `Term`s in
/// computed bindings are not measured) — cheap, and proportional to what a
/// cartesian blow-up actually allocates.
pub(crate) fn row_cost(width: usize) -> u64 {
    (std::mem::size_of::<Row>() + width * std::mem::size_of::<Option<Bound>>()) as u64
}

/// The variable frame of one (sub)query scope.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    names: Vec<String>,
}

impl Frame {
    /// Build a frame over the given variable names.
    pub fn new(names: Vec<String>) -> Self {
        Frame { names }
    }

    /// Slot index of a variable.
    pub fn index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the frame has no variables.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The variable names in slot order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    fn add(&mut self, name: &str) {
        if !self.names.iter().any(|n| n == name) {
            self.names.push(name.to_owned());
        }
    }
}

/// Which execution engine runs `SELECT` queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile to a physical plan over interned ids ([`crate::plan`]),
    /// falling back to the term-space evaluator for unsupported constructs.
    #[default]
    IdSpace,
    /// Always use the term-space row-at-a-time evaluator.
    TermSpace,
}

/// Evaluation options (the ablation switches plus resource budgets).
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Reorder BGP patterns by estimated selectivity (default true).
    pub reorder_bgp: bool,
    /// Cooperative resource limits (default: unlimited).
    pub limits: EvalLimits,
    /// Execution engine for `SELECT` queries (default: ID space).
    pub execution: ExecMode,
    /// Worker threads for parallel hash aggregation; `0` = use
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder_bgp: true,
            limits: EvalLimits::unlimited(),
            execution: ExecMode::IdSpace,
            threads: 0,
        }
    }
}

/// The evaluator: borrows the store for the duration of a query.
pub struct Evaluator<'s> {
    store: &'s Store,
    options: EvalOptions,
    /// Shared budget: every sub-evaluation (EXISTS, subqueries) draws from
    /// the same guard, so nesting cannot multiply the budget.
    guard: Rc<LimitGuard>,
}

impl<'s> Evaluator<'s> {
    /// Create an evaluator with default options.
    pub fn new(store: &'s Store) -> Self {
        Self::with_options(store, EvalOptions::default())
    }

    /// Create an evaluator with explicit options. The limit clock starts
    /// here, so construct the evaluator right before running the query.
    pub fn with_options(store: &'s Store, options: EvalOptions) -> Self {
        let guard = Rc::new(LimitGuard::new(options.limits.clone()));
        Evaluator { store, options, guard }
    }

    /// An evaluator sharing an existing guard (EXISTS sub-evaluations).
    pub(crate) fn with_guard(store: &'s Store, guard: Rc<LimitGuard>) -> Self {
        Evaluator { store, options: EvalOptions { limits: guard.limits(), ..Default::default() }, guard }
    }

    /// The guard in force (elapsed time, row/visit counters).
    pub fn guard(&self) -> &LimitGuard {
        &self.guard
    }

    // ---- frames ------------------------------------------------------------

    /// Collect every variable occurring in a group pattern (and nested ones).
    pub(crate) fn collect_vars(group: &GroupPattern, frame: &mut Frame) {
        for el in &group.elements {
            match el {
                PatternElement::Triple(t) => {
                    if let TermPattern::Var(v) = &t.subject {
                        frame.add(v);
                    }
                    if let PathOrVar::Var(v) = &t.predicate {
                        frame.add(v);
                    }
                    if let TermPattern::Var(v) = &t.object {
                        frame.add(v);
                    }
                }
                PatternElement::Filter(e) => {
                    let mut vars = Vec::new();
                    e.variables(&mut vars);
                    for v in vars {
                        frame.add(&v);
                    }
                }
                PatternElement::Optional(g) | PatternElement::Group(g) => {
                    Self::collect_vars(g, frame);
                }
                PatternElement::Union(arms) => {
                    for arm in arms {
                        Self::collect_vars(arm, frame);
                    }
                }
                PatternElement::Bind(e, v) => {
                    let mut vars = Vec::new();
                    e.variables(&mut vars);
                    for v in vars {
                        frame.add(&v);
                    }
                    frame.add(v);
                }
                PatternElement::Values(vars, _) => {
                    for v in vars {
                        frame.add(v);
                    }
                }
                PatternElement::SubSelect(sub) => {
                    // only the sub-select's projected vars join the outer scope
                    for name in sub_projection_names(sub) {
                        frame.add(&name);
                    }
                }
                PatternElement::Minus(g) => {
                    // MINUS vars participate only for compatibility checks;
                    // registering them is harmless (slots stay unbound)
                    Self::collect_vars(g, frame);
                }
            }
        }
    }

    // ---- entry points ------------------------------------------------------

    /// Evaluate a SELECT query to a solution table.
    pub fn eval_select(&self, q: &SelectQuery) -> Result<Solutions, SparqlError> {
        let mut frame = Frame::default();
        Self::collect_vars(&q.where_, &mut frame);
        let rows = self.eval_group(&q.where_, &frame, vec![vec![None; frame.len()]])?;
        self.finish_select(q, &frame, rows)
    }

    /// Evaluate a CONSTRUCT query to a graph.
    pub fn eval_construct(
        &self,
        template: &[TriplePattern],
        where_: &GroupPattern,
    ) -> Result<Graph, SparqlError> {
        let mut frame = Frame::default();
        Self::collect_vars(where_, &mut frame);
        let rows = self.eval_group(where_, &frame, vec![vec![None; frame.len()]])?;
        let mut graph = Graph::new();
        let mut blank_counter = 0usize;
        for row in &rows {
            let mut blank_map: HashMap<String, String> = HashMap::new();
            for tp in template {
                let s = self.instantiate(&tp.subject, row, &frame, &mut blank_map, &mut blank_counter);
                let p = match &tp.predicate {
                    PathOrVar::Var(v) => frame
                        .index(v)
                        .and_then(|i| row[i].as_ref())
                        .map(|b| bound_term(b, self.store).clone()),
                    PathOrVar::Path(PropertyPath::Iri(iri)) => Some(Term::iri(iri.clone())),
                    PathOrVar::Path(_) => None,
                };
                let o = self.instantiate(&tp.object, row, &frame, &mut blank_map, &mut blank_counter);
                if let (Some(s), Some(p), Some(o)) = (s, p, o) {
                    graph.add(s, p, o);
                }
            }
        }
        Ok(graph)
    }

    fn instantiate(
        &self,
        tp: &TermPattern,
        row: &Row,
        frame: &Frame,
        blank_map: &mut HashMap<String, String>,
        counter: &mut usize,
    ) -> Option<Term> {
        match tp {
            TermPattern::Var(v) => frame
                .index(v)
                .and_then(|i| row[i].as_ref())
                .map(|b| bound_term(b, self.store).clone()),
            TermPattern::Term(Term::Blank(label)) => {
                // fresh blank node per solution row, but stable within a row
                let name = blank_map.entry(label.clone()).or_insert_with(|| {
                    *counter += 1;
                    format!("c{counter}")
                });
                Some(Term::blank(name.clone()))
            }
            TermPattern::Term(t) => Some(t.clone()),
        }
    }

    /// Evaluate an ASK query.
    pub fn eval_ask(&self, where_: &GroupPattern) -> Result<bool, SparqlError> {
        let mut frame = Frame::default();
        Self::collect_vars(where_, &mut frame);
        let rows = self.eval_group(where_, &frame, vec![vec![None; frame.len()]])?;
        Ok(!rows.is_empty())
    }

    // ---- group evaluation ---------------------------------------------------

    /// Evaluate a group pattern, extending `input` rows. Filters are scoped
    /// to the whole group and applied at its end, per SPARQL semantics.
    pub(crate) fn eval_group(
        &self,
        group: &GroupPattern,
        frame: &Frame,
        input: Vec<Row>,
    ) -> Result<Vec<Row>, SparqlError> {
        let _depth = self.guard.enter()?;
        let mut rows = input;
        let mut filters: Vec<&Expr> = Vec::new();
        let mut i = 0;
        let els = &group.elements;
        while i < els.len() {
            match &els[i] {
                PatternElement::Triple(_) => {
                    // gather the maximal run of adjacent triples as one BGP
                    let mut bgp: Vec<&TriplePattern> = Vec::new();
                    while i < els.len() {
                        if let PatternElement::Triple(t) = &els[i] {
                            bgp.push(t);
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    rows = self.eval_bgp(&bgp, frame, rows)?;
                    continue;
                }
                PatternElement::Filter(e) => filters.push(e),
                PatternElement::Optional(g) => {
                    let mut next = Vec::with_capacity(rows.len());
                    for row in rows {
                        let extended = self.eval_group(g, frame, vec![row.clone()])?;
                        if extended.is_empty() {
                            next.push(row);
                        } else {
                            next.extend(extended);
                        }
                    }
                    rows = next;
                }
                PatternElement::Union(arms) => {
                    let mut next = Vec::new();
                    for arm in arms {
                        next.extend(self.eval_group(arm, frame, rows.clone())?);
                    }
                    rows = next;
                }
                PatternElement::Group(g) => {
                    rows = self.eval_group(g, frame, rows)?;
                }
                PatternElement::Bind(e, v) => {
                    let slot = frame
                        .index(v)
                        .ok_or_else(|| SparqlError::new(format!("unknown BIND var ?{v}")))?;
                    for row in &mut rows {
                        let val = eval_expr_limited(e, row, frame, self.store, &self.guard);
                        row[slot] = val.map(|v| Bound::Term(v.to_term()));
                    }
                    self.guard.surface()?;
                }
                PatternElement::Values(vars, data) => {
                    let slots: Vec<usize> = vars
                        .iter()
                        .map(|v| {
                            frame
                                .index(v)
                                .ok_or_else(|| SparqlError::new(format!("unknown VALUES var ?{v}")))
                        })
                        .collect::<Result<_, _>>()?;
                    let mut next = Vec::new();
                    for row in &rows {
                        'data: for tuple in data {
                            let mut candidate = row.clone();
                            for (slot, term) in slots.iter().zip(tuple) {
                                if let Some(term) = term {
                                    let new = Bound::Term(term.clone());
                                    match &candidate[*slot] {
                                        Some(existing) => {
                                            if !self.bound_eq(existing, &new) {
                                                continue 'data;
                                            }
                                        }
                                        None => candidate[*slot] = Some(new),
                                    }
                                }
                            }
                            self.guard.count_row_bytes(row_cost(candidate.len()))?;
                            next.push(candidate);
                        }
                    }
                    rows = next;
                }
                PatternElement::SubSelect(sub) => {
                    let solutions = self.eval_select(sub)?;
                    rows = self.join_solutions(rows, &solutions, frame)?;
                }
                PatternElement::Minus(g) => {
                    // evaluate the inner pattern bottom-up, then anti-join:
                    // drop rows compatible with an inner solution on at
                    // least one shared bound variable
                    let inner = self.eval_group(g, frame, vec![vec![None; frame.len()]])?;
                    rows.retain(|row| {
                        !inner.iter().any(|ir| {
                            let mut shared = false;
                            for (a, b) in row.iter().zip(ir.iter()) {
                                if let (Some(x), Some(y)) = (a, b) {
                                    if !self.bound_eq(x, y) {
                                        return false;
                                    }
                                    shared = true;
                                }
                            }
                            shared
                        })
                    });
                }
            }
            i += 1;
        }
        // apply the group's filters; a limit tripping inside a filter (e.g.
        // an expensive EXISTS) is recorded softly and surfaced here
        for f in filters {
            rows.retain(|row| {
                eval_expr_limited(f, row, frame, self.store, &self.guard)
                    .and_then(|v| v.effective_boolean())
                    .unwrap_or(false)
            });
            self.guard.surface()?;
        }
        Ok(rows)
    }

    fn bound_eq(&self, a: &Bound, b: &Bound) -> bool {
        match (a, b) {
            (Bound::Id(x), Bound::Id(y)) => x == y,
            _ => bound_term(a, self.store) == bound_term(b, self.store),
        }
    }

    fn join_solutions(
        &self,
        rows: Vec<Row>,
        sol: &Solutions,
        frame: &Frame,
    ) -> Result<Vec<Row>, SparqlError> {
        let shared: Vec<(usize, usize)> = sol
            .vars()
            .iter()
            .enumerate()
            .filter_map(|(j, v)| frame.index(v).map(|i| (i, j)))
            .collect();
        let mut out = Vec::new();
        for row in &rows {
            for sol_row in sol.rows() {
                let mut candidate = row.clone();
                let mut ok = true;
                for &(slot, j) in &shared {
                    if let Some(term) = &sol_row[j] {
                        let new = Bound::Term(term.clone());
                        match &candidate[slot] {
                            Some(existing) => {
                                if !self.bound_eq(existing, &new) {
                                    ok = false;
                                    break;
                                }
                            }
                            None => candidate[slot] = Some(new),
                        }
                    }
                }
                if ok {
                    self.guard.count_row_bytes(row_cost(candidate.len()))?;
                    out.push(candidate);
                }
            }
        }
        Ok(out)
    }

    // ---- BGP ---------------------------------------------------------------

    fn eval_bgp(
        &self,
        patterns: &[&TriplePattern],
        frame: &Frame,
        mut rows: Vec<Row>,
    ) -> Result<Vec<Row>, SparqlError> {
        let order = if self.options.reorder_bgp {
            self.plan_bgp(patterns, frame, &rows)
        } else {
            (0..patterns.len()).collect()
        };
        for idx in order {
            let tp = patterns[idx];
            let mut next = Vec::with_capacity(rows.len());
            for row in &rows {
                self.match_triple(tp, frame, row, &mut next)?;
            }
            rows = next;
            if rows.is_empty() {
                break;
            }
        }
        Ok(rows)
    }

    /// Public wrapper over the planner for EXPLAIN.
    pub fn plan_bgp_public(&self, patterns: &[&TriplePattern], frame: &Frame) -> Vec<usize> {
        self.plan_bgp(patterns, frame, &[])
    }

    /// Public wrapper over the estimator for EXPLAIN.
    pub fn estimate_public(&self, tp: &TriplePattern) -> f64 {
        self.estimate(tp)
    }

    /// Greedy join ordering: start from the most selective pattern, then
    /// repeatedly pick the cheapest pattern connected to the bound variables
    /// (a 100× bonus for connectedness avoids cartesian products).
    fn plan_bgp(&self, patterns: &[&TriplePattern], frame: &Frame, rows: &[Row]) -> Vec<usize> {
        // variables already bound in the incoming rows
        let mut bound_vars: Vec<bool> = vec![false; frame.len()];
        if let Some(first) = rows.first() {
            for (i, slot) in first.iter().enumerate() {
                if slot.is_some() {
                    bound_vars[i] = true;
                }
            }
        }
        let estimates: Vec<f64> = patterns.iter().map(|tp| self.estimate(tp)).collect();
        let pattern_vars: Vec<Vec<usize>> = patterns
            .iter()
            .map(|tp| {
                let mut v = Vec::new();
                if let Some(name) = tp.subject.as_var() {
                    if let Some(i) = frame.index(name) {
                        v.push(i);
                    }
                }
                if let PathOrVar::Var(name) = &tp.predicate {
                    if let Some(i) = frame.index(name) {
                        v.push(i);
                    }
                }
                if let Some(name) = tp.object.as_var() {
                    if let Some(i) = frame.index(name) {
                        v.push(i);
                    }
                }
                v
            })
            .collect();
        let mut remaining: Vec<usize> = (0..patterns.len()).collect();
        let mut order = Vec::with_capacity(patterns.len());
        while !remaining.is_empty() {
            let best = remaining
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let score = |i: usize| {
                        let connected = pattern_vars[i].iter().any(|&v| bound_vars[v]);
                        let bonus = if connected || order.is_empty() { 0.01 } else { 1.0 };
                        estimates[i] * bonus
                    };
                    score(a).partial_cmp(&score(b)).unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("non-empty remaining");
            remaining.retain(|&i| i != best);
            for &v in &pattern_vars[best] {
                bound_vars[v] = true;
            }
            order.push(best);
        }
        order
    }

    /// Static cardinality estimate for one pattern (constants only).
    fn estimate(&self, tp: &TriplePattern) -> f64 {
        let s = match &tp.subject {
            TermPattern::Term(t) => match self.store.lookup(t) {
                Some(id) => Some(id),
                None => return 0.0,
            },
            TermPattern::Var(_) => None,
        };
        let o = match &tp.object {
            TermPattern::Term(t) => match self.store.lookup(t) {
                Some(id) => Some(id),
                None => return 0.0,
            },
            TermPattern::Var(_) => None,
        };
        let p = match &tp.predicate {
            PathOrVar::Path(PropertyPath::Iri(iri)) => match self.store.lookup_iri(iri) {
                Some(id) => Some(id),
                None => return 0.0,
            },
            PathOrVar::Path(_) => {
                // complex path: assume moderately expensive
                return 1000.0;
            }
            PathOrVar::Var(_) => None,
        };
        // cap the scan so estimation stays cheap on huge stores
        self.store.count_matching(s, p, o, 10_000) as f64
    }

    fn match_triple(
        &self,
        tp: &TriplePattern,
        frame: &Frame,
        row: &Row,
        out: &mut Vec<Row>,
    ) -> Result<(), SparqlError> {
        // probe per (pattern, row) pair so patterns that match nothing over
        // many rows still honour the deadline
        self.guard.check_deadline()?;
        // resolve anchors from the row
        let resolve = |t: &TermPattern| -> Result<Anchor, SparqlError> {
            match t {
                TermPattern::Term(term) => Ok(match self.store.lookup(term) {
                    Some(id) => Anchor::Fixed(id),
                    None => Anchor::Impossible,
                }),
                TermPattern::Var(v) => {
                    let slot = frame
                        .index(v)
                        .ok_or_else(|| SparqlError::new(format!("unknown var ?{v}")))?;
                    match &row[slot] {
                        Some(Bound::Id(id)) => Ok(Anchor::BoundVar(*id)),
                        Some(Bound::Term(t)) => Ok(match self.store.lookup(t) {
                            Some(id) => Anchor::BoundVar(id),
                            None => Anchor::Impossible,
                        }),
                        None => Ok(Anchor::FreeVar(slot)),
                    }
                }
            }
        };
        let s_anchor = resolve(&tp.subject)?;
        let o_anchor = resolve(&tp.object)?;
        if matches!(s_anchor, Anchor::Impossible) || matches!(o_anchor, Anchor::Impossible) {
            return Ok(());
        }

        match &tp.predicate {
            PathOrVar::Var(v) => {
                let slot = frame
                    .index(v)
                    .ok_or_else(|| SparqlError::new(format!("unknown var ?{v}")))?;
                let p_fixed = match &row[slot] {
                    Some(b) => match self.store.lookup(bound_term(b, self.store)) {
                        Some(id) => Some(id),
                        None => return Ok(()),
                    },
                    None => None,
                };
                for [s, p, o] in self.store.matching(s_anchor.id(), p_fixed, o_anchor.id()) {
                    let mut new = row.clone();
                    if !bind(&mut new, &s_anchor, s) || !bind(&mut new, &o_anchor, o) {
                        continue;
                    }
                    if p_fixed.is_none() {
                        new[slot] = Some(Bound::Id(p));
                    }
                    // repeated-variable consistency (?x p ?x)
                    if same_var(&s_anchor, &o_anchor) && s != o {
                        continue;
                    }
                    self.guard.count_row_bytes(row_cost(new.len()))?;
                    out.push(new);
                }
            }
            PathOrVar::Path(PropertyPath::Iri(iri)) => {
                let Some(p) = self.store.lookup_iri(iri) else { return Ok(()) };
                for [s, _, o] in self.store.matching(s_anchor.id(), Some(p), o_anchor.id()) {
                    if same_var(&s_anchor, &o_anchor) && s != o {
                        continue;
                    }
                    let mut new = row.clone();
                    if bind(&mut new, &s_anchor, s) && bind(&mut new, &o_anchor, o) {
                        self.guard.count_row_bytes(row_cost(new.len()))?;
                        out.push(new);
                    }
                }
            }
            PathOrVar::Path(path) => {
                for (s, o) in
                    eval_path_limited(self.store, path, s_anchor.id(), o_anchor.id(), &self.guard)?
                {
                    if same_var(&s_anchor, &o_anchor) && s != o {
                        continue;
                    }
                    let mut new = row.clone();
                    if bind(&mut new, &s_anchor, s) && bind(&mut new, &o_anchor, o) {
                        self.guard.count_row_bytes(row_cost(new.len()))?;
                        out.push(new);
                    }
                }
            }
        }
        Ok(())
    }

    // ---- projection / grouping ----------------------------------------------

    fn finish_select(
        &self,
        q: &SelectQuery,
        frame: &Frame,
        rows: Vec<Row>,
    ) -> Result<Solutions, SparqlError> {
        let items: Vec<SelectItem> = match &q.projection {
            Projection::Star => frame
                .names()
                .iter()
                .map(|v| SelectItem { expr: Expr::Var(v.clone()), alias: v.clone() })
                .collect(),
            Projection::Items(items) => items.clone(),
        };
        let has_agg = items.iter().any(|it| it.expr.has_aggregate())
            || q.having.as_ref().is_some_and(|h| h.has_aggregate());
        let grouped = !q.group_by.is_empty() || has_agg;

        let mut out_rows: Vec<Vec<Option<Term>>> = Vec::new();
        if grouped {
            // hash-group rows by the group key
            let mut groups: Vec<(Vec<Option<Term>>, Vec<Row>)> = Vec::new();
            let mut index: HashMap<Vec<Option<Term>>, usize> = HashMap::new();
            for row in rows {
                let key: Vec<Option<Term>> = q
                    .group_by
                    .iter()
                    .map(|e| {
                        eval_expr_limited(e, &row, frame, self.store, &self.guard)
                            .map(|v| v.to_term())
                    })
                    .collect();
                match index.get(&key) {
                    Some(&i) => groups[i].1.push(row),
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
            // an aggregate query with no GROUP BY over zero rows still yields
            // one group (e.g. COUNT(*) = 0)
            if groups.is_empty() && q.group_by.is_empty() {
                groups.push((Vec::new(), Vec::new()));
            }
            for (_, group_rows) in &groups {
                if let Some(having) = &q.having {
                    let keep = self
                        .eval_agg_expr(having, group_rows, frame)
                        .and_then(|v| v.effective_boolean())
                        .unwrap_or(false);
                    if !keep {
                        continue;
                    }
                }
                let out: Vec<Option<Term>> = items
                    .iter()
                    .map(|it| self.eval_agg_expr(&it.expr, group_rows, frame).map(|v| v.to_term()))
                    .collect();
                out_rows.push(out);
            }
        } else {
            for row in &rows {
                let out: Vec<Option<Term>> = items
                    .iter()
                    .map(|it| {
                        eval_expr_limited(&it.expr, row, frame, self.store, &self.guard)
                            .map(|v| v.to_term())
                    })
                    .collect();
                out_rows.push(out);
            }
        }

        let vars: Vec<String> = items.iter().map(|it| it.alias.clone()).collect();
        finalize_rows(q, vars, out_rows, self.store, &self.guard)
    }

    /// Evaluate an expression that may contain aggregates, against one group.
    fn eval_agg_expr(&self, expr: &Expr, group: &[Row], frame: &Frame) -> Option<Value> {
        match expr {
            Expr::Aggregate(op, distinct, inner) => {
                self.compute_aggregate(*op, *distinct, inner.as_deref(), group, frame)
            }
            Expr::Var(_) | Expr::Const(_) => {
                // non-aggregate leaf: evaluate on a representative row
                let empty: Row = Vec::new();
                let row = group.first().unwrap_or(&empty);
                eval_expr_limited(expr, row, frame, self.store, &self.guard)
            }
            Expr::Or(a, b) => {
                let va = self.eval_agg_expr(a, group, frame).and_then(|v| v.effective_boolean());
                let vb = self.eval_agg_expr(b, group, frame).and_then(|v| v.effective_boolean());
                match (va, vb) {
                    (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                    (Some(false), Some(false)) => Some(Value::Bool(false)),
                    _ => None,
                }
            }
            Expr::And(a, b) => {
                let va = self.eval_agg_expr(a, group, frame).and_then(|v| v.effective_boolean());
                let vb = self.eval_agg_expr(b, group, frame).and_then(|v| v.effective_boolean());
                match (va, vb) {
                    (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                    (Some(true), Some(true)) => Some(Value::Bool(true)),
                    _ => None,
                }
            }
            Expr::Not(e) => {
                let v = self.eval_agg_expr(e, group, frame)?.effective_boolean()?;
                Some(Value::Bool(!v))
            }
            Expr::Compare(a, op, b) => {
                let va = self.eval_agg_expr(a, group, frame)?;
                let vb = self.eval_agg_expr(b, group, frame)?;
                match op {
                    CompareOp::Eq => Some(Value::Bool(va.value_eq(&vb))),
                    CompareOp::Ne => Some(Value::Bool(!va.value_eq(&vb))),
                    _ => {
                        let ord = va.compare(&vb)?;
                        Some(Value::Bool(match op {
                            CompareOp::Lt => ord == std::cmp::Ordering::Less,
                            CompareOp::Le => ord != std::cmp::Ordering::Greater,
                            CompareOp::Gt => ord == std::cmp::Ordering::Greater,
                            CompareOp::Ge => ord != std::cmp::Ordering::Less,
                            _ => unreachable!(),
                        }))
                    }
                }
            }
            Expr::Arith(a, op, b) => {
                let va = self.eval_agg_expr(a, group, frame)?;
                let vb = self.eval_agg_expr(b, group, frame)?;
                match op {
                    ArithOp::Add => va.add(&vb),
                    ArithOp::Sub => va.sub(&vb),
                    ArithOp::Mul => va.mul(&vb),
                    ArithOp::Div => va.div(&vb),
                }
            }
            Expr::Neg(e) => {
                let v = self.eval_agg_expr(e, group, frame)?;
                Value::Int(0).sub(&v)
            }
            Expr::In(e, list, negated) => {
                let v = self.eval_agg_expr(e, group, frame)?;
                let mut found = false;
                for item in list {
                    if let Some(vi) = self.eval_agg_expr(item, group, frame) {
                        if v.value_eq(&vi) {
                            found = true;
                            break;
                        }
                    }
                }
                Some(Value::Bool(found != *negated))
            }
            Expr::Call(..) | Expr::Exists(..) => {
                let empty: Row = Vec::new();
                let row = group.first().unwrap_or(&empty);
                eval_expr_limited(expr, row, frame, self.store, &self.guard)
            }
        }
    }

    fn compute_aggregate(
        &self,
        op: AggregateOp,
        distinct: bool,
        inner: Option<&Expr>,
        group: &[Row],
        frame: &Frame,
    ) -> Option<Value> {
        let mut values: Vec<Value> = Vec::with_capacity(group.len());
        for row in group {
            match inner {
                None => values.push(Value::Int(1)), // COUNT(*) counts rows
                Some(e) => {
                    if let Some(v) = eval_expr_limited(e, row, frame, self.store, &self.guard) {
                        values.push(v);
                    }
                }
            }
        }
        if distinct {
            let mut seen = std::collections::HashSet::new();
            values.retain(|v| seen.insert(v.to_term()));
        }
        match op {
            AggregateOp::Count => Some(Value::Int(values.len() as i64)),
            AggregateOp::Sum => {
                let mut acc = Value::Int(0);
                for v in &values {
                    acc = acc.add(v)?;
                }
                Some(acc)
            }
            AggregateOp::Avg => {
                if values.is_empty() {
                    return None;
                }
                let mut acc = Value::Int(0);
                for v in &values {
                    acc = acc.add(v)?;
                }
                acc.div(&Value::Int(values.len() as i64))
            }
            AggregateOp::Min => {
                let mut best: Option<Value> = None;
                for v in values {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if v.compare(&b) == Some(std::cmp::Ordering::Less) {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best
            }
            AggregateOp::Max => {
                let mut best: Option<Value> = None;
                for v in values {
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            if v.compare(&b) == Some(std::cmp::Ordering::Greater) {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                best
            }
            AggregateOp::Sample => values.into_iter().next(),
            AggregateOp::GroupConcat => {
                let joined = values
                    .iter()
                    .map(Value::render)
                    .collect::<Vec<_>>()
                    .join(" ");
                Some(Value::Str(joined, None))
            }
        }
    }
}

/// How a pattern position relates to the current row.
enum Anchor {
    /// A constant term (interned).
    Fixed(TermId),
    /// A variable already bound to this id.
    BoundVar(TermId),
    /// A variable with no binding yet (slot index).
    FreeVar(usize),
    /// A constant term not present in the store: no match possible.
    Impossible,
}

impl Anchor {
    fn id(&self) -> Option<TermId> {
        match self {
            Anchor::Fixed(id) | Anchor::BoundVar(id) => Some(*id),
            Anchor::FreeVar(_) => None,
            Anchor::Impossible => None,
        }
    }
}

fn same_var(a: &Anchor, b: &Anchor) -> bool {
    match (a, b) {
        (Anchor::FreeVar(x), Anchor::FreeVar(y)) => x == y,
        _ => false,
    }
}

fn bind(row: &mut Row, anchor: &Anchor, value: TermId) -> bool {
    match anchor {
        Anchor::Fixed(_) => true,
        Anchor::BoundVar(id) => *id == value,
        Anchor::FreeVar(slot) => {
            row[*slot] = Some(Bound::Id(value));
            true
        }
        Anchor::Impossible => false,
    }
}

/// Shared tail of SELECT evaluation: DISTINCT, ORDER BY, OFFSET/LIMIT, and
/// the final soft-limit surface. Both the term-space evaluator and the
/// ID-space plan executor ([`crate::plan`]) funnel through here so the
/// solution modifiers behave identically.
pub(crate) fn finalize_rows(
    q: &SelectQuery,
    vars: Vec<String>,
    mut out_rows: Vec<Vec<Option<Term>>>,
    store: &Store,
    guard: &Rc<LimitGuard>,
) -> Result<Solutions, SparqlError> {
    if q.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| seen.insert(r.clone()));
    }

    if !q.order_by.is_empty() {
        let out_frame = Frame::new(vars.clone());
        out_rows.sort_by(|a, b| {
            for spec in &q.order_by {
                let row_a: Row = a.iter().map(|t| t.clone().map(Bound::Term)).collect();
                let row_b: Row = b.iter().map(|t| t.clone().map(Bound::Term)).collect();
                let va = eval_expr_limited(&spec.expr, &row_a, &out_frame, store, guard);
                let vb = eval_expr_limited(&spec.expr, &row_b, &out_frame, store, guard);
                let ord = order_values(&va, &vb);
                let ord = if spec.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let offset = q.offset.unwrap_or(0);
    if offset > 0 {
        out_rows.drain(..offset.min(out_rows.len()));
    }
    if let Some(limit) = q.limit {
        out_rows.truncate(limit);
    }

    // surface any limit that tripped softly inside projection/sorting
    guard.surface()?;
    Ok(Solutions::new(vars, out_rows))
}

/// Total order for ORDER BY: unbound < blank < IRI < literal-by-value.
fn order_values(a: &Option<Value>, b: &Option<Value>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Option<Value>) -> u8 {
        match v {
            None => 0,
            Some(Value::Blank(_)) => 1,
            Some(Value::Iri(_)) => 2,
            Some(_) => 3,
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Some(x), Some(y)) => x
            .compare(y)
            .unwrap_or_else(|| x.render().cmp(&y.render())),
        _ => Ordering::Equal,
    }
}

/// True when the `EXISTS` pattern has at least one solution compatible with
/// the given row (SPARQL's substitute-then-evaluate semantics). The
/// sub-evaluation shares the caller's limit guard: a limit tripping inside
/// it makes the EXISTS report `false` and leaves the trip recorded for the
/// caller to surface.
pub(crate) fn exists_matches(
    store: &Store,
    group: &GroupPattern,
    outer_frame: &Frame,
    row: &Row,
    guard: &Rc<LimitGuard>,
) -> bool {
    let mut frame = outer_frame.clone();
    Evaluator::collect_vars(group, &mut frame);
    let mut seeded = row.clone();
    seeded.resize(frame.len(), None);
    let ev = Evaluator::with_guard(store, Rc::clone(guard));
    match ev.eval_group(group, &frame, vec![seeded]) {
        Ok(rows) => !rows.is_empty(),
        Err(_) => false,
    }
}

fn sub_projection_names(sub: &SelectQuery) -> Vec<String> {
    match &sub.projection {
        Projection::Items(items) => items.iter().map(|it| it.alias.clone()).collect(),
        Projection::Star => {
            let mut frame = Frame::default();
            Evaluator::collect_vars(&sub.where_, &mut frame);
            frame.names().to_vec()
        }
    }
}
