//! Cooperative resource limits for query evaluation.
//!
//! An interactive endpoint cannot afford an unbounded property-path closure
//! or a cartesian-product BGP: evaluation must notice it has exhausted its
//! budget and return a structured error instead of hanging. [`EvalLimits`]
//! is the declarative budget (every limit defaults to "unlimited") and
//! [`LimitGuard`] is its runtime counterpart, threaded through the
//! evaluator, the path engine, and expression evaluation.
//!
//! Checks are cooperative: hot loops call the cheap counters
//! ([`LimitGuard::count_row`], [`LimitGuard::count_path_visit`]) which probe
//! the wall clock only once every `DEADLINE_PROBE_INTERVAL` ticks, so the
//! overhead on unlimited queries is a couple of `Cell` bumps per row.
//! Contexts with no error channel (a `FILTER` expression, an `ORDER BY`
//! comparator) use [`LimitGuard::soft_tripped`]: the trip is recorded in the
//! guard and surfaced as a hard error at the next checkpoint that can
//! return one.

use crate::SparqlError;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which budget a query exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// Wall-clock deadline for the whole evaluation.
    Deadline,
    /// Total intermediate/solution rows produced.
    SolutionRows,
    /// Property-path node expansions (closure BFS and sequence joins).
    PathVisits,
    /// Nesting depth of group patterns and subqueries.
    RecursionDepth,
    /// Estimated bytes of materialized intermediate state.
    MemoryBytes,
    /// Evaluation was cancelled from outside (client disconnect, server
    /// drain) via a [`CancelFlag`].
    Cancelled,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LimitKind::Deadline => "deadline",
            LimitKind::SolutionRows => "solution rows",
            LimitKind::PathVisits => "path visits",
            LimitKind::RecursionDepth => "recursion depth",
            LimitKind::MemoryBytes => "memory bytes",
            LimitKind::Cancelled => "cancelled",
        })
    }
}

/// A cooperative cancellation token: a shared flag the owner (typically the
/// server's connection handler) raises to make an in-flight evaluation stop
/// at its next limit probe. Clones share the flag; raising it is one relaxed
/// atomic store, so it is safe to call from any thread — a disconnect
/// watcher, a drain loop, a signal handler.
///
/// Cancellation is observed at exactly the points the deadline is probed
/// (row/visit counters in both engines, aggregation worker loops), so a
/// cancelled query stops within the same latency bound as an expired one.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the flag: evaluations carrying this flag stop at their next
    /// probe with [`LimitKind::Cancelled`].
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Two flags are equal when they are the *same* flag (clones of one token).
impl PartialEq for CancelFlag {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelFlag {}

/// Declarative evaluation budget; `None` means unlimited for that axis.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalLimits {
    /// Wall-clock deadline for the whole evaluation.
    pub deadline: Option<Duration>,
    /// Maximum number of rows produced across all operators.
    pub max_rows: Option<u64>,
    /// Maximum number of property-path node expansions.
    pub max_path_visits: Option<u64>,
    /// Maximum nesting depth of groups/subqueries.
    pub max_depth: Option<u32>,
    /// Maximum estimated bytes of materialized intermediate state
    /// (solution rows and ID-space batch columns). An estimate, not an
    /// allocator measurement: it exists to stop one query from growing a
    /// multi-gigabyte join under a shared server, not to meter the heap.
    pub max_memory_bytes: Option<u64>,
    /// External cancellation token, probed at the same points as the
    /// deadline. `None` means the evaluation cannot be cancelled.
    pub cancel: Option<CancelFlag>,
}

impl EvalLimits {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A profile for interactive serving: generous enough for every
    /// legitimate analytics query in the workload, tight enough to bound a
    /// runaway closure or cartesian product.
    pub fn interactive() -> Self {
        EvalLimits {
            deadline: Some(Duration::from_secs(10)),
            max_rows: Some(1_000_000),
            max_path_visits: Some(5_000_000),
            max_depth: Some(32),
            max_memory_bytes: Some(256 * 1024 * 1024),
            cancel: None,
        }
    }

    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    pub fn with_max_rows(mut self, n: u64) -> Self {
        self.max_rows = Some(n);
        self
    }

    pub fn with_max_path_visits(mut self, n: u64) -> Self {
        self.max_path_visits = Some(n);
        self
    }

    pub fn with_max_depth(mut self, n: u32) -> Self {
        self.max_depth = Some(n);
        self
    }

    pub fn with_max_memory_bytes(mut self, n: u64) -> Self {
        self.max_memory_bytes = Some(n);
        self
    }

    /// Attach a cancellation token: raising the (shared) flag makes the
    /// evaluation stop at its next probe with [`LimitKind::Cancelled`].
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when no limit is set on any axis (a cancel flag alone does not
    /// count: it bounds *who may stop* the query, not what it may spend).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rows.is_none()
            && self.max_path_visits.is_none()
            && self.max_depth.is_none()
            && self.max_memory_bytes.is_none()
    }
}

impl fmt::Display for EvalLimits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unlimited() {
            return f.write_str("unlimited");
        }
        let mut parts: Vec<String> = Vec::new();
        if let Some(d) = self.deadline {
            parts.push(format!("deadline {d:?}"));
        }
        if let Some(n) = self.max_rows {
            parts.push(format!("rows <= {n}"));
        }
        if let Some(n) = self.max_path_visits {
            parts.push(format!("path visits <= {n}"));
        }
        if let Some(n) = self.max_depth {
            parts.push(format!("depth <= {n}"));
        }
        if let Some(n) = self.max_memory_bytes {
            parts.push(format!("memory <= {n} bytes"));
        }
        if self.cancel.is_some() {
            parts.push("cancellable".to_owned());
        }
        f.write_str(&parts.join(", "))
    }
}

/// How many cheap counter bumps between wall-clock probes.
const DEADLINE_PROBE_INTERVAL: u32 = 64;

/// Runtime counterpart of [`EvalLimits`]: interior-mutable counters shared
/// (via `Rc`) by every sub-evaluation of one query, so `EXISTS` patterns and
/// subqueries draw from the same budget as the outer query.
#[derive(Debug)]
pub struct LimitGuard {
    limits: EvalLimits,
    start: Instant,
    rows: Cell<u64>,
    path_visits: Cell<u64>,
    mem_bytes: Cell<u64>,
    depth: Cell<u32>,
    ticks: Cell<u32>,
    tripped: Cell<Option<(LimitKind, u64)>>,
}

impl LimitGuard {
    /// Start the clock on a budget.
    pub fn new(limits: EvalLimits) -> Self {
        LimitGuard {
            limits,
            start: Instant::now(),
            rows: Cell::new(0),
            path_visits: Cell::new(0),
            mem_bytes: Cell::new(0),
            depth: Cell::new(0),
            ticks: Cell::new(0),
            tripped: Cell::new(None),
        }
    }

    /// A guard that never trips.
    pub fn unlimited() -> Self {
        Self::new(EvalLimits::unlimited())
    }

    /// The budget in force.
    pub fn limits(&self) -> EvalLimits {
        self.limits.clone()
    }

    /// True once the attached [`CancelFlag`] (if any) has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.limits.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Time since the guard was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Rows produced so far.
    pub fn rows(&self) -> u64 {
        self.rows.get()
    }

    /// Path expansions so far.
    pub fn path_visits(&self) -> u64 {
        self.path_visits.get()
    }

    /// Estimated bytes of materialized state charged so far.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_bytes.get()
    }

    /// Charge `n` estimated bytes of materialized state against the memory
    /// budget. Monotonic: evaluation charges what it materializes and never
    /// refunds — the budget bounds the *high-water* estimate, which is what
    /// protects a shared server.
    pub fn charge_bytes(&self, n: u64) -> Result<(), SparqlError> {
        let total = self.mem_bytes.get().saturating_add(n);
        self.mem_bytes.set(total);
        if let Some(max) = self.limits.max_memory_bytes {
            if total > max {
                return Err(self.trip(LimitKind::MemoryBytes, max));
            }
        }
        Ok(())
    }

    /// Count one materialized row of estimated size `bytes` — the fused
    /// check hot materialization loops call (row budget + memory budget +
    /// amortized deadline probe in one).
    pub fn count_row_bytes(&self, bytes: u64) -> Result<(), SparqlError> {
        self.charge_bytes(bytes)?;
        self.count_row()
    }

    fn trip(&self, kind: LimitKind, limit: u64) -> SparqlError {
        self.tripped.set(Some((kind, limit)));
        SparqlError::ResourceLimit { kind, limit }
    }

    /// A `Send + Sync` snapshot of the guard's interrupt sources (start
    /// instant, deadline, cancel flag), for worker threads that cannot share
    /// the (non-`Sync`) guard itself: they probe against this and report
    /// back via [`LimitGuard::note_trip`].
    pub(crate) fn probe_info(&self) -> ProbeInfo {
        ProbeInfo {
            start: self.start,
            deadline: self.limits.deadline,
            cancel: self.limits.cancel.clone(),
        }
    }

    /// Record a trip observed outside the guard (e.g. by an aggregation
    /// worker thread); the next checkpoint surfaces it as a hard error.
    pub(crate) fn note_trip(&self, kind: LimitKind, limit: u64) {
        if self.tripped.get().is_none() {
            self.tripped.set(Some((kind, limit)));
        }
    }

    /// Re-raise a limit that already tripped — possibly in a context with no
    /// error channel, like a `FILTER` closure.
    pub fn surface(&self) -> Result<(), SparqlError> {
        match self.tripped.get() {
            Some((kind, limit)) => Err(SparqlError::ResourceLimit { kind, limit }),
            None => Ok(()),
        }
    }

    /// Probe the wall-clock deadline and the cancellation flag. Amortised:
    /// `Instant::now` and the atomic load run once per
    /// `DEADLINE_PROBE_INTERVAL` calls, so a cancelled query stops within
    /// the same latency bound as an expired one.
    pub fn check_deadline(&self) -> Result<(), SparqlError> {
        self.surface()?;
        if self.limits.deadline.is_some() || self.limits.cancel.is_some() {
            let t = self.ticks.get().wrapping_add(1);
            self.ticks.set(t);
            if t.is_multiple_of(DEADLINE_PROBE_INTERVAL) {
                if self.is_cancelled() {
                    return Err(self.trip(LimitKind::Cancelled, 0));
                }
                if let Some(d) = self.limits.deadline {
                    if self.start.elapsed() > d {
                        return Err(self.trip(LimitKind::Deadline, d.as_millis() as u64));
                    }
                }
            }
        }
        Ok(())
    }

    /// Count one produced row (and probe the deadline).
    pub fn count_row(&self) -> Result<(), SparqlError> {
        let n = self.rows.get() + 1;
        self.rows.set(n);
        if let Some(max) = self.limits.max_rows {
            if n > max {
                return Err(self.trip(LimitKind::SolutionRows, max));
            }
        }
        self.check_deadline()
    }

    /// Count one property-path node expansion (and probe the deadline).
    pub fn count_path_visit(&self) -> Result<(), SparqlError> {
        let n = self.path_visits.get() + 1;
        self.path_visits.set(n);
        if let Some(max) = self.limits.max_path_visits {
            if n > max {
                return Err(self.trip(LimitKind::PathVisits, max));
            }
        }
        self.check_deadline()
    }

    /// Enter one nesting level (group pattern / subquery). The returned
    /// scope decrements the depth when dropped.
    pub fn enter(&self) -> Result<DepthScope<'_>, SparqlError> {
        self.surface()?;
        let d = self.depth.get() + 1;
        if let Some(max) = self.limits.max_depth {
            if d > max {
                return Err(self.trip(LimitKind::RecursionDepth, max as u64));
            }
        }
        self.depth.set(d);
        Ok(DepthScope { depth: &self.depth })
    }

    /// Deadline probe for contexts that cannot return an error: reports
    /// `true` once any limit has tripped (recording a deadline trip if the
    /// clock just ran out). The caller should bail out cheaply; the trip is
    /// surfaced by the next [`LimitGuard::surface`] checkpoint.
    pub fn soft_tripped(&self) -> bool {
        if self.tripped.get().is_some() {
            return true;
        }
        if self.limits.deadline.is_some() || self.limits.cancel.is_some() {
            let t = self.ticks.get().wrapping_add(1);
            self.ticks.set(t);
            if t.is_multiple_of(DEADLINE_PROBE_INTERVAL) {
                if self.is_cancelled() {
                    self.tripped.set(Some((LimitKind::Cancelled, 0)));
                    return true;
                }
                if let Some(d) = self.limits.deadline {
                    if self.start.elapsed() > d {
                        self.tripped.set(Some((LimitKind::Deadline, d.as_millis() as u64)));
                        return true;
                    }
                }
            }
        }
        false
    }
}

/// [`LimitGuard::probe_info`]: the interrupt sources a worker thread probes
/// (the guard itself is interior-mutable and not `Sync`).
#[derive(Debug, Clone)]
pub(crate) struct ProbeInfo {
    start: Instant,
    deadline: Option<Duration>,
    cancel: Option<CancelFlag>,
}

impl ProbeInfo {
    /// True once the deadline has passed.
    pub(crate) fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| self.start.elapsed() > d)
    }

    /// True once the cancel flag has been raised.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }
}

/// RAII scope for one recursion level; decrements the shared depth counter
/// on drop so early returns (including `?`) unwind it correctly.
pub struct DepthScope<'a> {
    depth: &'a Cell<u32>,
}

impl Drop for DepthScope<'_> {
    fn drop(&mut self) {
        self.depth.set(self.depth.get().saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let g = LimitGuard::unlimited();
        for _ in 0..10_000 {
            g.count_row().unwrap();
            g.count_path_visit().unwrap();
        }
        assert!(g.surface().is_ok());
        assert!(!g.soft_tripped());
    }

    #[test]
    fn row_limit_trips_and_sticks() {
        let g = LimitGuard::new(EvalLimits::default().with_max_rows(10));
        for _ in 0..10 {
            g.count_row().unwrap();
        }
        let err = g.count_row().unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::SolutionRows, limit: 10 }
        );
        // once tripped, every checkpoint re-raises
        assert!(g.surface().is_err());
        assert!(g.check_deadline().is_err());
        assert!(g.soft_tripped());
    }

    #[test]
    fn path_visit_limit_trips() {
        let g = LimitGuard::new(EvalLimits::default().with_max_path_visits(3));
        for _ in 0..3 {
            g.count_path_visit().unwrap();
        }
        assert!(matches!(
            g.count_path_visit(),
            Err(SparqlError::ResourceLimit { kind: LimitKind::PathVisits, .. })
        ));
    }

    #[test]
    fn deadline_trips_within_probe_interval() {
        let g = LimitGuard::new(EvalLimits::default().with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        let mut err = None;
        for _ in 0..=DEADLINE_PROBE_INTERVAL {
            if let Err(e) = g.check_deadline() {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(
            err,
            Some(SparqlError::ResourceLimit { kind: LimitKind::Deadline, limit: 1 })
        ));
    }

    #[test]
    fn depth_scope_unwinds() {
        let g = LimitGuard::new(EvalLimits::default().with_max_depth(2));
        let a = g.enter().unwrap();
        {
            let _b = g.enter().unwrap();
            assert!(g.enter().is_err()); // third level exceeds the budget
        }
        drop(a);
        // tripped is sticky even after the scopes unwind
        assert!(g.enter().is_err());
    }

    #[test]
    fn depth_scope_allows_reentry_when_not_tripped() {
        let g = LimitGuard::new(EvalLimits::default().with_max_depth(1));
        {
            let _a = g.enter().unwrap();
        }
        // sibling scope at the same level is fine
        assert!(g.enter().is_ok());
    }

    #[test]
    fn memory_limit_trips_and_sticks() {
        let g = LimitGuard::new(EvalLimits::default().with_max_memory_bytes(1000));
        for _ in 0..10 {
            g.charge_bytes(100).unwrap();
        }
        assert_eq!(g.memory_bytes(), 1000);
        let err = g.charge_bytes(1).unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::MemoryBytes, limit: 1000 }
        );
        assert!(g.surface().is_err());
        assert!(g.soft_tripped());
    }

    #[test]
    fn count_row_bytes_draws_from_both_budgets() {
        let g = LimitGuard::new(
            EvalLimits::default().with_max_rows(100).with_max_memory_bytes(250),
        );
        g.count_row_bytes(100).unwrap();
        g.count_row_bytes(100).unwrap();
        assert!(matches!(
            g.count_row_bytes(100),
            Err(SparqlError::ResourceLimit { kind: LimitKind::MemoryBytes, limit: 250 })
        ));
    }

    #[test]
    fn cancel_flag_trips_within_probe_interval_and_sticks() {
        let flag = CancelFlag::new();
        let g = LimitGuard::new(EvalLimits::default().with_cancel(flag.clone()));
        for _ in 0..1_000 {
            g.check_deadline().unwrap();
        }
        flag.cancel();
        let mut err = None;
        for _ in 0..=DEADLINE_PROBE_INTERVAL {
            if let Err(e) = g.check_deadline() {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(
            err,
            Some(SparqlError::ResourceLimit { kind: LimitKind::Cancelled, limit: 0 })
        ));
        // sticky like every other trip
        assert!(g.surface().is_err());
        assert!(g.soft_tripped());
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let flag = CancelFlag::new();
        let clone = flag.clone();
        assert_eq!(flag, clone);
        assert_ne!(flag, CancelFlag::new());
        clone.cancel();
        assert!(flag.is_cancelled());
        let g = LimitGuard::new(EvalLimits::default().with_cancel(flag));
        assert!(g.is_cancelled());
        // soft probe records the trip too (FILTER / ORDER BY contexts)
        let mut tripped = false;
        for _ in 0..=DEADLINE_PROBE_INTERVAL {
            if g.soft_tripped() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn limits_display() {
        assert_eq!(EvalLimits::unlimited().to_string(), "unlimited");
        let l = EvalLimits::default()
            .with_deadline(Duration::from_millis(100))
            .with_max_rows(5);
        assert_eq!(l.to_string(), "deadline 100ms, rows <= 5");
    }
}
