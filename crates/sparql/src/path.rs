//! Property-path evaluation over the store.
//!
//! Paths power two features of the paper's model: the translation of
//! composition expressions (`origin ∘ manufacturer`, §4.2.4) and the
//! path-expansion transitions of the faceted UI (Fig 5.5).

use crate::ast::PropertyPath;
use crate::limits::LimitGuard;
use crate::SparqlError;
use rdfa_store::{Store, TermId};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// All `(start, end)` node pairs connected by `path`, optionally anchored on
/// either side. Results are deduplicated. Unlimited: a cyclic graph under a
/// closure path is walked in full — interactive callers should prefer
/// [`eval_path_limited`].
pub fn eval_path(
    store: &Store,
    path: &PropertyPath,
    start: Option<TermId>,
    end: Option<TermId>,
) -> BTreeSet<(TermId, TermId)> {
    // an unlimited guard never trips
    eval_path_limited(store, path, start, end, &LimitGuard::unlimited()).unwrap_or_default()
}

/// Like [`eval_path`], but every node expansion is charged against `guard`,
/// so a runaway closure surfaces `SparqlError::ResourceLimit` instead of
/// hanging the query.
pub fn eval_path_limited(
    store: &Store,
    path: &PropertyPath,
    start: Option<TermId>,
    end: Option<TermId>,
    guard: &LimitGuard,
) -> Result<BTreeSet<(TermId, TermId)>, SparqlError> {
    match path {
        PropertyPath::Iri(iri) => {
            let Some(p) = store.lookup_iri(iri) else {
                return Ok(BTreeSet::new());
            };
            Ok(store
                .matching(start, Some(p), end)
                .map(|[s, _, o]| (s, o))
                .collect())
        }
        PropertyPath::Inverse(inner) => Ok(eval_path_limited(store, inner, end, start, guard)?
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect()),
        PropertyPath::Sequence(a, b) => {
            if start.is_some() || end.is_none() {
                // drive left-to-right, anchored at start when available
                let left = eval_path_limited(store, a, start, None, guard)?;
                let mut out = BTreeSet::new();
                let mut mid_cache: HashMap<TermId, BTreeSet<(TermId, TermId)>> = HashMap::new();
                for (s, mid) in left {
                    guard.count_path_visit()?;
                    if let std::collections::hash_map::Entry::Vacant(e) = mid_cache.entry(mid) {
                        let rights = eval_path_limited(store, b, Some(mid), end, guard)?;
                        e.insert(rights);
                    }
                    for &(_, o) in &mid_cache[&mid] {
                        out.insert((s, o));
                    }
                }
                Ok(out)
            } else {
                // only end anchored: drive right-to-left
                let right = eval_path_limited(store, b, None, end, guard)?;
                let mut out = BTreeSet::new();
                let mut mid_cache: HashMap<TermId, BTreeSet<(TermId, TermId)>> = HashMap::new();
                for (mid, o) in right {
                    guard.count_path_visit()?;
                    if let std::collections::hash_map::Entry::Vacant(e) = mid_cache.entry(mid) {
                        let lefts = eval_path_limited(store, a, None, Some(mid), guard)?;
                        e.insert(lefts);
                    }
                    for &(s, _) in &mid_cache[&mid] {
                        out.insert((s, o));
                    }
                }
                Ok(out)
            }
        }
        PropertyPath::Alternative(a, b) => {
            let mut out = eval_path_limited(store, a, start, end, guard)?;
            out.extend(eval_path_limited(store, b, start, end, guard)?);
            Ok(out)
        }
        PropertyPath::ZeroOrOne(inner) => {
            let mut out = eval_path_limited(store, inner, start, end, guard)?;
            out.extend(identity_pairs(store, start, end));
            Ok(out)
        }
        PropertyPath::OneOrMore(inner) => closure(store, inner, start, end, guard),
        PropertyPath::ZeroOrMore(inner) => {
            let mut out = closure(store, inner, start, end, guard)?;
            out.extend(identity_pairs(store, start, end));
            Ok(out)
        }
    }
}

/// Zero-length path pairs `(x, x)`, restricted by the anchors. With both ends
/// free, the domain is every node occurring in the graph.
fn identity_pairs(
    store: &Store,
    start: Option<TermId>,
    end: Option<TermId>,
) -> BTreeSet<(TermId, TermId)> {
    match (start, end) {
        (Some(s), Some(e)) => {
            if s == e {
                [(s, s)].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
        (Some(s), None) => [(s, s)].into_iter().collect(),
        (None, Some(e)) => [(e, e)].into_iter().collect(),
        (None, None) => graph_nodes(store).into_iter().map(|n| (n, n)).collect(),
    }
}

fn graph_nodes(store: &Store) -> BTreeSet<TermId> {
    store
        .iter_explicit()
        .flat_map(|[s, _, o]| [s, o])
        .collect()
}

/// Transitive closure of a path via BFS from each start node. Every node
/// expansion (queue pop) is charged against the guard — this is the loop
/// that walks a cycle-heavy graph forever without a budget.
fn closure(
    store: &Store,
    inner: &PropertyPath,
    start: Option<TermId>,
    end: Option<TermId>,
    guard: &LimitGuard,
) -> Result<BTreeSet<(TermId, TermId)>, SparqlError> {
    // when only the end is anchored, walk the inverse path instead
    if start.is_none() && end.is_some() {
        let inv = PropertyPath::Inverse(Box::new(inner.clone()));
        return Ok(closure(store, &inv, end, None, guard)?
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect());
    }
    let starts: Vec<TermId> = match start {
        Some(s) => vec![s],
        None => eval_path_limited(store, inner, None, None, guard)?
            .into_iter()
            .map(|(s, _)| s)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect(),
    };
    let mut out = BTreeSet::new();
    for s in starts {
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut queue: VecDeque<TermId> = VecDeque::new();
        queue.push_back(s);
        while let Some(node) = queue.pop_front() {
            guard.count_path_visit()?;
            // expand one step of the inner path from `node`
            for (_, next) in eval_path_limited(store, inner, Some(node), None, guard)? {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        for reached in seen {
            if end.is_none_or(|e| e == reached) {
                out.insert((s, reached));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::Term;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 ex:manufacturer ex:DELL .
               ex:l2 ex:manufacturer ex:Lenovo .
               ex:DELL ex:origin ex:USA .
               ex:Lenovo ex:origin ex:China .
               ex:USA ex:locatedAt ex:NorthAmerica .
               ex:China ex:locatedAt ex:Asia .
               ex:a ex:next ex:b . ex:b ex:next ex:c . ex:c ex:next ex:d .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup(&Term::iri(format!("{EX}{local}"))).unwrap()
    }

    fn p(local: &str) -> PropertyPath {
        PropertyPath::Iri(format!("{EX}{local}"))
    }

    #[test]
    fn simple_iri_path() {
        let s = store();
        let pairs = eval_path(&s, &p("manufacturer"), None, None);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn sequence_anchored_both_ways() {
        let s = store();
        let seq = PropertyPath::Sequence(Box::new(p("manufacturer")), Box::new(p("origin")));
        // forward from l1
        let fwd = eval_path(&s, &seq, Some(id(&s, "l1")), None);
        assert_eq!(fwd, [(id(&s, "l1"), id(&s, "USA"))].into_iter().collect());
        // backward from China
        let bwd = eval_path(&s, &seq, None, Some(id(&s, "China")));
        assert_eq!(bwd, [(id(&s, "l2"), id(&s, "China"))].into_iter().collect());
    }

    #[test]
    fn three_step_sequence() {
        let s = store();
        let seq = PropertyPath::Sequence(
            Box::new(PropertyPath::Sequence(Box::new(p("manufacturer")), Box::new(p("origin")))),
            Box::new(p("locatedAt")),
        );
        let pairs = eval_path(&s, &seq, None, None);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(id(&s, "l2"), id(&s, "Asia"))));
    }

    #[test]
    fn inverse_path() {
        let s = store();
        let inv = PropertyPath::Inverse(Box::new(p("manufacturer")));
        let pairs = eval_path(&s, &inv, Some(id(&s, "DELL")), None);
        assert_eq!(pairs, [(id(&s, "DELL"), id(&s, "l1"))].into_iter().collect());
    }

    #[test]
    fn alternative_union() {
        let s = store();
        let alt = PropertyPath::Alternative(Box::new(p("origin")), Box::new(p("locatedAt")));
        let pairs = eval_path(&s, &alt, None, None);
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn one_or_more_chain() {
        let s = store();
        let plus = PropertyPath::OneOrMore(Box::new(p("next")));
        let from_a = eval_path(&s, &plus, Some(id(&s, "a")), None);
        assert_eq!(from_a.len(), 3); // b, c, d
        let anchored = eval_path(&s, &plus, Some(id(&s, "a")), Some(id(&s, "d")));
        assert_eq!(anchored.len(), 1);
    }

    #[test]
    fn zero_or_more_includes_identity() {
        let s = store();
        let star = PropertyPath::ZeroOrMore(Box::new(p("next")));
        let from_a = eval_path(&s, &star, Some(id(&s, "a")), None);
        assert_eq!(from_a.len(), 4); // a itself + b, c, d
        assert!(from_a.contains(&(id(&s, "a"), id(&s, "a"))));
    }

    #[test]
    fn zero_or_one() {
        let s = store();
        let opt = PropertyPath::ZeroOrOne(Box::new(p("next")));
        let from_a = eval_path(&s, &opt, Some(id(&s, "a")), None);
        assert_eq!(from_a.len(), 2); // a and b
    }

    #[test]
    fn unknown_property_matches_nothing() {
        let s = store();
        let pairs = eval_path(&s, &p("nonexistent"), None, None);
        assert!(pairs.is_empty());
    }

    #[test]
    fn one_or_more_end_anchored_only() {
        let s = store();
        let plus = PropertyPath::OneOrMore(Box::new(p("next")));
        let to_d = eval_path(&s, &plus, None, Some(id(&s, "d")));
        assert_eq!(to_d.len(), 3); // a→d, b→d, c→d
    }

    fn cycle_store(n: usize) -> Store {
        let mut s = Store::new();
        let mut ttl = format!("@prefix ex: <{EX}> .\n");
        for i in 0..n {
            ttl.push_str(&format!("ex:n{i} ex:partOf ex:n{} .\n", (i + 1) % n));
        }
        s.load_turtle(&ttl).unwrap();
        s
    }

    #[test]
    fn closure_terminates_on_cycles() {
        let s = cycle_store(5);
        let plus = PropertyPath::OneOrMore(Box::new(p("partOf")));
        let from_n0 = eval_path(&s, &plus, Some(id(&s, "n0")), None);
        assert_eq!(from_n0.len(), 5); // n0+ reaches every node incl. itself
    }

    #[test]
    fn closure_respects_path_visit_limit() {
        let s = cycle_store(100);
        let plus = PropertyPath::OneOrMore(Box::new(p("partOf")));
        let guard =
            LimitGuard::new(crate::limits::EvalLimits::default().with_max_path_visits(50));
        let err = eval_path_limited(&s, &plus, None, None, &guard).unwrap_err();
        assert!(err.is_resource_limit(), "{err}");
    }

    #[test]
    fn closure_respects_deadline() {
        use std::time::{Duration, Instant};
        let s = cycle_store(2000);
        let plus = PropertyPath::OneOrMore(Box::new(p("partOf")));
        let deadline = Duration::from_millis(20);
        let guard = LimitGuard::new(crate::limits::EvalLimits::default().with_deadline(deadline));
        let t0 = Instant::now();
        let result = eval_path_limited(&s, &plus, None, None, &guard);
        let elapsed = t0.elapsed();
        // the full closure over a 2000-cycle is 4M pairs — the deadline must
        // cut it off promptly (well under 2x the budget)
        assert!(matches!(
            result,
            Err(SparqlError::ResourceLimit { kind: crate::limits::LimitKind::Deadline, .. })
        ));
        assert!(elapsed < deadline * 2, "took {elapsed:?} against a {deadline:?} deadline");
    }
}
