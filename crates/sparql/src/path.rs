//! Property-path evaluation over the store.
//!
//! Paths power two features of the paper's model: the translation of
//! composition expressions (`origin ∘ manufacturer`, §4.2.4) and the
//! path-expansion transitions of the faceted UI (Fig 5.5).

use crate::ast::PropertyPath;
use rdfa_store::{Store, TermId};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// All `(start, end)` node pairs connected by `path`, optionally anchored on
/// either side. Results are deduplicated.
pub fn eval_path(
    store: &Store,
    path: &PropertyPath,
    start: Option<TermId>,
    end: Option<TermId>,
) -> BTreeSet<(TermId, TermId)> {
    match path {
        PropertyPath::Iri(iri) => {
            let Some(p) = store.lookup_iri(iri) else {
                return BTreeSet::new();
            };
            store
                .matching(start, Some(p), end)
                .map(|[s, _, o]| (s, o))
                .collect()
        }
        PropertyPath::Inverse(inner) => eval_path(store, inner, end, start)
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect(),
        PropertyPath::Sequence(a, b) => {
            if start.is_some() || end.is_none() {
                // drive left-to-right, anchored at start when available
                let left = eval_path(store, a, start, None);
                let mut out = BTreeSet::new();
                let mut mid_cache: HashMap<TermId, BTreeSet<(TermId, TermId)>> = HashMap::new();
                for (s, mid) in left {
                    let rights = mid_cache
                        .entry(mid)
                        .or_insert_with(|| eval_path(store, b, Some(mid), end));
                    for &(_, o) in rights.iter() {
                        out.insert((s, o));
                    }
                }
                out
            } else {
                // only end anchored: drive right-to-left
                let right = eval_path(store, b, None, end);
                let mut out = BTreeSet::new();
                let mut mid_cache: HashMap<TermId, BTreeSet<(TermId, TermId)>> = HashMap::new();
                for (mid, o) in right {
                    let lefts = mid_cache
                        .entry(mid)
                        .or_insert_with(|| eval_path(store, a, None, Some(mid)));
                    for &(s, _) in lefts.iter() {
                        out.insert((s, o));
                    }
                }
                out
            }
        }
        PropertyPath::Alternative(a, b) => {
            let mut out = eval_path(store, a, start, end);
            out.extend(eval_path(store, b, start, end));
            out
        }
        PropertyPath::ZeroOrOne(inner) => {
            let mut out = eval_path(store, inner, start, end);
            out.extend(identity_pairs(store, start, end));
            out
        }
        PropertyPath::OneOrMore(inner) => closure(store, inner, start, end, false),
        PropertyPath::ZeroOrMore(inner) => {
            let mut out = closure(store, inner, start, end, false);
            out.extend(identity_pairs(store, start, end));
            out
        }
    }
}

/// Zero-length path pairs `(x, x)`, restricted by the anchors. With both ends
/// free, the domain is every node occurring in the graph.
fn identity_pairs(
    store: &Store,
    start: Option<TermId>,
    end: Option<TermId>,
) -> BTreeSet<(TermId, TermId)> {
    match (start, end) {
        (Some(s), Some(e)) => {
            if s == e {
                [(s, s)].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
        (Some(s), None) => [(s, s)].into_iter().collect(),
        (None, Some(e)) => [(e, e)].into_iter().collect(),
        (None, None) => graph_nodes(store).into_iter().map(|n| (n, n)).collect(),
    }
}

fn graph_nodes(store: &Store) -> BTreeSet<TermId> {
    store
        .iter_explicit()
        .flat_map(|[s, _, o]| [s, o])
        .collect()
}

/// Transitive closure of a path via BFS from each start node.
fn closure(
    store: &Store,
    inner: &PropertyPath,
    start: Option<TermId>,
    end: Option<TermId>,
    _reflexive: bool,
) -> BTreeSet<(TermId, TermId)> {
    // when only the end is anchored, walk the inverse path instead
    if start.is_none() && end.is_some() {
        let inv = PropertyPath::Inverse(Box::new(inner.clone()));
        return closure(store, &inv, end, None, _reflexive)
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect();
    }
    let starts: Vec<TermId> = match start {
        Some(s) => vec![s],
        None => eval_path(store, inner, None, None)
            .into_iter()
            .map(|(s, _)| s)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect(),
    };
    let mut out = BTreeSet::new();
    for s in starts {
        let mut seen: HashSet<TermId> = HashSet::new();
        let mut queue: VecDeque<TermId> = VecDeque::new();
        queue.push_back(s);
        let mut first = true;
        while let Some(node) = queue.pop_front() {
            // expand one step of the inner path from `node`
            for (_, next) in eval_path(store, inner, Some(node), None) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
            if first {
                first = false;
            }
        }
        for reached in seen {
            if end.is_none_or(|e| e == reached) {
                out.insert((s, reached));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::Term;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 ex:manufacturer ex:DELL .
               ex:l2 ex:manufacturer ex:Lenovo .
               ex:DELL ex:origin ex:USA .
               ex:Lenovo ex:origin ex:China .
               ex:USA ex:locatedAt ex:NorthAmerica .
               ex:China ex:locatedAt ex:Asia .
               ex:a ex:next ex:b . ex:b ex:next ex:c . ex:c ex:next ex:d .
            "#
        ))
        .unwrap();
        s
    }

    fn id(s: &Store, local: &str) -> TermId {
        s.lookup(&Term::iri(format!("{EX}{local}"))).unwrap()
    }

    fn p(local: &str) -> PropertyPath {
        PropertyPath::Iri(format!("{EX}{local}"))
    }

    #[test]
    fn simple_iri_path() {
        let s = store();
        let pairs = eval_path(&s, &p("manufacturer"), None, None);
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn sequence_anchored_both_ways() {
        let s = store();
        let seq = PropertyPath::Sequence(Box::new(p("manufacturer")), Box::new(p("origin")));
        // forward from l1
        let fwd = eval_path(&s, &seq, Some(id(&s, "l1")), None);
        assert_eq!(fwd, [(id(&s, "l1"), id(&s, "USA"))].into_iter().collect());
        // backward from China
        let bwd = eval_path(&s, &seq, None, Some(id(&s, "China")));
        assert_eq!(bwd, [(id(&s, "l2"), id(&s, "China"))].into_iter().collect());
    }

    #[test]
    fn three_step_sequence() {
        let s = store();
        let seq = PropertyPath::Sequence(
            Box::new(PropertyPath::Sequence(Box::new(p("manufacturer")), Box::new(p("origin")))),
            Box::new(p("locatedAt")),
        );
        let pairs = eval_path(&s, &seq, None, None);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(id(&s, "l2"), id(&s, "Asia"))));
    }

    #[test]
    fn inverse_path() {
        let s = store();
        let inv = PropertyPath::Inverse(Box::new(p("manufacturer")));
        let pairs = eval_path(&s, &inv, Some(id(&s, "DELL")), None);
        assert_eq!(pairs, [(id(&s, "DELL"), id(&s, "l1"))].into_iter().collect());
    }

    #[test]
    fn alternative_union() {
        let s = store();
        let alt = PropertyPath::Alternative(Box::new(p("origin")), Box::new(p("locatedAt")));
        let pairs = eval_path(&s, &alt, None, None);
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn one_or_more_chain() {
        let s = store();
        let plus = PropertyPath::OneOrMore(Box::new(p("next")));
        let from_a = eval_path(&s, &plus, Some(id(&s, "a")), None);
        assert_eq!(from_a.len(), 3); // b, c, d
        let anchored = eval_path(&s, &plus, Some(id(&s, "a")), Some(id(&s, "d")));
        assert_eq!(anchored.len(), 1);
    }

    #[test]
    fn zero_or_more_includes_identity() {
        let s = store();
        let star = PropertyPath::ZeroOrMore(Box::new(p("next")));
        let from_a = eval_path(&s, &star, Some(id(&s, "a")), None);
        assert_eq!(from_a.len(), 4); // a itself + b, c, d
        assert!(from_a.contains(&(id(&s, "a"), id(&s, "a"))));
    }

    #[test]
    fn zero_or_one() {
        let s = store();
        let opt = PropertyPath::ZeroOrOne(Box::new(p("next")));
        let from_a = eval_path(&s, &opt, Some(id(&s, "a")), None);
        assert_eq!(from_a.len(), 2); // a and b
    }

    #[test]
    fn unknown_property_matches_nothing() {
        let s = store();
        let pairs = eval_path(&s, &p("nonexistent"), None, None);
        assert!(pairs.is_empty());
    }

    #[test]
    fn one_or_more_end_anchored_only() {
        let s = store();
        let plus = PropertyPath::OneOrMore(Box::new(p("next")));
        let to_d = eval_path(&s, &plus, None, Some(id(&s, "d")));
        assert_eq!(to_d.len(), 3); // a→d, b→d, c→d
    }
}
