//! Expression evaluation with SPARQL error semantics: an evaluation error
//! yields `None`, which makes the enclosing `FILTER` reject the row.

use crate::ast::{ArithOp, CompareOp, Expr};
use crate::eval::{Bound, Frame, Row};
use crate::limits::LimitGuard;
use rdfa_model::{Term, Value};
use rdfa_store::Store;
use std::cmp::Ordering;
use std::rc::Rc;

/// Evaluate a (non-aggregate) expression against one row, unlimited.
pub fn eval_expr(expr: &Expr, row: &Row, frame: &Frame, store: &Store) -> Option<Value> {
    eval_expr_limited(expr, row, frame, store, &Rc::new(LimitGuard::unlimited()))
}

/// Guarded variant: shares the evaluator's limit guard, so `EXISTS`
/// sub-evaluations draw from the same budget as the outer query. Once the
/// guard trips, evaluation returns `None` (an expression error); the
/// evaluator surfaces the structured error at its next checkpoint.
pub(crate) fn eval_expr_limited(
    expr: &Expr,
    row: &Row,
    frame: &Frame,
    store: &Store,
    guard: &Rc<LimitGuard>,
) -> Option<Value> {
    if guard.soft_tripped() {
        return None;
    }
    match expr {
        Expr::Var(v) => {
            let slot = frame.index(v)?;
            let bound = row.get(slot)?.as_ref()?;
            Some(bound_value(bound, store))
        }
        Expr::Const(t) => Some(Value::from_term(t)),
        Expr::Or(a, b) => {
            // SPARQL ternary logic: true || error = true
            let va = eval_expr_limited(a, row, frame, store, guard).and_then(|v| v.effective_boolean());
            let vb = eval_expr_limited(b, row, frame, store, guard).and_then(|v| v.effective_boolean());
            match (va, vb) {
                (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                (Some(false), Some(false)) => Some(Value::Bool(false)),
                _ => None,
            }
        }
        Expr::And(a, b) => {
            let va = eval_expr_limited(a, row, frame, store, guard).and_then(|v| v.effective_boolean());
            let vb = eval_expr_limited(b, row, frame, store, guard).and_then(|v| v.effective_boolean());
            match (va, vb) {
                (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                (Some(true), Some(true)) => Some(Value::Bool(true)),
                _ => None,
            }
        }
        Expr::Not(e) => {
            let v = eval_expr_limited(e, row, frame, store, guard)?.effective_boolean()?;
            Some(Value::Bool(!v))
        }
        Expr::Compare(a, op, b) => {
            let va = eval_expr_limited(a, row, frame, store, guard)?;
            let vb = eval_expr_limited(b, row, frame, store, guard)?;
            compare(&va, *op, &vb).map(Value::Bool)
        }
        Expr::Arith(a, op, b) => {
            let va = eval_expr_limited(a, row, frame, store, guard)?;
            let vb = eval_expr_limited(b, row, frame, store, guard)?;
            match op {
                ArithOp::Add => va.add(&vb),
                ArithOp::Sub => va.sub(&vb),
                ArithOp::Mul => va.mul(&vb),
                ArithOp::Div => va.div(&vb),
            }
        }
        Expr::Neg(e) => {
            let v = eval_expr_limited(e, row, frame, store, guard)?;
            Value::Int(0).sub(&v)
        }
        Expr::In(e, list, negated) => {
            let v = eval_expr_limited(e, row, frame, store, guard)?;
            let mut found = false;
            for item in list {
                if let Some(vi) = eval_expr_limited(item, row, frame, store, guard) {
                    if v.value_eq(&vi) {
                        found = true;
                        break;
                    }
                }
            }
            Some(Value::Bool(found != *negated))
        }
        Expr::Call(name, args) => eval_call(name, args, row, frame, store, guard),
        Expr::Exists(group, negated) => {
            let hit = crate::eval::exists_matches(store, group, frame, row, guard);
            Some(Value::Bool(hit != *negated))
        }
        // aggregates are handled by the grouping machinery in eval.rs; seeing
        // one here means it appeared in a non-aggregate context
        Expr::Aggregate(..) => None,
    }
}

/// The typed value of a binding slot.
pub fn bound_value(bound: &Bound, store: &Store) -> Value {
    match bound {
        Bound::Id(id) => Value::from_term(store.term(*id)),
        Bound::Term(t) => Value::from_term(t),
    }
}

/// The term of a binding slot (borrowing from the store when interned).
pub fn bound_term<'a>(bound: &'a Bound, store: &'a Store) -> &'a Term {
    match bound {
        Bound::Id(id) => store.term(*id),
        Bound::Term(t) => t,
    }
}

fn compare(a: &Value, op: CompareOp, b: &Value) -> Option<bool> {
    match op {
        CompareOp::Eq => Some(a.value_eq(b)),
        CompareOp::Ne => Some(!a.value_eq(b)),
        _ => {
            let ord = a.compare(b)?;
            Some(match op {
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::Le => ord != Ordering::Greater,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::Ge => ord != Ordering::Less,
                CompareOp::Eq | CompareOp::Ne => unreachable!(),
            })
        }
    }
}

fn eval_call(
    name: &str,
    args: &[Expr],
    row: &Row,
    frame: &Frame,
    store: &Store,
    guard: &Rc<LimitGuard>,
) -> Option<Value> {
    // BOUND, IF and COALESCE need lazy/unbound-tolerant handling
    match name {
        "BOUND" => {
            if let Some(Expr::Var(v)) = args.first() {
                let slot = frame.index(v)?;
                return Some(Value::Bool(row.get(slot)?.is_some()));
            }
            return None;
        }
        "IF" => {
            let cond = eval_expr_limited(args.first()?, row, frame, store, guard)?.effective_boolean()?;
            let branch = if cond { args.get(1)? } else { args.get(2)? };
            return eval_expr_limited(branch, row, frame, store, guard);
        }
        "COALESCE" => {
            for a in args {
                if let Some(v) = eval_expr_limited(a, row, frame, store, guard) {
                    return Some(v);
                }
            }
            return None;
        }
        _ => {}
    }

    let v: Vec<Value> = args
        .iter()
        .map(|a| eval_expr_limited(a, row, frame, store, guard))
        .collect::<Option<Vec<_>>>()?;

    match name {
        // --- date component extraction (derived attributes, §4.2.4) ---
        "YEAR" => date_part(&v, |d| d.year as i64, |dt| dt.date.year as i64),
        "MONTH" => date_part(&v, |d| d.month as i64, |dt| dt.date.month as i64),
        "DAY" => date_part(&v, |d| d.day as i64, |dt| dt.date.day as i64),
        "HOURS" => match v.first()? {
            Value::DateTime(dt) => Some(Value::Int(dt.hour as i64)),
            _ => None,
        },
        "MINUTES" => match v.first()? {
            Value::DateTime(dt) => Some(Value::Int(dt.minute as i64)),
            _ => None,
        },
        "SECONDS" => match v.first()? {
            Value::DateTime(dt) => Some(Value::Int((dt.millisecond / 1000) as i64)),
            _ => None,
        },
        // --- strings ---
        "STR" => Some(Value::Str(v.first()?.render(), None)),
        "STRLEN" => match v.first()? {
            Value::Str(s, _) => Some(Value::Int(s.chars().count() as i64)),
            _ => None,
        },
        "UCASE" => str1(&v, |s| s.to_uppercase()),
        "LCASE" => str1(&v, |s| s.to_lowercase()),
        "CONTAINS" => str2(&v, |a, b| a.contains(b)),
        "STRSTARTS" => str2(&v, |a, b| a.starts_with(b)),
        "STRENDS" => str2(&v, |a, b| a.ends_with(b)),
        "STRBEFORE" => match (v.first()?, v.get(1)?) {
            (Value::Str(a, _), Value::Str(b, _)) => Some(Value::Str(
                a.find(b.as_str()).map(|i| a[..i].to_owned()).unwrap_or_default(),
                None,
            )),
            _ => None,
        },
        "STRAFTER" => match (v.first()?, v.get(1)?) {
            (Value::Str(a, _), Value::Str(b, _)) => Some(Value::Str(
                a.find(b.as_str()).map(|i| a[i + b.len()..].to_owned()).unwrap_or_default(),
                None,
            )),
            _ => None,
        },
        // REPLACE with a literal (non-regex) pattern — consistent with the
        // documented REGEX subset
        "REPLACE" => match (v.first()?, v.get(1)?, v.get(2)?) {
            (Value::Str(s, _), Value::Str(from, _), Value::Str(to, _)) => {
                Some(Value::Str(s.replace(from.as_str(), to), None))
            }
            _ => None,
        },
        "ENCODE_FOR_URI" => match v.first()? {
            Value::Str(s, _) => {
                let mut out = String::with_capacity(s.len());
                for c in s.chars() {
                    if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | '~') {
                        out.push(c);
                    } else {
                        let mut buf = [0u8; 4];
                        for b in c.encode_utf8(&mut buf).bytes() {
                            out.push_str(&format!("%{b:02X}"));
                        }
                    }
                }
                Some(Value::Str(out, None))
            }
            _ => None,
        },
        "CONCAT" => {
            let mut out = String::new();
            for x in &v {
                match x {
                    Value::Str(s, _) => out.push_str(s),
                    other => out.push_str(&other.render()),
                }
            }
            Some(Value::Str(out, None))
        }
        "SUBSTR" => {
            let s = match v.first()? {
                Value::Str(s, _) => s.clone(),
                _ => return None,
            };
            let start = v.get(1)?.as_f64()? as usize;
            let chars: Vec<char> = s.chars().collect();
            let from = start.saturating_sub(1).min(chars.len());
            let to = match v.get(2) {
                Some(len) => (from + len.as_f64()? as usize).min(chars.len()),
                None => chars.len(),
            };
            Some(Value::Str(chars[from..to].iter().collect(), None))
        }
        // REGEX with a pragmatic subset: '^'/'$' anchors around a literal
        // pattern; everything else is substring search (documented in DESIGN.md).
        "REGEX" => {
            let s = match v.first()? {
                Value::Str(s, _) => s.clone(),
                other => other.render(),
            };
            let pat = match v.get(1)? {
                Value::Str(p, _) => p.clone(),
                _ => return None,
            };
            let ci = matches!(v.get(2), Some(Value::Str(f, _)) if f.contains('i'));
            let (s, pat) = if ci { (s.to_lowercase(), pat.to_lowercase()) } else { (s, pat) };
            let anchored_start = pat.starts_with('^');
            let anchored_end = pat.ends_with('$');
            let core = pat.trim_start_matches('^').trim_end_matches('$');
            let hit = match (anchored_start, anchored_end) {
                (true, true) => s == core,
                (true, false) => s.starts_with(core),
                (false, true) => s.ends_with(core),
                (false, false) => s.contains(core),
            };
            Some(Value::Bool(hit))
        }
        // --- numerics ---
        "ABS" => num1(&v, f64::abs),
        "ROUND" => num1(&v, f64::round),
        "CEIL" => num1(&v, f64::ceil),
        "FLOOR" => num1(&v, f64::floor),
        // --- type tests ---
        "ISIRI" | "ISURI" => Some(Value::Bool(matches!(v.first()?, Value::Iri(_)))),
        "ISBLANK" => Some(Value::Bool(matches!(v.first()?, Value::Blank(_)))),
        "ISLITERAL" => Some(Value::Bool(!matches!(
            v.first()?,
            Value::Iri(_) | Value::Blank(_)
        ))),
        "ISNUMERIC" => Some(Value::Bool(v.first()?.is_numeric())),
        "LANG" => match v.first()? {
            Value::Str(_, Some(lang)) => Some(Value::Str(lang.clone(), None)),
            Value::Str(_, None) => Some(Value::Str(String::new(), None)),
            _ => None,
        },
        "DATATYPE" => {
            let t = v.first()?.to_term();
            match t {
                Term::Literal(l) => Some(Value::Iri(l.datatype)),
                _ => None,
            }
        }
        _ => None,
    }
}

fn date_part(
    v: &[Value],
    from_date: impl Fn(&rdfa_model::Date) -> i64,
    from_dt: impl Fn(&rdfa_model::DateTime) -> i64,
) -> Option<Value> {
    match v.first()? {
        Value::Date(d) => Some(Value::Int(from_date(d))),
        Value::DateTime(dt) => Some(Value::Int(from_dt(dt))),
        _ => None,
    }
}

fn str1(v: &[Value], f: impl Fn(&str) -> String) -> Option<Value> {
    match v.first()? {
        Value::Str(s, _) => Some(Value::Str(f(s), None)),
        _ => None,
    }
}

fn str2(v: &[Value], f: impl Fn(&str, &str) -> bool) -> Option<Value> {
    match (v.first()?, v.get(1)?) {
        (Value::Str(a, _), Value::Str(b, _)) => Some(Value::Bool(f(a, b))),
        _ => None,
    }
}

fn num1(v: &[Value], f: impl Fn(f64) -> f64) -> Option<Value> {
    match v.first()? {
        Value::Int(i) => Some(Value::Int(f(*i as f64) as i64)),
        Value::Float(x) => Some(Value::Float(f(*x))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::ast::{PatternElement, QueryForm};

    fn expr(text: &str) -> Expr {
        // parse via a FILTER in a dummy query
        let q = parse_query(&format!("SELECT ?x WHERE {{ ?x ?p ?o . FILTER({text}) }}")).unwrap();
        match q.form {
            QueryForm::Select(s) => s
                .where_
                .elements
                .into_iter()
                .find_map(|e| match e {
                    PatternElement::Filter(f) => Some(f),
                    _ => None,
                })
                .unwrap(),
            _ => unreachable!(),
        }
    }

    fn eval_const(text: &str) -> Option<Value> {
        let store = Store::new();
        let frame = Frame::new(vec!["x".into()]);
        let row: Row = vec![None];
        eval_expr(&expr(text), &row, &frame, &store)
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(eval_const("1 + 2 * 3"), Some(Value::Int(7)));
        assert_eq!(eval_const("(1 + 2) * 3"), Some(Value::Int(9)));
        assert_eq!(eval_const("7 / 2 > 3"), Some(Value::Bool(true)));
        assert_eq!(eval_const("-(3) < 0"), Some(Value::Bool(true)));
    }

    #[test]
    fn ternary_logic_or_with_error() {
        // ?x is unbound → error; true || error = true, error || false = error
        assert_eq!(eval_const("1 = 1 || ?x > 2"), Some(Value::Bool(true)));
        assert_eq!(eval_const("?x > 2 || 1 = 2"), None);
        assert_eq!(eval_const("?x > 2 && 1 = 2"), Some(Value::Bool(false)));
    }

    #[test]
    fn date_functions() {
        assert_eq!(
            eval_const(r#"YEAR("2021-06-10"^^<http://www.w3.org/2001/XMLSchema#date>)"#),
            Some(Value::Int(2021))
        );
        assert_eq!(
            eval_const(r#"MONTH("2021-06-10T12:00:00"^^<http://www.w3.org/2001/XMLSchema#dateTime>)"#),
            Some(Value::Int(6))
        );
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_const(r#"STRLEN("hello")"#), Some(Value::Int(5)));
        assert_eq!(
            eval_const(r#"UCASE("abc")"#),
            Some(Value::Str("ABC".into(), None))
        );
        assert_eq!(eval_const(r#"CONTAINS("laptop", "top")"#), Some(Value::Bool(true)));
        assert_eq!(
            eval_const(r#"SUBSTR("abcdef", 2, 3)"#),
            Some(Value::Str("bcd".into(), None))
        );
        assert_eq!(
            eval_const(r#"CONCAT("a", "b", STR(3))"#),
            Some(Value::Str("ab3".into(), None))
        );
    }

    #[test]
    fn regex_subset() {
        assert_eq!(eval_const(r#"REGEX("DELL-15", "DELL")"#), Some(Value::Bool(true)));
        assert_eq!(eval_const(r#"REGEX("DELL-15", "^DELL")"#), Some(Value::Bool(true)));
        assert_eq!(eval_const(r#"REGEX("DELL-15", "^15")"#), Some(Value::Bool(false)));
        assert_eq!(eval_const(r#"REGEX("DELL", "^dell$", "i")"#), Some(Value::Bool(true)));
    }

    #[test]
    fn bound_if_coalesce() {
        assert_eq!(eval_const("BOUND(?x)"), Some(Value::Bool(false)));
        assert_eq!(eval_const("IF(1 < 2, 10, 20)"), Some(Value::Int(10)));
        assert_eq!(eval_const("COALESCE(?x, 5)"), Some(Value::Int(5)));
    }

    #[test]
    fn in_and_not_in() {
        assert_eq!(eval_const("2 IN (1, 2, 3)"), Some(Value::Bool(true)));
        assert_eq!(eval_const("5 NOT IN (1, 2, 3)"), Some(Value::Bool(true)));
    }

    #[test]
    fn type_tests() {
        assert_eq!(eval_const("ISNUMERIC(3)"), Some(Value::Bool(true)));
        assert_eq!(eval_const(r#"ISLITERAL("x")"#), Some(Value::Bool(true)));
        assert_eq!(eval_const("ISIRI(<http://e/a>)"), Some(Value::Bool(true)));
    }

    #[test]
    fn numeric_rounding() {
        assert_eq!(eval_const("ABS(-3)"), Some(Value::Int(3)));
        assert_eq!(eval_const("CEIL(2.1)"), Some(Value::Float(3.0)));
        assert_eq!(eval_const("FLOOR(2.9)"), Some(Value::Float(2.0)));
        assert_eq!(eval_const("ROUND(2.5)"), Some(Value::Float(3.0)));
    }
}
