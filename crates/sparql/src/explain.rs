//! Query plans: a human-readable EXPLAIN of how the evaluator will run a
//! query — which BGP order the selectivity heuristic chose, with its
//! cardinality estimates. Used by the join-order ablation and by anyone
//! debugging a slow interaction query (§6.4).

use crate::ast::*;
use crate::eval::{EvalOptions, Evaluator, Frame};
use crate::parser::parse_query;
use crate::SparqlError;
use rdfa_store::Store;

/// One planned BGP step.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedPattern {
    /// Position in the original query text (0-based).
    pub source_index: usize,
    /// Execution position chosen by the planner.
    pub execution_order: usize,
    /// Static cardinality estimate (constants only, capped scan).
    pub estimate: f64,
    /// Rendering of the pattern.
    pub pattern: String,
}

/// The plan of one query: the ordered BGP steps plus structural notes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    pub steps: Vec<PlannedPattern>,
    /// Non-BGP elements in evaluation order (OPTIONAL, UNION, FILTER, …).
    pub notes: Vec<String>,
}

impl Plan {
    /// Render the plan as text.
    pub fn to_text(&self) -> String {
        let mut out = String::from("plan:\n");
        for s in &self.steps {
            out.push_str(&format!(
                "  {:>2}. {:<60} est {:>8.0}  (source #{})\n",
                s.execution_order + 1,
                s.pattern,
                s.estimate,
                s.source_index + 1
            ));
        }
        for n in &self.notes {
            out.push_str(&format!("   + {n}\n"));
        }
        out
    }
}

/// Explain how a SELECT query's top-level group would be evaluated.
pub fn explain(store: &Store, text: &str, options: EvalOptions) -> Result<Plan, SparqlError> {
    let query = parse_query(text)?;
    let where_ = match &query.form {
        QueryForm::Select(q) => &q.where_,
        QueryForm::Construct { where_, .. } => where_,
        QueryForm::Ask(w) => w,
        QueryForm::Describe(_) => return Ok(Plan::default()),
    };
    let mut frame = Frame::default();
    Evaluator::collect_vars(where_, &mut frame);
    let ev = Evaluator::with_options(store, options.clone());

    let mut plan = Plan::default();
    // gather the first maximal BGP run, as eval_group does
    let bgp: Vec<&TriplePattern> = where_
        .elements
        .iter()
        .take_while(|e| matches!(e, PatternElement::Triple(_)))
        .filter_map(|e| match e {
            PatternElement::Triple(t) => Some(t),
            _ => None,
        })
        .collect();
    let order = if options.reorder_bgp {
        ev.plan_bgp_public(&bgp, &frame)
    } else {
        (0..bgp.len()).collect()
    };
    for (exec, &src) in order.iter().enumerate() {
        plan.steps.push(PlannedPattern {
            source_index: src,
            execution_order: exec,
            estimate: ev.estimate_public(bgp[src]),
            pattern: render_pattern(bgp[src]),
        });
    }
    if !options.limits.is_unlimited() {
        plan.notes.push(format!("limits: {}", options.limits));
    }
    for e in where_.elements.iter().skip(bgp.len()) {
        plan.notes.push(match e {
            PatternElement::Triple(t) => format!("then BGP: {}", render_pattern(t)),
            PatternElement::Filter(_) => "FILTER (applied at group end)".to_owned(),
            PatternElement::Optional(_) => "OPTIONAL (left join)".to_owned(),
            PatternElement::Union(arms) => format!("UNION of {} arms", arms.len()),
            PatternElement::Bind(_, v) => format!("BIND → ?{v}"),
            PatternElement::Values(vars, rows) => {
                format!("VALUES over {} vars × {} rows", vars.len(), rows.len())
            }
            PatternElement::SubSelect(_) => "sub-SELECT (hash join)".to_owned(),
            PatternElement::Minus(_) => "MINUS (anti join)".to_owned(),
            PatternElement::Group(_) => "nested group".to_owned(),
        });
    }
    Ok(plan)
}

fn render_pattern(t: &TriplePattern) -> String {
    let term = |tp: &TermPattern| match tp {
        TermPattern::Var(v) => format!("?{v}"),
        TermPattern::Term(t) => t.display_name(),
    };
    let pred = match &t.predicate {
        PathOrVar::Var(v) => format!("?{v}"),
        PathOrVar::Path(PropertyPath::Iri(iri)) => rdfa_model::term::local_name(iri).to_owned(),
        PathOrVar::Path(p) => format!("{p:?}"),
    };
    format!("{} {} {}", term(&t.subject), pred, term(&t.object))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(
            r#"@prefix ex: <http://e/> .
               ex:l1 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 900 .
               ex:l2 a ex:Laptop ; ex:manufacturer ex:DELL ; ex:price 1000 .
               ex:l3 a ex:Laptop ; ex:manufacturer ex:ACER ; ex:price 820 .
               ex:DELL ex:origin ex:USA .
            "#,
        )
        .unwrap();
        s
    }

    const Q: &str = r#"PREFIX ex: <http://e/>
        SELECT ?x WHERE {
          ?x a ex:Laptop .
          ?x ex:manufacturer ?m .
          ?m ex:origin ex:USA .
          FILTER(?x != ex:l9)
        }"#;

    #[test]
    fn selective_pattern_first() {
        let s = store();
        let plan = explain(&s, Q, EvalOptions::default()).unwrap();
        assert_eq!(plan.steps.len(), 3);
        // the origin=USA pattern (1 match) should run first
        assert!(plan.steps[0].pattern.contains("origin"), "{:?}", plan.steps);
        assert_eq!(plan.steps[0].estimate, 1.0);
        assert!(plan.notes.iter().any(|n| n.contains("FILTER")));
    }

    #[test]
    fn naive_order_preserves_source_order() {
        let s = store();
        let plan = explain(&s, Q, EvalOptions { reorder_bgp: false, ..Default::default() }).unwrap();
        let order: Vec<usize> = plan.steps.iter().map(|p| p.source_index).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn plan_renders_text() {
        let s = store();
        let text = explain(&s, Q, EvalOptions::default()).unwrap().to_text();
        assert!(text.contains("plan:"));
        assert!(text.contains("est"));
    }

    #[test]
    fn plan_reports_limits_in_force() {
        use crate::limits::EvalLimits;
        use std::time::Duration;
        let s = store();
        let options = EvalOptions {
            limits: EvalLimits::default()
                .with_deadline(Duration::from_millis(100))
                .with_max_rows(10_000),
            ..Default::default()
        };
        let plan = explain(&s, Q, options).unwrap();
        let note = plan.notes.iter().find(|n| n.starts_with("limits:")).unwrap();
        assert!(note.contains("deadline 100ms"), "{note}");
        assert!(note.contains("rows <= 10000"), "{note}");
        // unlimited runs stay silent
        let silent = explain(&s, Q, EvalOptions::default()).unwrap();
        assert!(!silent.notes.iter().any(|n| n.starts_with("limits:")));
    }
}
