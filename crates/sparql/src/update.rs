//! SPARQL 1.1 Update subset: `INSERT DATA`, `DELETE DATA`, `DELETE WHERE`,
//! and `DELETE … INSERT … WHERE …` (the `Modify` form). Operations may be
//! chained with `;`.
//!
//! Updates are how derived features (Table 4.1) and reloaded answers can be
//! written back into a store through the standard protocol surface instead
//! of the Rust API.

use crate::ast::{GroupPattern, PathOrVar, PropertyPath, TermPattern, TriplePattern};
use crate::eval::{Evaluator, Frame};
use crate::expr::bound_term;
use crate::parser::parse_update_ops;
use crate::SparqlError;
use rdfa_model::{Term, Triple};
use rdfa_store::{Mutation, Store};

/// One update operation.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// `INSERT DATA { ground triples }`
    InsertData(Vec<Triple>),
    /// `DELETE DATA { ground triples }`
    DeleteData(Vec<Triple>),
    /// `DELETE WHERE { pattern }` — the pattern is both template and WHERE.
    DeleteWhere(Vec<TriplePattern>),
    /// `DELETE { t } INSERT { t } WHERE { pattern }` (either part optional).
    Modify {
        delete: Vec<TriplePattern>,
        insert: Vec<TriplePattern>,
        where_: GroupPattern,
    },
}

/// Result summary of an update request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    pub inserted: usize,
    pub deleted: usize,
}

/// Parse and execute an update request against a store. The RDFS closure is
/// re-materialized once at the end.
pub fn execute_update(store: &mut Store, text: &str) -> Result<UpdateStats, SparqlError> {
    execute_update_recording(store, text).map(|(stats, _)| stats)
}

/// Like [`execute_update`], additionally returning the concrete triple
/// changes that took effect, in application order. A durable caller logs
/// these as one atomic WAL batch — replay then never needs to re-run the
/// SPARQL (WHERE-form updates are not idempotent over a recovered store).
pub fn execute_update_recording(
    store: &mut Store,
    text: &str,
) -> Result<(UpdateStats, Vec<Mutation>), SparqlError> {
    let ops = parse_update_ops(text)?;
    let mut stats = UpdateStats::default();
    let mut changes = Vec::new();
    for op in &ops {
        apply(store, op, &mut stats, &mut changes)?;
    }
    store.materialize_inference();
    Ok((stats, changes))
}

fn apply(
    store: &mut Store,
    op: &UpdateOp,
    stats: &mut UpdateStats,
    changes: &mut Vec<Mutation>,
) -> Result<(), SparqlError> {
    match op {
        UpdateOp::InsertData(triples) => {
            for t in triples {
                if store.insert(t) {
                    stats.inserted += 1;
                    changes.push(Mutation::Insert(t.clone()));
                }
            }
        }
        UpdateOp::DeleteData(triples) => {
            for t in triples {
                if let (Some(s), Some(p), Some(o)) = (
                    store.lookup(&t.subject),
                    store.lookup(&t.predicate),
                    store.lookup(&t.object),
                ) {
                    if store.remove_ids([s, p, o]) {
                        stats.deleted += 1;
                        changes.push(Mutation::Remove(t.clone()));
                    }
                }
            }
        }
        UpdateOp::DeleteWhere(patterns) => {
            let where_ = GroupPattern {
                elements: patterns
                    .iter()
                    .cloned()
                    .map(crate::ast::PatternElement::Triple)
                    .collect(),
            };
            let deletions = instantiate_all(store, patterns, &where_)?;
            for t in deletions {
                if remove_triple(store, &t) {
                    stats.deleted += 1;
                    changes.push(Mutation::Remove(t));
                }
            }
        }
        UpdateOp::Modify { delete, insert, where_ } => {
            let deletions = instantiate_all(store, delete, where_)?;
            let insertions = instantiate_all(store, insert, where_)?;
            for t in deletions {
                if remove_triple(store, &t) {
                    stats.deleted += 1;
                    changes.push(Mutation::Remove(t));
                }
            }
            for t in insertions {
                if store.insert(&t) {
                    stats.inserted += 1;
                    changes.push(Mutation::Insert(t));
                }
            }
        }
    }
    Ok(())
}

fn remove_triple(store: &mut Store, t: &Triple) -> bool {
    match (store.lookup(&t.subject), store.lookup(&t.predicate), store.lookup(&t.object)) {
        (Some(s), Some(p), Some(o)) => store.remove_ids([s, p, o]),
        _ => false,
    }
}

/// Evaluate the WHERE pattern and instantiate the template for each row.
fn instantiate_all(
    store: &Store,
    template: &[TriplePattern],
    where_: &GroupPattern,
) -> Result<Vec<Triple>, SparqlError> {
    if template.is_empty() {
        return Ok(Vec::new());
    }
    let mut frame = Frame::default();
    Evaluator::collect_vars(where_, &mut frame);
    let ev = Evaluator::new(store);
    let rows = ev.eval_group(where_, &frame, vec![vec![None; frame.len()]])?;
    let mut out = Vec::new();
    for row in &rows {
        for tp in template {
            let resolve = |pat: &TermPattern| -> Option<Term> {
                match pat {
                    TermPattern::Term(t) => Some(t.clone()),
                    TermPattern::Var(v) => frame
                        .index(v)
                        .and_then(|i| row.get(i))
                        .and_then(|b| b.as_ref())
                        .map(|b| bound_term(b, store).clone()),
                }
            };
            let p = match &tp.predicate {
                PathOrVar::Path(PropertyPath::Iri(iri)) => Some(Term::iri(iri.clone())),
                PathOrVar::Var(v) => frame
                    .index(v)
                    .and_then(|i| row.get(i))
                    .and_then(|b| b.as_ref())
                    .map(|b| bound_term(b, store).clone()),
                PathOrVar::Path(_) => None,
            };
            if let (Some(s), Some(p), Some(o)) = (resolve(&tp.subject), p, resolve(&tp.object)) {
                out.push(Triple::new(s, p, o));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:l1 a ex:Laptop ; ex:price 900 .
               ex:l2 a ex:Laptop ; ex:price 1000 .
            "#
        ))
        .unwrap();
        s
    }

    #[test]
    fn insert_data() {
        let mut s = store();
        let stats = execute_update(
            &mut s,
            &format!("PREFIX ex: <{EX}> INSERT DATA {{ ex:l3 a ex:Laptop ; ex:price 820 . }}"),
        )
        .unwrap();
        assert_eq!(stats.inserted, 2);
        let laptop = s.lookup_iri(&format!("{EX}Laptop")).unwrap();
        assert_eq!(s.instances(laptop).len(), 3);
    }

    #[test]
    fn delete_data() {
        let mut s = store();
        let stats = execute_update(
            &mut s,
            &format!("PREFIX ex: <{EX}> DELETE DATA {{ ex:l1 ex:price 900 . }}"),
        )
        .unwrap();
        assert_eq!(stats.deleted, 1);
        // deleting an absent triple is a no-op
        let stats2 = execute_update(
            &mut s,
            &format!("PREFIX ex: <{EX}> DELETE DATA {{ ex:l1 ex:price 900 . }}"),
        )
        .unwrap();
        assert_eq!(stats2.deleted, 0);
    }

    #[test]
    fn delete_where() {
        let mut s = store();
        let stats = execute_update(
            &mut s,
            &format!("PREFIX ex: <{EX}> DELETE WHERE {{ ?x ex:price ?p . }}"),
        )
        .unwrap();
        assert_eq!(stats.deleted, 2);
        let price = s.lookup_iri(&format!("{EX}price")).unwrap();
        assert_eq!(s.matching(None, Some(price), None).count(), 0);
    }

    #[test]
    fn modify_rewrites_values() {
        let mut s = store();
        // apply a 10% discount to everything over 950
        let stats = execute_update(
            &mut s,
            &format!(
                "PREFIX ex: <{EX}> DELETE {{ ?x ex:price ?p . }} INSERT {{ ?x ex:discounted true . }} WHERE {{ ?x ex:price ?p . FILTER(?p > 950) }}"
            ),
        )
        .unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.inserted, 1);
        let disc = s.lookup_iri(&format!("{EX}discounted")).unwrap();
        assert_eq!(s.matching(None, Some(disc), None).count(), 1);
    }

    #[test]
    fn chained_operations() {
        let mut s = store();
        let stats = execute_update(
            &mut s,
            &format!(
                "PREFIX ex: <{EX}>\nINSERT DATA {{ ex:l3 ex:price 500 . }} ;\nDELETE DATA {{ ex:l1 ex:price 900 . }}"
            ),
        )
        .unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 1);
    }

    #[test]
    fn recording_captures_effective_changes_in_order() {
        let mut s = store();
        let (stats, changes) = execute_update_recording(
            &mut s,
            &format!(
                "PREFIX ex: <{EX}> DELETE {{ ?x ex:price ?p . }} INSERT {{ ?x ex:cheap true . }} WHERE {{ ?x ex:price ?p . FILTER(?p < 950) }}"
            ),
        )
        .unwrap();
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(changes.len(), 2);
        assert!(matches!(&changes[0], Mutation::Remove(t) if t.predicate == Term::iri(format!("{EX}price"))));
        assert!(matches!(&changes[1], Mutation::Insert(t) if t.predicate == Term::iri(format!("{EX}cheap"))));
        // replaying the recorded changes on a fresh copy converges to the
        // same store — the property the WAL relies on
        let mut replica = store();
        for m in &changes {
            match m {
                Mutation::Insert(t) => {
                    replica.insert(t);
                }
                Mutation::Remove(t) => {
                    let ids = (
                        replica.lookup(&t.subject),
                        replica.lookup(&t.predicate),
                        replica.lookup(&t.object),
                    );
                    if let (Some(a), Some(b), Some(c)) = ids {
                        replica.remove_ids([a, b, c]);
                    }
                }
            }
        }
        replica.materialize_inference();
        assert_eq!(replica.len(), s.len());
    }

    #[test]
    fn recording_skips_no_op_changes() {
        let mut s = store();
        let (_, changes) = execute_update_recording(
            &mut s,
            &format!("PREFIX ex: <{EX}> DELETE DATA {{ ex:nope ex:price 1 . }} ;\nINSERT DATA {{ ex:l1 ex:price 900 . }}"),
        )
        .unwrap();
        assert!(changes.is_empty(), "{changes:?}");
    }

    #[test]
    fn closure_refreshed_after_update() {
        let mut s = Store::new();
        s.load_turtle(&format!(
            "@prefix ex: <{EX}> . @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> . ex:Laptop rdfs:subClassOf ex:Product ."
        ))
        .unwrap();
        execute_update(
            &mut s,
            &format!("PREFIX ex: <{EX}> INSERT DATA {{ ex:l9 a ex:Laptop . }}"),
        )
        .unwrap();
        let product = s.lookup_iri(&format!("{EX}Product")).unwrap();
        assert_eq!(s.instances(product).len(), 1);
        assert!(!s.is_dirty());
    }
}
