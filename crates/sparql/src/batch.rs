//! Columnar batches over the store's interned ID space.
//!
//! The physical plan ([`crate::plan`]) evaluates entirely over packed
//! 32-bit execution ids ([`EId`]): joins compare integers, hash grouping
//! hashes integers, and terms are materialized only once, at the
//! [`crate::results::Solutions`] boundary (late materialization).
//!
//! Three kinds of execution id share the `u32` space:
//!
//! * **store ids** — the store's own [`TermId`]s, `< LOCAL_BIT`;
//! * **local ids** — terms computed at runtime (`BIND`, `VALUES`,
//!   canonicalized group keys) that are not in the store, allocated from a
//!   per-execution [`TermArena`] and tagged with the high bit;
//! * **`UNBOUND`** — the `u32::MAX` sentinel for an unbound slot.
//!
//! The arena interns store-first, so two equal terms always map to the same
//! execution id and `EId` equality coincides with term equality.

use rdfa_model::Term;
use rdfa_store::{Store, TermId};
use std::collections::HashMap;

/// Packed execution id (see module docs for the encoding).
pub type EId = u32;

/// Sentinel for an unbound slot.
pub const UNBOUND: EId = u32::MAX;

/// High bit distinguishing arena-local ids from store ids.
const LOCAL_BIT: u32 = 1 << 31;

/// Pack a store [`TermId`] into the execution-id space.
#[inline]
pub fn pack_store(id: TermId) -> EId {
    debug_assert!(id.0 < LOCAL_BIT, "store id overflows the EId space");
    id.0
}

/// True when the id denotes an arena-local (computed) term.
#[inline]
pub fn is_local(id: EId) -> bool {
    id != UNBOUND && id & LOCAL_BIT != 0
}

/// The store [`TermId`] behind an execution id, when it has one.
#[inline]
pub fn as_store(id: EId) -> Option<TermId> {
    if id == UNBOUND || id & LOCAL_BIT != 0 {
        None
    } else {
        Some(TermId(id))
    }
}

/// Append-only side table for terms computed during execution that the
/// store has never seen. Interning is canonical: the store is consulted
/// first, and equal terms always receive the same execution id.
#[derive(Debug, Default)]
pub struct TermArena {
    terms: Vec<Term>,
    ids: HashMap<Term, u32>,
}

impl TermArena {
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical execution id for a term (store id when interned there).
    pub fn intern(&mut self, store: &Store, term: &Term) -> EId {
        if let Some(id) = store.lookup(term) {
            return pack_store(id);
        }
        if let Some(&idx) = self.ids.get(term) {
            return LOCAL_BIT | idx;
        }
        let idx = self.terms.len() as u32;
        debug_assert!(idx < LOCAL_BIT, "arena overflow");
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), idx);
        LOCAL_BIT | idx
    }

    /// Resolve an execution id back to a term. Panics on [`UNBOUND`].
    pub fn term<'a>(&'a self, store: &'a Store, id: EId) -> &'a Term {
        debug_assert_ne!(id, UNBOUND, "cannot resolve the unbound sentinel");
        if id & LOCAL_BIT != 0 {
            &self.terms[(id & !LOCAL_BIT) as usize]
        } else {
            store.term(TermId(id))
        }
    }

    /// Number of locally interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A columnar batch of solution rows: one `Vec<EId>` per frame slot, plus a
/// provenance column mapping each row back to the input row of the nearest
/// enclosing `OPTIONAL` (used to merge extended and unmatched rows in the
/// original row order).
#[derive(Debug, Clone)]
pub struct Batch {
    cols: Vec<Vec<EId>>,
    prov: Vec<u32>,
}

impl Batch {
    /// An empty batch with `width` columns.
    pub fn new(width: usize) -> Self {
        Batch { cols: vec![Vec::new(); width], prov: Vec::new() }
    }

    /// The unit seed: a single all-unbound row (the identity of join).
    pub fn seed(width: usize) -> Self {
        Batch { cols: vec![vec![UNBOUND]; width], prov: vec![0] }
    }

    /// Number of columns (frame slots).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.prov.len()
    }

    pub fn is_empty(&self) -> bool {
        self.prov.is_empty()
    }

    /// Value at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> EId {
        self.cols[col][row]
    }

    /// Overwrite the value at `(row, col)` (BIND).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, id: EId) {
        self.cols[col][row] = id;
    }

    /// One column as a slice.
    pub fn column(&self, col: usize) -> &[EId] {
        &self.cols[col]
    }

    /// Provenance of one row.
    #[inline]
    pub fn prov(&self, row: usize) -> u32 {
        self.prov[row]
    }

    /// Reset provenance to the identity (entering an `OPTIONAL`).
    pub fn reset_prov(&mut self) {
        self.prov = (0..self.len() as u32).collect();
    }

    /// Append a copy of `src`'s row `row`, with `overrides` applied
    /// (slot, id) and provenance copied from the source row.
    pub fn push_row_from(&mut self, src: &Batch, row: usize, overrides: &[(usize, EId)]) {
        for (c, col) in self.cols.iter_mut().enumerate() {
            col.push(src.cols[c][row]);
        }
        for &(slot, id) in overrides {
            let r = self.prov.len();
            self.cols[slot][r] = id;
        }
        self.prov.push(src.prov[row]);
    }

    /// Append one full row with explicit provenance.
    pub fn push_row(&mut self, row: &[EId], prov: u32) {
        debug_assert_eq!(row.len(), self.width());
        for (c, col) in self.cols.iter_mut().enumerate() {
            col.push(row[c]);
        }
        self.prov.push(prov);
    }

    /// Keep only the rows whose index passes `keep` (order-preserving).
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len());
        for col in &mut self.cols {
            let mut i = 0;
            col.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
        }
        let mut i = 0;
        self.prov.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Append every row of `other` (columns must line up).
    pub fn append(&mut self, other: &Batch) {
        debug_assert_eq!(self.width(), other.width());
        for (c, col) in self.cols.iter_mut().enumerate() {
            col.extend_from_slice(&other.cols[c]);
        }
        self.prov.extend_from_slice(&other.prov);
    }

    /// Copy one row out as a dense vector.
    pub fn row(&self, row: usize) -> Vec<EId> {
        self.cols.iter().map(|c| c[row]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_interns_store_first_and_is_canonical() {
        let mut store = Store::new();
        store
            .load_turtle("@prefix ex: <http://example.org/> . ex:a ex:p 5 .")
            .unwrap();
        let mut arena = TermArena::new();
        let a = arena.intern(&store, &Term::iri("http://example.org/a"));
        assert!(!is_local(a), "stored term must map to its store id");
        assert_eq!(as_store(a), store.lookup(&Term::iri("http://example.org/a")));
        let n1 = arena.intern(&store, &Term::integer(42));
        let n2 = arena.intern(&store, &Term::integer(42));
        assert!(is_local(n1));
        assert_eq!(n1, n2, "equal terms must share one execution id");
        assert_eq!(arena.term(&store, n1), &Term::integer(42));
        assert_eq!(arena.term(&store, a), &Term::iri("http://example.org/a"));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn batch_retain_and_append_keep_rows_aligned() {
        let mut b = Batch::new(2);
        b.push_row(&[1, 2], 0);
        b.push_row(&[3, UNBOUND], 1);
        b.push_row(&[5, 6], 2);
        b.retain_rows(&[true, false, true]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(1), vec![5, 6]);
        assert_eq!(b.prov(1), 2);
        let mut c = Batch::new(2);
        c.push_row(&[7, 8], 9);
        b.append(&c);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row(2), vec![7, 8]);
        assert_eq!(b.prov(2), 9);
    }

    #[test]
    fn seed_is_single_unbound_row() {
        let s = Batch::seed(3);
        assert_eq!(s.len(), 1);
        assert_eq!(s.row(0), vec![UNBOUND, UNBOUND, UNBOUND]);
    }
}
