//! The public query interface: parse + evaluate in one call.

use crate::ast::QueryForm;
use crate::eval::{EvalOptions, Evaluator};
use crate::limits::EvalLimits;
use crate::parser::parse_query;
use crate::results::QueryResults;
use crate::SparqlError;
use rdfa_store::Store;

/// A query engine bound to a store.
pub struct Engine<'s> {
    store: &'s Store,
    options: EvalOptions,
}

impl<'s> Engine<'s> {
    /// Engine with default options (BGP reordering on, no limits).
    pub fn new(store: &'s Store) -> Self {
        Engine { store, options: EvalOptions::default() }
    }

    /// Engine with explicit evaluation options.
    pub fn with_options(store: &'s Store, options: EvalOptions) -> Self {
        Engine { store, options }
    }

    /// Engine with default options plus a resource budget. The limit clock
    /// starts per query, not at engine construction.
    pub fn with_limits(store: &'s Store, limits: EvalLimits) -> Self {
        Engine { store, options: EvalOptions { limits, ..EvalOptions::default() } }
    }

    /// Parse and evaluate a query.
    pub fn query(&self, text: &str) -> Result<QueryResults, SparqlError> {
        let query = parse_query(text)?;
        let ev = Evaluator::with_options(self.store, self.options);
        match query.form {
            QueryForm::Select(q) => Ok(QueryResults::Solutions(ev.eval_select(&q)?)),
            QueryForm::Construct { template, where_ } => {
                Ok(QueryResults::Graph(ev.eval_construct(&template, &where_)?))
            }
            QueryForm::Ask(where_) => Ok(QueryResults::Boolean(ev.eval_ask(&where_)?)),
            QueryForm::Describe(resources) => {
                Ok(QueryResults::Graph(self.describe(&resources)))
            }
        }
    }

    /// Concise bounded description: outgoing triples of each resource,
    /// expanded recursively through blank-node objects.
    fn describe(&self, resources: &[rdfa_model::Term]) -> rdfa_model::Graph {
        use rdfa_model::{Graph, Term, Triple};
        let mut graph = Graph::new();
        let mut queue: Vec<rdfa_store::TermId> =
            resources.iter().filter_map(|t| self.store.lookup(t)).collect();
        let mut seen: std::collections::HashSet<rdfa_store::TermId> =
            queue.iter().copied().collect();
        while let Some(s) = queue.pop() {
            for [s2, p, o] in self.store.matching_explicit(Some(s), None, None) {
                graph.push(Triple::new(
                    self.store.term(s2).clone(),
                    self.store.term(p).clone(),
                    self.store.term(o).clone(),
                ));
                if matches!(self.store.term(o), Term::Blank(_)) && seen.insert(o) {
                    queue.push(o);
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::{Term, Value};

    const DATA: &str = r#"
        @prefix ex: <http://example.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Laptop rdfs:subClassOf ex:Product .
        ex:l1 a ex:Laptop ; ex:price 900 ; ex:manufacturer ex:DELL ;
              ex:releaseDate "2021-06-10"^^xsd:date ; ex:usb 2 .
        ex:l2 a ex:Laptop ; ex:price 1000 ; ex:manufacturer ex:DELL ;
              ex:releaseDate "2020-03-01"^^xsd:date ; ex:usb 4 .
        ex:l3 a ex:Laptop ; ex:price 820 ; ex:manufacturer ex:ACER ;
              ex:releaseDate "2021-09-03"^^xsd:date ; ex:usb 2 .
        ex:DELL ex:origin ex:USA .
        ex:ACER ex:origin ex:Taiwan .
        ex:inv1 ex:takesPlaceAt ex:branch1 ; ex:inQuantity 200 ; ex:delivers ex:p1 .
        ex:inv2 ex:takesPlaceAt ex:branch1 ; ex:inQuantity 100 ; ex:delivers ex:p2 .
        ex:inv3 ex:takesPlaceAt ex:branch2 ; ex:inQuantity 400 ; ex:delivers ex:p1 .
    "#;

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(DATA).unwrap();
        s
    }

    fn rows(store: &Store, q: &str) -> crate::results::Solutions {
        Engine::new(store)
            .query(q)
            .unwrap_or_else(|e| panic!("{e}: {q}"))
            .into_solutions()
            .unwrap()
    }

    #[test]
    fn basic_select() {
        let s = store();
        let r = rows(&s, "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . }");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn inference_visible_to_queries() {
        let s = store();
        let r = rows(&s, "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Product . }");
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn join_and_filter() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE { ?x a ex:Laptop ; ex:price ?p . FILTER(?p < 950) }"#,
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn group_by_with_avg() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?m (AVG(?p) AS ?avg)
               WHERE { ?x ex:manufacturer ?m ; ex:price ?p . }
               GROUP BY ?m ORDER BY ?m"#,
        );
        assert_eq!(r.rows.len(), 2);
        // ACER first alphabetically
        assert_eq!(r.rows[0][0], Some(Term::iri("http://example.org/ACER")));
        let avg = Value::from_term(r.rows[0][1].as_ref().unwrap());
        assert!(avg.value_eq(&Value::Float(820.0)));
        let avg_dell = Value::from_term(r.rows[1][1].as_ref().unwrap());
        assert!(avg_dell.value_eq(&Value::Float(950.0)));
    }

    #[test]
    fn sum_count_min_max() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (SUM(?q) AS ?s) (COUNT(?q) AS ?c) (MIN(?q) AS ?lo) (MAX(?q) AS ?hi)
               WHERE { ?i ex:inQuantity ?q . }"#,
        );
        assert_eq!(r.rows.len(), 1);
        let get = |i: usize| Value::from_term(r.rows[0][i].as_ref().unwrap());
        assert!(get(0).value_eq(&Value::Int(700)));
        assert!(get(1).value_eq(&Value::Int(3)));
        assert!(get(2).value_eq(&Value::Int(100)));
        assert!(get(3).value_eq(&Value::Int(400)));
    }

    #[test]
    fn having_clause() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?b (SUM(?q) AS ?t)
               WHERE { ?i ex:takesPlaceAt ?b ; ex:inQuantity ?q . }
               GROUP BY ?b
               HAVING (SUM(?q) > 300)"#,
        );
        // branch1 totals 300 (excluded by > 300); branch2 totals 400 (kept)
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Some(Term::iri("http://example.org/branch2")));
    }

    #[test]
    fn having_excludes_at_threshold() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?b (SUM(?q) AS ?t)
               WHERE { ?i ex:takesPlaceAt ?b ; ex:inQuantity ?q . }
               GROUP BY ?b HAVING (SUM(?q) >= 400)"#,
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Some(Term::iri("http://example.org/branch2")));
    }

    #[test]
    fn property_path_in_query() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE { ?x ex:manufacturer/ex:origin ex:USA . }"#,
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?o WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL { ?x ex:nonexistent ?o . }
               }"#,
        );
        assert_eq!(r.rows.len(), 3);
        assert!(r.rows.iter().all(|row| row[1].is_none()));
    }

    #[test]
    fn union_merges() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 { ?x ex:manufacturer ex:DELL . } UNION { ?x ex:manufacturer ex:ACER . }
               }"#,
        );
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn date_filter_matches_paper_fig_1_3_style() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT ?x WHERE {
                 ?x ex:releaseDate ?rd .
                 FILTER(?rd >= "2021-01-01"^^xsd:date && ?rd <= "2021-12-31"^^xsd:date)
               }"#,
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn year_derived_attribute_group() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (YEAR(?rd) AS ?y) (COUNT(*) AS ?n)
               WHERE { ?x ex:releaseDate ?rd . }
               GROUP BY YEAR(?rd) ORDER BY ?y"#,
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Some(Term::integer(2020)));
        assert_eq!(r.rows[1][1], Some(Term::integer(2)));
    }

    #[test]
    fn distinct_dedups() {
        let s = store();
        let r = rows(
            &s,
            "PREFIX ex: <http://example.org/> SELECT DISTINCT ?m WHERE { ?x ex:manufacturer ?m . }",
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn order_limit_offset() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p WHERE { ?x ex:price ?p . } ORDER BY DESC(?p) LIMIT 2"#,
        );
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], Some(Term::integer(1000)));
        let r2 = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p WHERE { ?x ex:price ?p . } ORDER BY ?p OFFSET 1 LIMIT 1"#,
        );
        assert_eq!(r2.rows[0][1], Some(Term::integer(900)));
    }

    #[test]
    fn subselect_join() {
        let s = store();
        // total per branch via subselect, then restrict to branches over 300
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?b ?t WHERE {
                 { SELECT ?b (SUM(?q) AS ?t)
                   WHERE { ?i ex:takesPlaceAt ?b ; ex:inQuantity ?q . } GROUP BY ?b }
                 FILTER(?t >= 400)
               }"#,
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Some(Term::iri("http://example.org/branch2")));
    }

    #[test]
    fn bind_extends_rows() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p2 WHERE { ?x ex:price ?p . BIND(?p * 2 AS ?p2) } ORDER BY ?p2"#,
        );
        assert_eq!(r.rows[0][1], Some(Term::integer(1640)));
    }

    #[test]
    fn values_restricts() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE { ?x ex:manufacturer ?m . VALUES ?m { ex:ACER } }"#,
        );
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn construct_derives_graph() {
        let s = store();
        let g = Engine::new(&s)
            .query(
                r#"PREFIX ex: <http://example.org/>
                   CONSTRUCT { ?x ex:cheap true }
                   WHERE { ?x ex:price ?p . FILTER(?p < 900) }"#,
            )
            .unwrap();
        let graph = g.graph().unwrap();
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn ask_query() {
        let s = store();
        let yes = Engine::new(&s)
            .query("PREFIX ex: <http://example.org/> ASK WHERE { ?x ex:price 900 . }")
            .unwrap();
        assert_eq!(yes.boolean(), Some(true));
        let no = Engine::new(&s)
            .query("PREFIX ex: <http://example.org/> ASK WHERE { ?x ex:price 1 . }")
            .unwrap();
        assert_eq!(no.boolean(), Some(false));
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let s = store();
        let r = rows(
            &s,
            "PREFIX ex: <http://example.org/> SELECT (COUNT(*) AS ?n) WHERE { ?x ex:missing ?y . }",
        );
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Some(Term::integer(0)));
    }

    #[test]
    fn variable_predicate() {
        let s = store();
        let r = rows(
            &s,
            "PREFIX ex: <http://example.org/> SELECT DISTINCT ?p WHERE { ex:l1 ?p ?o . }",
        );
        assert!(r.rows.len() >= 5);
    }

    #[test]
    fn reorder_matches_naive_results() {
        let s = store();
        let q = r#"PREFIX ex: <http://example.org/>
            SELECT ?x ?m WHERE {
              ?x a ex:Laptop . ?x ex:manufacturer ?m . ?m ex:origin ex:USA .
            } ORDER BY ?x"#;
        let fast = rows(&s, q);
        let naive = Engine::with_options(&s, EvalOptions { reorder_bgp: false, ..Default::default() })
            .query(q)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn group_concat_and_sample() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (GROUP_CONCAT(?m) AS ?ms) (SAMPLE(?m) AS ?one)
               WHERE { ?x ex:manufacturer ?m . }"#,
        );
        let joined = r.rows[0][0].as_ref().unwrap().display_name();
        assert!(joined.contains("DELL"));
        assert!(r.rows[0][1].is_some());
    }

    #[test]
    fn filter_scoped_to_whole_group_regardless_of_position() {
        // the FILTER references ?p although it appears before the pattern
        // binding ?p — SPARQL scopes filters to the group, not the prefix
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 FILTER(?p > 900)
                 ?x ex:price ?p .
               }"#,
        );
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn nested_optional() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?c ?o WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL {
                   ?x ex:manufacturer ?c .
                   OPTIONAL { ?c ex:origin ?o . }
                 }
               }"#,
        );
        assert_eq!(r.rows.len(), 3);
        // every laptop has a manufacturer with an origin in this fixture
        assert!(r.rows.iter().all(|row| row[1].is_some() && row[2].is_some()));
    }

    #[test]
    fn optional_with_inner_filter() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL { ?x ex:price ?p . FILTER(?p > 900) }
               } ORDER BY ?x"#,
        );
        assert_eq!(r.rows.len(), 3);
        // only l2 (price 1000) keeps a binding
        let bound: Vec<bool> = r.rows.iter().map(|row| row[1].is_some()).collect();
        assert_eq!(bound, vec![false, true, false]);
    }

    #[test]
    fn union_inside_optional() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?v WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL {
                   { ?x ex:usb ?v . } UNION { ?x ex:price ?v . }
                 }
               }"#,
        );
        // each laptop contributes 2 rows (usb + price)
        assert_eq!(r.rows.len(), 6);
    }

    #[test]
    fn describe_returns_outgoing_triples() {
        let s = store();
        let g = Engine::new(&s)
            .query("PREFIX ex: <http://example.org/> DESCRIBE ex:l1")
            .unwrap();
        let graph = g.graph().unwrap();
        assert_eq!(graph.len(), 5); // type, price, manufacturer, releaseDate, usb
        assert!(graph
            .iter()
            .all(|t| t.subject == Term::iri("http://example.org/l1")));
    }

    #[test]
    fn describe_expands_blank_nodes() {
        let mut s = Store::new();
        s.load_turtle(
            "@prefix ex: <http://example.org/> . ex:a ex:p _:b1 . _:b1 ex:q 5 .",
        )
        .unwrap();
        let g = Engine::new(&s)
            .query("PREFIX ex: <http://example.org/> DESCRIBE ex:a")
            .unwrap();
        assert_eq!(g.graph().unwrap().len(), 2);
    }

    #[test]
    fn minus_removes_compatible_rows() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 MINUS { ?x ex:manufacturer ex:DELL . }
               }"#,
        );
        assert_eq!(r.rows.len(), 1); // only the ACER laptop survives
        assert_eq!(r.rows[0][0], Some(Term::iri("http://example.org/l3")));
    }

    #[test]
    fn minus_without_shared_vars_removes_nothing() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 MINUS { ?y ex:manufacturer ex:DELL . }
               }"#,
        );
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn filter_exists_and_not_exists() {
        let s = store();
        let with = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 FILTER EXISTS { ?x ex:manufacturer ?m . ?m ex:origin ex:USA . }
               }"#,
        );
        assert_eq!(with.rows.len(), 2);
        let without = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 FILTER NOT EXISTS { ?x ex:manufacturer ?m . ?m ex:origin ex:USA . }
               }"#,
        );
        assert_eq!(without.rows.len(), 1);
    }

    #[test]
    fn string_builtins_strbefore_after_replace() {
        let s = store();
        let r = rows(
            &s,
            r#"SELECT ?a ?b ?c ?d WHERE {
                 BIND(STRBEFORE("laptop-15", "-") AS ?a)
                 BIND(STRAFTER("laptop-15", "-") AS ?b)
                 BIND(REPLACE("a.b.c", ".", "/") AS ?c)
                 BIND(ENCODE_FOR_URI("a b/c") AS ?d)
               }"#,
        );
        assert_eq!(r.rows[0][0].as_ref().unwrap().display_name(), "laptop");
        assert_eq!(r.rows[0][1].as_ref().unwrap().display_name(), "15");
        assert_eq!(r.rows[0][2].as_ref().unwrap().display_name(), "a/b/c");
        assert_eq!(r.rows[0][3].as_ref().unwrap().display_name(), "a%20b%2Fc");
    }

    #[test]
    fn count_distinct() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?x ex:manufacturer ?m . }"#,
        );
        assert_eq!(r.rows[0][0], Some(Term::integer(2)));
    }

    // ---- resource limits ---------------------------------------------------

    use crate::limits::{EvalLimits, LimitKind};
    use crate::SparqlError;
    use std::time::{Duration, Instant};

    fn cycle_store(n: usize) -> Store {
        let mut ttl = String::from("@prefix ex: <http://example.org/> .\n");
        for i in 0..n {
            ttl.push_str(&format!("ex:n{i} ex:partOf ex:n{} .\n", (i + 1) % n));
        }
        let mut s = Store::new();
        s.load_turtle(&ttl).unwrap();
        s
    }

    #[test]
    fn limits_do_not_change_results_when_generous() {
        let s = store();
        let q = r#"PREFIX ex: <http://example.org/>
            SELECT ?x ?m WHERE { ?x a ex:Laptop ; ex:manufacturer ?m . } ORDER BY ?x"#;
        let unlimited = rows(&s, q);
        let limited = Engine::with_limits(&s, EvalLimits::interactive())
            .query(q)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(unlimited, limited);
    }

    #[test]
    fn unbounded_closure_hits_deadline_promptly() {
        // acceptance check: `?x ex:partOf+ ?y` over a cycle-heavy graph must
        // come back as ResourceLimit within 2x its 100ms deadline
        let s = cycle_store(2000);
        let deadline = Duration::from_millis(100);
        let engine = Engine::with_limits(&s, EvalLimits::default().with_deadline(deadline));
        let t0 = Instant::now();
        let err = engine
            .query(
                "PREFIX ex: <http://example.org/> SELECT ?x ?y WHERE { ?x ex:partOf+ ?y . }",
            )
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(err.is_resource_limit(), "expected ResourceLimit, got {err}");
        assert_eq!(err, SparqlError::ResourceLimit { kind: LimitKind::Deadline, limit: 100 });
        assert!(
            elapsed < deadline * 2,
            "took {elapsed:?} against a {deadline:?} deadline"
        );
    }

    #[test]
    fn closure_hits_path_visit_limit() {
        let s = cycle_store(500);
        let engine =
            Engine::with_limits(&s, EvalLimits::default().with_max_path_visits(1_000));
        let err = engine
            .query("PREFIX ex: <http://example.org/> SELECT ?x ?y WHERE { ?x ex:partOf+ ?y . }")
            .unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::PathVisits, limit: 1_000 }
        );
    }

    #[test]
    fn cartesian_product_hits_row_limit() {
        let s = store();
        let engine = Engine::with_limits(&s, EvalLimits::default().with_max_rows(20));
        // unconstrained triple x triple cross product blows past 20 rows
        let err = engine
            .query("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . }")
            .unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::SolutionRows, limit: 20 }
        );
    }

    #[test]
    fn deep_nesting_hits_depth_limit() {
        let s = store();
        let engine = Engine::with_limits(&s, EvalLimits::default().with_max_depth(3));
        let q = r#"PREFIX ex: <http://example.org/>
            SELECT ?x WHERE { { { { { ?x a ex:Laptop . } } } } }"#;
        let err = engine.query(q).unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::RecursionDepth, limit: 3 }
        );
        // the same query is fine with a deeper budget
        let ok = Engine::with_limits(&s, EvalLimits::default().with_max_depth(16)).query(q);
        assert!(ok.is_ok());
    }

    #[test]
    fn limit_inside_exists_surfaces_as_error() {
        // the EXISTS sub-pattern walks the cycle closure and must charge the
        // outer query's budget rather than getting a fresh one
        let s = cycle_store(500);
        let engine =
            Engine::with_limits(&s, EvalLimits::default().with_max_path_visits(1_000));
        let result = engine.query(
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x ex:partOf ?y .
                 FILTER EXISTS { ?x ex:partOf+ ?z . }
               }"#,
        );
        assert!(
            matches!(result, Err(SparqlError::ResourceLimit { kind: LimitKind::PathVisits, .. })),
            "{result:?}"
        );
    }

    #[test]
    fn resource_limit_error_message_is_structured() {
        let err = SparqlError::ResourceLimit { kind: LimitKind::Deadline, limit: 100 };
        assert!(err.is_resource_limit());
        assert_eq!(err.message(), "resource limit exceeded: deadline (limit 100)");
        assert!(!SparqlError::new("boom").is_resource_limit());
    }
}
