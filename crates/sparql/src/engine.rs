//! The public query interface: build an [`Engine`], [`Engine::prepare`] a
//! query once, execute it many times.
//!
//! A [`PreparedQuery`] carries its parsed form and — for `SELECT` queries in
//! the batched fragment — a compiled physical plan over the store's interned
//! ID space ([`crate::plan`]). Repeated [`PreparedQuery::execute`] calls
//! reuse the plan; [`PreparedQuery::explain`] renders it, and
//! [`PreparedQuery::last_stats`] reports per-operator cardinalities of the
//! most recent execution.
//!
//! The pre-redesign constructors (`new`/`with_options`/`with_limits`) and
//! the one-shot `query()` remain as thin deprecated shims over the same
//! machinery.

use crate::ast::{Query, QueryForm};
use crate::eval::{EvalOptions, Evaluator, ExecMode};
use crate::limits::EvalLimits;
use crate::parser::parse_query;
use crate::plan::{compile_select, describe_plan, execute_plan, ExecStats, PhysicalPlan};
use crate::results::QueryResults;
use crate::SparqlError;
use rdfa_store::Store;
use std::cell::RefCell;

/// A query engine bound to a store.
pub struct Engine<'s> {
    store: &'s Store,
    options: EvalOptions,
}

/// Configures an [`Engine`] (see [`Engine::builder`]).
pub struct EngineBuilder<'s> {
    store: &'s Store,
    options: EvalOptions,
}

impl<'s> EngineBuilder<'s> {
    /// Replace the whole option set at once.
    pub fn options(mut self, options: EvalOptions) -> Self {
        self.options = options;
        self
    }

    /// Set the resource budget (the limit clock starts per execution).
    pub fn limits(mut self, limits: EvalLimits) -> Self {
        self.options.limits = limits;
        self
    }

    /// Enable or disable selectivity-based BGP reordering (default: on).
    pub fn reorder_bgp(mut self, on: bool) -> Self {
        self.options.reorder_bgp = on;
        self
    }

    /// Choose the execution engine for `SELECT` queries (default: ID space).
    pub fn execution(mut self, mode: ExecMode) -> Self {
        self.options.execution = mode;
        self
    }

    /// Worker threads for parallel hash aggregation; `0` (the default) uses
    /// [`std::thread::available_parallelism`].
    pub fn threads(mut self, n: usize) -> Self {
        self.options.threads = n;
        self
    }

    /// Finish configuration.
    pub fn build(self) -> Engine<'s> {
        Engine { store: self.store, options: self.options }
    }
}

impl<'s> Engine<'s> {
    /// Start configuring an engine over `store`.
    pub fn builder(store: &'s Store) -> EngineBuilder<'s> {
        EngineBuilder { store, options: EvalOptions::default() }
    }

    /// Engine with default options.
    #[deprecated(since = "0.4.0", note = "use `Engine::builder(store).build()`")]
    pub fn new(store: &'s Store) -> Self {
        Engine::builder(store).build()
    }

    /// Engine with explicit evaluation options.
    #[deprecated(since = "0.4.0", note = "use `Engine::builder(store).options(..).build()`")]
    pub fn with_options(store: &'s Store, options: EvalOptions) -> Self {
        Engine::builder(store).options(options).build()
    }

    /// Engine with default options plus a resource budget.
    #[deprecated(since = "0.4.0", note = "use `Engine::builder(store).limits(..).build()`")]
    pub fn with_limits(store: &'s Store, limits: EvalLimits) -> Self {
        Engine::builder(store).limits(limits).build()
    }

    /// The options this engine executes with.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Parse a query and compile it for repeated execution. `SELECT`
    /// queries inside the batched fragment get a physical plan over the
    /// interned ID space; everything else (and [`ExecMode::TermSpace`])
    /// executes on the term-space evaluator.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery<'s>, SparqlError> {
        let query = parse_query(text)?;
        let plan = match (&query.form, self.options.execution) {
            (QueryForm::Select(q), ExecMode::IdSpace) => {
                compile_select(q, self.store, &self.options)
            }
            _ => None,
        };
        Ok(PreparedQuery {
            store: self.store,
            options: self.options.clone(),
            text: text.to_owned(),
            query,
            plan,
            stats: RefCell::new(None),
        })
    }

    /// One-shot convenience: [`Engine::prepare`] + [`PreparedQuery::execute`].
    pub fn run(&self, text: &str) -> Result<QueryResults, SparqlError> {
        self.prepare(text)?.execute()
    }

    /// Parse and evaluate a query.
    #[deprecated(
        since = "0.4.0",
        note = "use `prepare()` + `execute()` (or `run()` for one-shots)"
    )]
    pub fn query(&self, text: &str) -> Result<QueryResults, SparqlError> {
        self.run(text)
    }
}

/// A parsed (and, where possible, compiled) query bound to a store,
/// executable any number of times.
pub struct PreparedQuery<'s> {
    store: &'s Store,
    options: EvalOptions,
    text: String,
    query: Query,
    plan: Option<PhysicalPlan>,
    stats: RefCell<Option<ExecStats>>,
}

impl<'s> PreparedQuery<'s> {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// True when this query runs on the compiled ID-space plan (false for
    /// non-`SELECT` forms, [`ExecMode::TermSpace`], and fragment fallbacks).
    pub fn uses_id_space(&self) -> bool {
        self.plan.is_some()
    }

    /// Execute the query. The resource-limit clock starts now.
    pub fn execute(&self) -> Result<QueryResults, SparqlError> {
        match &self.query.form {
            QueryForm::Select(q) => {
                if let Some(plan) = &self.plan {
                    let (solutions, stats) = execute_plan(plan, q, self.store, &self.options)?;
                    *self.stats.borrow_mut() = Some(stats);
                    Ok(QueryResults::Solutions(solutions))
                } else {
                    let ev = Evaluator::with_options(self.store, self.options.clone());
                    Ok(QueryResults::Solutions(ev.eval_select(q)?))
                }
            }
            QueryForm::Construct { template, where_ } => {
                let ev = Evaluator::with_options(self.store, self.options.clone());
                Ok(QueryResults::Graph(ev.eval_construct(template, where_)?))
            }
            QueryForm::Ask(where_) => {
                let ev = Evaluator::with_options(self.store, self.options.clone());
                Ok(QueryResults::Boolean(ev.eval_ask(where_)?))
            }
            QueryForm::Describe(resources) => {
                Ok(QueryResults::Graph(describe(self.store, resources)))
            }
        }
    }

    /// Statistics of the most recent [`PreparedQuery::execute`] on the
    /// ID-space plan (operator cardinalities, threads used, arena size).
    /// `None` before the first execution and on term-space fallbacks.
    pub fn last_stats(&self) -> Option<ExecStats> {
        self.stats.borrow().clone()
    }

    /// Render the plan as text. For compiled queries this is the physical
    /// operator tree with estimates, and — after an execution — observed
    /// per-operator cardinalities; otherwise the term-space BGP plan.
    pub fn explain(&self) -> String {
        if let Some(plan) = &self.plan {
            let stats = self.stats.borrow();
            let mut out = String::from("physical plan:\n");
            for line in describe_plan(plan, stats.as_ref()) {
                out.push_str("  ");
                out.push_str(&line);
                out.push('\n');
            }
            out
        } else {
            match crate::explain::explain(self.store, &self.text, self.options.clone()) {
                Ok(plan) => plan.to_text(),
                Err(e) => format!("explain unavailable: {e}\n"),
            }
        }
    }
}

/// Concise bounded description: outgoing triples of each resource,
/// expanded recursively through blank-node objects.
fn describe(store: &Store, resources: &[rdfa_model::Term]) -> rdfa_model::Graph {
    use rdfa_model::{Graph, Term, Triple};
    let mut graph = Graph::new();
    let mut queue: Vec<rdfa_store::TermId> =
        resources.iter().filter_map(|t| store.lookup(t)).collect();
    let mut seen: std::collections::HashSet<rdfa_store::TermId> = queue.iter().copied().collect();
    while let Some(s) = queue.pop() {
        for [s2, p, o] in store.matching_explicit(Some(s), None, None) {
            graph.push(Triple::new(
                store.term(s2).clone(),
                store.term(p).clone(),
                store.term(o).clone(),
            ));
            if matches!(store.term(o), Term::Blank(_)) && seen.insert(o) {
                queue.push(o);
            }
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::{Term, Value};

    const DATA: &str = r#"
        @prefix ex: <http://example.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        ex:Laptop rdfs:subClassOf ex:Product .
        ex:l1 a ex:Laptop ; ex:price 900 ; ex:manufacturer ex:DELL ;
              ex:releaseDate "2021-06-10"^^xsd:date ; ex:usb 2 .
        ex:l2 a ex:Laptop ; ex:price 1000 ; ex:manufacturer ex:DELL ;
              ex:releaseDate "2020-03-01"^^xsd:date ; ex:usb 4 .
        ex:l3 a ex:Laptop ; ex:price 820 ; ex:manufacturer ex:ACER ;
              ex:releaseDate "2021-09-03"^^xsd:date ; ex:usb 2 .
        ex:DELL ex:origin ex:USA .
        ex:ACER ex:origin ex:Taiwan .
        ex:inv1 ex:takesPlaceAt ex:branch1 ; ex:inQuantity 200 ; ex:delivers ex:p1 .
        ex:inv2 ex:takesPlaceAt ex:branch1 ; ex:inQuantity 100 ; ex:delivers ex:p2 .
        ex:inv3 ex:takesPlaceAt ex:branch2 ; ex:inQuantity 400 ; ex:delivers ex:p1 .
    "#;

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(DATA).unwrap();
        s
    }

    fn rows(store: &Store, q: &str) -> crate::results::Solutions {
        Engine::builder(store)
            .build()
            .run(q)
            .unwrap_or_else(|e| panic!("{e}: {q}"))
            .into_solutions()
            .unwrap()
    }

    #[test]
    fn basic_select() {
        let s = store();
        let r = rows(&s, "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . }");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn inference_visible_to_queries() {
        let s = store();
        let r = rows(&s, "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Product . }");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn join_and_filter() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE { ?x a ex:Laptop ; ex:price ?p . FILTER(?p < 950) }"#,
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn group_by_with_avg() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?m (AVG(?p) AS ?avg)
               WHERE { ?x ex:manufacturer ?m ; ex:price ?p . }
               GROUP BY ?m ORDER BY ?m"#,
        );
        assert_eq!(r.len(), 2);
        // ACER first alphabetically
        assert_eq!(r.rows()[0][0], Some(Term::iri("http://example.org/ACER")));
        let avg = Value::from_term(r.rows()[0][1].as_ref().unwrap());
        assert!(avg.value_eq(&Value::Float(820.0)));
        let avg_dell = Value::from_term(r.rows()[1][1].as_ref().unwrap());
        assert!(avg_dell.value_eq(&Value::Float(950.0)));
    }

    #[test]
    fn sum_count_min_max() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (SUM(?q) AS ?s) (COUNT(?q) AS ?c) (MIN(?q) AS ?lo) (MAX(?q) AS ?hi)
               WHERE { ?i ex:inQuantity ?q . }"#,
        );
        assert_eq!(r.len(), 1);
        let get = |i: usize| Value::from_term(r.rows()[0][i].as_ref().unwrap());
        assert!(get(0).value_eq(&Value::Int(700)));
        assert!(get(1).value_eq(&Value::Int(3)));
        assert!(get(2).value_eq(&Value::Int(100)));
        assert!(get(3).value_eq(&Value::Int(400)));
    }

    #[test]
    fn having_clause() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?b (SUM(?q) AS ?t)
               WHERE { ?i ex:takesPlaceAt ?b ; ex:inQuantity ?q . }
               GROUP BY ?b
               HAVING (SUM(?q) > 300)"#,
        );
        // branch1 totals 300 (excluded by > 300); branch2 totals 400 (kept)
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Some(Term::iri("http://example.org/branch2")));
    }

    #[test]
    fn having_excludes_at_threshold() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?b (SUM(?q) AS ?t)
               WHERE { ?i ex:takesPlaceAt ?b ; ex:inQuantity ?q . }
               GROUP BY ?b HAVING (SUM(?q) >= 400)"#,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Some(Term::iri("http://example.org/branch2")));
    }

    #[test]
    fn property_path_in_query() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE { ?x ex:manufacturer/ex:origin ex:USA . }"#,
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?o WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL { ?x ex:nonexistent ?o . }
               }"#,
        );
        assert_eq!(r.len(), 3);
        assert!(r.rows().iter().all(|row| row[1].is_none()));
    }

    #[test]
    fn union_merges() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 { ?x ex:manufacturer ex:DELL . } UNION { ?x ex:manufacturer ex:ACER . }
               }"#,
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn date_filter_matches_paper_fig_1_3_style() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               SELECT ?x WHERE {
                 ?x ex:releaseDate ?rd .
                 FILTER(?rd >= "2021-01-01"^^xsd:date && ?rd <= "2021-12-31"^^xsd:date)
               }"#,
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn year_derived_attribute_group() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (YEAR(?rd) AS ?y) (COUNT(*) AS ?n)
               WHERE { ?x ex:releaseDate ?rd . }
               GROUP BY YEAR(?rd) ORDER BY ?y"#,
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0][0], Some(Term::integer(2020)));
        assert_eq!(r.rows()[1][1], Some(Term::integer(2)));
    }

    #[test]
    fn distinct_dedups() {
        let s = store();
        let r = rows(
            &s,
            "PREFIX ex: <http://example.org/> SELECT DISTINCT ?m WHERE { ?x ex:manufacturer ?m . }",
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn order_limit_offset() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p WHERE { ?x ex:price ?p . } ORDER BY DESC(?p) LIMIT 2"#,
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows()[0][1], Some(Term::integer(1000)));
        let r2 = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p WHERE { ?x ex:price ?p . } ORDER BY ?p OFFSET 1 LIMIT 1"#,
        );
        assert_eq!(r2.rows()[0][1], Some(Term::integer(900)));
    }

    #[test]
    fn subselect_join() {
        let s = store();
        // total per branch via subselect, then restrict to branches over 300
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?b ?t WHERE {
                 { SELECT ?b (SUM(?q) AS ?t)
                   WHERE { ?i ex:takesPlaceAt ?b ; ex:inQuantity ?q . } GROUP BY ?b }
                 FILTER(?t >= 400)
               }"#,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Some(Term::iri("http://example.org/branch2")));
    }

    #[test]
    fn bind_extends_rows() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p2 WHERE { ?x ex:price ?p . BIND(?p * 2 AS ?p2) } ORDER BY ?p2"#,
        );
        assert_eq!(r.rows()[0][1], Some(Term::integer(1640)));
    }

    #[test]
    fn values_restricts() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE { ?x ex:manufacturer ?m . VALUES ?m { ex:ACER } }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn construct_derives_graph() {
        let s = store();
        let g = Engine::builder(&s)
            .build()
            .run(
                r#"PREFIX ex: <http://example.org/>
                   CONSTRUCT { ?x ex:cheap true }
                   WHERE { ?x ex:price ?p . FILTER(?p < 900) }"#,
            )
            .unwrap();
        let graph = g.graph().unwrap();
        assert_eq!(graph.len(), 1);
    }

    #[test]
    fn ask_query() {
        let s = store();
        let engine = Engine::builder(&s).build();
        let yes = engine
            .run("PREFIX ex: <http://example.org/> ASK WHERE { ?x ex:price 900 . }")
            .unwrap();
        assert_eq!(yes.boolean(), Some(true));
        let no = engine
            .run("PREFIX ex: <http://example.org/> ASK WHERE { ?x ex:price 1 . }")
            .unwrap();
        assert_eq!(no.boolean(), Some(false));
    }

    #[test]
    fn count_star_on_empty_is_zero() {
        let s = store();
        let r = rows(
            &s,
            "PREFIX ex: <http://example.org/> SELECT (COUNT(*) AS ?n) WHERE { ?x ex:missing ?y . }",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Some(Term::integer(0)));
    }

    #[test]
    fn variable_predicate() {
        let s = store();
        let r = rows(
            &s,
            "PREFIX ex: <http://example.org/> SELECT DISTINCT ?p WHERE { ex:l1 ?p ?o . }",
        );
        assert!(r.len() >= 5);
    }

    #[test]
    fn reorder_matches_naive_results() {
        let s = store();
        let q = r#"PREFIX ex: <http://example.org/>
            SELECT ?x ?m WHERE {
              ?x a ex:Laptop . ?x ex:manufacturer ?m . ?m ex:origin ex:USA .
            } ORDER BY ?x"#;
        let fast = rows(&s, q);
        let naive = Engine::builder(&s)
            .reorder_bgp(false)
            .build()
            .run(q)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn group_concat_and_sample() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (GROUP_CONCAT(?m) AS ?ms) (SAMPLE(?m) AS ?one)
               WHERE { ?x ex:manufacturer ?m . }"#,
        );
        let joined = r.rows()[0][0].as_ref().unwrap().display_name();
        assert!(joined.contains("DELL"));
        assert!(r.rows()[0][1].is_some());
    }

    #[test]
    fn filter_scoped_to_whole_group_regardless_of_position() {
        // the FILTER references ?p although it appears before the pattern
        // binding ?p — SPARQL scopes filters to the group, not the prefix
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 FILTER(?p > 900)
                 ?x ex:price ?p .
               }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn nested_optional() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?c ?o WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL {
                   ?x ex:manufacturer ?c .
                   OPTIONAL { ?c ex:origin ?o . }
                 }
               }"#,
        );
        assert_eq!(r.len(), 3);
        // every laptop has a manufacturer with an origin in this fixture
        assert!(r.rows().iter().all(|row| row[1].is_some() && row[2].is_some()));
    }

    #[test]
    fn optional_with_inner_filter() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?p WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL { ?x ex:price ?p . FILTER(?p > 900) }
               } ORDER BY ?x"#,
        );
        assert_eq!(r.len(), 3);
        // only l2 (price 1000) keeps a binding
        let bound: Vec<bool> = r.rows().iter().map(|row| row[1].is_some()).collect();
        assert_eq!(bound, vec![false, true, false]);
    }

    #[test]
    fn union_inside_optional() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x ?v WHERE {
                 ?x a ex:Laptop .
                 OPTIONAL {
                   { ?x ex:usb ?v . } UNION { ?x ex:price ?v . }
                 }
               }"#,
        );
        // each laptop contributes 2 rows (usb + price)
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn describe_returns_outgoing_triples() {
        let s = store();
        let g = Engine::builder(&s)
            .build()
            .run("PREFIX ex: <http://example.org/> DESCRIBE ex:l1")
            .unwrap();
        let graph = g.graph().unwrap();
        assert_eq!(graph.len(), 5); // type, price, manufacturer, releaseDate, usb
        assert!(graph
            .iter()
            .all(|t| t.subject == Term::iri("http://example.org/l1")));
    }

    #[test]
    fn describe_expands_blank_nodes() {
        let mut s = Store::new();
        s.load_turtle(
            "@prefix ex: <http://example.org/> . ex:a ex:p _:b1 . _:b1 ex:q 5 .",
        )
        .unwrap();
        let g = Engine::builder(&s)
            .build()
            .run("PREFIX ex: <http://example.org/> DESCRIBE ex:a")
            .unwrap();
        assert_eq!(g.graph().unwrap().len(), 2);
    }

    #[test]
    fn minus_removes_compatible_rows() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 MINUS { ?x ex:manufacturer ex:DELL . }
               }"#,
        );
        assert_eq!(r.len(), 1); // only the ACER laptop survives
        assert_eq!(r.rows()[0][0], Some(Term::iri("http://example.org/l3")));
    }

    #[test]
    fn minus_without_shared_vars_removes_nothing() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 MINUS { ?y ex:manufacturer ex:DELL . }
               }"#,
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn filter_exists_and_not_exists() {
        let s = store();
        let with = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 FILTER EXISTS { ?x ex:manufacturer ?m . ?m ex:origin ex:USA . }
               }"#,
        );
        assert_eq!(with.len(), 2);
        let without = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x a ex:Laptop .
                 FILTER NOT EXISTS { ?x ex:manufacturer ?m . ?m ex:origin ex:USA . }
               }"#,
        );
        assert_eq!(without.len(), 1);
    }

    #[test]
    fn string_builtins_strbefore_after_replace() {
        let s = store();
        let r = rows(
            &s,
            r#"SELECT ?a ?b ?c ?d WHERE {
                 BIND(STRBEFORE("laptop-15", "-") AS ?a)
                 BIND(STRAFTER("laptop-15", "-") AS ?b)
                 BIND(REPLACE("a.b.c", ".", "/") AS ?c)
                 BIND(ENCODE_FOR_URI("a b/c") AS ?d)
               }"#,
        );
        assert_eq!(r.rows()[0][0].as_ref().unwrap().display_name(), "laptop");
        assert_eq!(r.rows()[0][1].as_ref().unwrap().display_name(), "15");
        assert_eq!(r.rows()[0][2].as_ref().unwrap().display_name(), "a/b/c");
        assert_eq!(r.rows()[0][3].as_ref().unwrap().display_name(), "a%20b%2Fc");
    }

    #[test]
    fn count_distinct() {
        let s = store();
        let r = rows(
            &s,
            r#"PREFIX ex: <http://example.org/>
               SELECT (COUNT(DISTINCT ?m) AS ?n) WHERE { ?x ex:manufacturer ?m . }"#,
        );
        assert_eq!(r.rows()[0][0], Some(Term::integer(2)));
    }

    // ---- the prepare/execute API -------------------------------------------

    #[test]
    fn prepared_query_executes_repeatedly() {
        let s = store();
        let engine = Engine::builder(&s).build();
        let prepared = engine
            .prepare(
                r#"PREFIX ex: <http://example.org/>
                   SELECT ?m (COUNT(*) AS ?n)
                   WHERE { ?x ex:manufacturer ?m . } GROUP BY ?m ORDER BY ?m"#,
            )
            .unwrap();
        assert!(prepared.uses_id_space());
        let first = prepared.execute().unwrap().into_solutions().unwrap();
        let second = prepared.execute().unwrap().into_solutions().unwrap();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn prepared_query_reports_stats_and_explain() {
        let s = store();
        let engine = Engine::builder(&s).build();
        let prepared = engine
            .prepare(
                r#"PREFIX ex: <http://example.org/>
                   SELECT ?m (AVG(?p) AS ?avg)
                   WHERE { ?x ex:manufacturer ?m ; ex:price ?p . } GROUP BY ?m"#,
            )
            .unwrap();
        assert!(prepared.last_stats().is_none(), "no stats before execution");
        // the pre-execution explain shows the operator tree with estimates
        let pre = prepared.explain();
        assert!(pre.contains("physical plan:"), "{pre}");
        assert!(pre.contains("IndexJoin"), "{pre}");
        prepared.execute().unwrap();
        let stats = prepared.last_stats().expect("stats after execution");
        assert_eq!(stats.rows_out, 2);
        assert!(stats.operators.iter().any(|o| o.kind == "join" && o.rows_out > 0));
        // post-execution explain reports observed cardinalities
        let post = prepared.explain();
        assert!(post.contains("rows="), "{post}");
    }

    #[test]
    fn term_space_mode_skips_the_plan() {
        let s = store();
        let engine = Engine::builder(&s).execution(ExecMode::TermSpace).build();
        let prepared = engine
            .prepare("PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . }")
            .unwrap();
        assert!(!prepared.uses_id_space());
        assert_eq!(prepared.execute().unwrap().solutions().unwrap().len(), 3);
        // the fallback explain is the term-space BGP plan
        assert!(prepared.explain().contains("plan:"));
    }

    #[test]
    fn fragment_fallback_still_answers() {
        let s = store();
        let engine = Engine::builder(&s).build();
        // property paths are outside the batched fragment
        let prepared = engine
            .prepare(
                r#"PREFIX ex: <http://example.org/>
                   SELECT ?x WHERE { ?x ex:manufacturer/ex:origin ex:USA . }"#,
            )
            .unwrap();
        assert!(!prepared.uses_id_space());
        assert_eq!(prepared.execute().unwrap().solutions().unwrap().len(), 2);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        let s = store();
        let q = "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x a ex:Laptop . }";
        let via_new = Engine::new(&s).query(q).unwrap().into_solutions().unwrap();
        let via_limits = Engine::with_limits(&s, EvalLimits::interactive())
            .query(q)
            .unwrap()
            .into_solutions()
            .unwrap();
        let via_options = Engine::with_options(&s, EvalOptions::default())
            .query(q)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(via_new, via_limits);
        assert_eq!(via_new, via_options);
        assert_eq!(via_new.len(), 3);
    }

    // ---- resource limits ---------------------------------------------------

    use crate::limits::{EvalLimits, LimitKind};
    use crate::SparqlError;
    use std::time::{Duration, Instant};

    fn cycle_store(n: usize) -> Store {
        let mut ttl = String::from("@prefix ex: <http://example.org/> .\n");
        for i in 0..n {
            ttl.push_str(&format!("ex:n{i} ex:partOf ex:n{} .\n", (i + 1) % n));
        }
        let mut s = Store::new();
        s.load_turtle(&ttl).unwrap();
        s
    }

    #[test]
    fn limits_do_not_change_results_when_generous() {
        let s = store();
        let q = r#"PREFIX ex: <http://example.org/>
            SELECT ?x ?m WHERE { ?x a ex:Laptop ; ex:manufacturer ?m . } ORDER BY ?x"#;
        let unlimited = rows(&s, q);
        let limited = Engine::builder(&s)
            .limits(EvalLimits::interactive())
            .build()
            .run(q)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(unlimited, limited);
    }

    #[test]
    fn unbounded_closure_hits_deadline_promptly() {
        // acceptance check: `?x ex:partOf+ ?y` over a cycle-heavy graph must
        // come back as ResourceLimit within 2x its 100ms deadline
        let s = cycle_store(2000);
        let deadline = Duration::from_millis(100);
        let engine =
            Engine::builder(&s).limits(EvalLimits::default().with_deadline(deadline)).build();
        let t0 = Instant::now();
        let err = engine
            .run(
                "PREFIX ex: <http://example.org/> SELECT ?x ?y WHERE { ?x ex:partOf+ ?y . }",
            )
            .unwrap_err();
        let elapsed = t0.elapsed();
        assert!(err.is_resource_limit(), "expected ResourceLimit, got {err}");
        assert_eq!(err, SparqlError::ResourceLimit { kind: LimitKind::Deadline, limit: 100 });
        assert!(
            elapsed < deadline * 2,
            "took {elapsed:?} against a {deadline:?} deadline"
        );
    }

    #[test]
    fn closure_hits_path_visit_limit() {
        let s = cycle_store(500);
        let engine = Engine::builder(&s)
            .limits(EvalLimits::default().with_max_path_visits(1_000))
            .build();
        let err = engine
            .run("PREFIX ex: <http://example.org/> SELECT ?x ?y WHERE { ?x ex:partOf+ ?y . }")
            .unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::PathVisits, limit: 1_000 }
        );
    }

    #[test]
    fn cartesian_product_hits_row_limit() {
        let s = store();
        let engine =
            Engine::builder(&s).limits(EvalLimits::default().with_max_rows(20)).build();
        // unconstrained triple x triple cross product blows past 20 rows
        let err = engine.run("SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . }").unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::SolutionRows, limit: 20 }
        );
    }

    #[test]
    fn deep_nesting_hits_depth_limit() {
        let s = store();
        let engine = Engine::builder(&s).limits(EvalLimits::default().with_max_depth(3)).build();
        let q = r#"PREFIX ex: <http://example.org/>
            SELECT ?x WHERE { { { { { ?x a ex:Laptop . } } } } }"#;
        let err = engine.run(q).unwrap_err();
        assert_eq!(
            err,
            SparqlError::ResourceLimit { kind: LimitKind::RecursionDepth, limit: 3 }
        );
        // the same query is fine with a deeper budget
        let ok = Engine::builder(&s)
            .limits(EvalLimits::default().with_max_depth(16))
            .build()
            .run(q);
        assert!(ok.is_ok());
    }

    #[test]
    fn limit_inside_exists_surfaces_as_error() {
        // the EXISTS sub-pattern walks the cycle closure and must charge the
        // outer query's budget rather than getting a fresh one
        let s = cycle_store(500);
        let engine = Engine::builder(&s)
            .limits(EvalLimits::default().with_max_path_visits(1_000))
            .build();
        let result = engine.run(
            r#"PREFIX ex: <http://example.org/>
               SELECT ?x WHERE {
                 ?x ex:partOf ?y .
                 FILTER EXISTS { ?x ex:partOf+ ?z . }
               }"#,
        );
        assert!(
            matches!(result, Err(SparqlError::ResourceLimit { kind: LimitKind::PathVisits, .. })),
            "{result:?}"
        );
    }

    #[test]
    fn resource_limit_error_message_is_structured() {
        let err = SparqlError::ResourceLimit { kind: LimitKind::Deadline, limit: 100 };
        assert!(err.is_resource_limit());
        assert_eq!(err.message(), "resource limit exceeded: deadline (limit 100)");
        assert!(!SparqlError::new("boom").is_resource_limit());
    }
}
