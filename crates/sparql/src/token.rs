//! SPARQL tokenizer.

use crate::SparqlError;
use rdfa_model::term::unescape_literal;

/// A lexical token. Keywords are produced as [`Token::Word`] and matched
/// case-insensitively by the parser.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `<http://…>`
    IriRef(String),
    /// `prefix:local` (either part may be empty)
    PName(String, String),
    /// `?name` / `$name`
    Var(String),
    /// `_:label`
    BlankNode(String),
    /// Quoted string body (unescaped); suffixes are separate tokens.
    Str(String),
    /// `@lang` following a string
    LangTag(String),
    /// Numeric literal (lexical form preserved)
    Number(String),
    /// Bare word: keywords, `a`, `true`, `false`, function names
    Word(String),
    /// `^^`
    DtSep,
    /// Any punctuation/operator: `{ } ( ) . ; , * / + - ! | ^ ? = != < > <= >= && ||`
    Punct(&'static str),
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '<' => {
                // IRI ref if a '>' appears before whitespace; else operator
                let mut j = i + 1;
                let mut is_iri = false;
                while j < n && !bytes[j].is_whitespace() {
                    if bytes[j] == '>' {
                        is_iri = true;
                        break;
                    }
                    j += 1;
                }
                if is_iri {
                    let iri: String = bytes[i + 1..j].iter().collect();
                    toks.push(Token::IriRef(iri));
                    i = j + 1;
                } else if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::Punct("<="));
                    i += 2;
                } else {
                    toks.push(Token::Punct("<"));
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::Punct(">="));
                    i += 2;
                } else {
                    toks.push(Token::Punct(">"));
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    toks.push(Token::Punct("!="));
                    i += 2;
                } else {
                    toks.push(Token::Punct("!"));
                    i += 1;
                }
            }
            '&' => {
                if i + 1 < n && bytes[i + 1] == '&' {
                    toks.push(Token::Punct("&&"));
                    i += 2;
                } else {
                    return Err(SparqlError::new("stray '&'"));
                }
            }
            '|' => {
                if i + 1 < n && bytes[i + 1] == '|' {
                    toks.push(Token::Punct("||"));
                    i += 2;
                } else {
                    toks.push(Token::Punct("|"));
                    i += 1;
                }
            }
            '^' => {
                if i + 1 < n && bytes[i + 1] == '^' {
                    toks.push(Token::DtSep);
                    i += 2;
                } else {
                    toks.push(Token::Punct("^"));
                    i += 1;
                }
            }
            '=' => {
                toks.push(Token::Punct("="));
                i += 1;
            }
            '{' | '}' | '(' | ')' | '.' | ';' | ',' | '*' | '/' | '+' | '-' => {
                // negative number literal?
                if c == '-' && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    let (num, next) = lex_number(&bytes, i);
                    toks.push(Token::Number(num));
                    i = next;
                } else {
                    toks.push(Token::Punct(punct_str(c)));
                    i += 1;
                }
            }
            '?' | '$' => {
                // variable, or the '?' path modifier when not followed by a name char
                if i + 1 < n && (bytes[i + 1].is_ascii_alphanumeric() || bytes[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    toks.push(Token::Var(bytes[i + 1..j].iter().collect()));
                    i = j;
                } else {
                    toks.push(Token::Punct("?"));
                    i += 1;
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut body = String::new();
                let mut escaped = false;
                loop {
                    if j >= n {
                        return Err(SparqlError::new("unterminated string literal"));
                    }
                    let cj = bytes[j];
                    if escaped {
                        body.push('\\');
                        body.push(cj);
                        escaped = false;
                    } else if cj == '\\' {
                        escaped = true;
                    } else if cj == quote {
                        break;
                    } else {
                        body.push(cj);
                    }
                    j += 1;
                }
                toks.push(Token::Str(unescape_literal(&body)));
                i = j + 1;
            }
            '@' => {
                let mut j = i + 1;
                while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '-') {
                    j += 1;
                }
                toks.push(Token::LangTag(bytes[i + 1..j].iter().collect()));
                i = j;
            }
            '_' if i + 1 < n && bytes[i + 1] == ':' => {
                let mut j = i + 2;
                while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_' || bytes[j] == '-')
                {
                    j += 1;
                }
                toks.push(Token::BlankNode(bytes[i + 2..j].iter().collect()));
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (num, next) = lex_number(&bytes, i);
                toks.push(Token::Number(num));
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_' || bytes[j] == '-')
                {
                    j += 1;
                }
                let word: String = bytes[i..j].iter().collect();
                if j < n && bytes[j] == ':' {
                    // prefixed name
                    let mut k = j + 1;
                    while k < n
                        && (bytes[k].is_ascii_alphanumeric()
                            || bytes[k] == '_'
                            || bytes[k] == '-'
                            || bytes[k] == '.')
                    {
                        k += 1;
                    }
                    // trailing '.' belongs to the statement, not the name
                    let mut end = k;
                    while end > j + 1 && bytes[end - 1] == '.' {
                        end -= 1;
                    }
                    let local: String = bytes[j + 1..end].iter().collect();
                    toks.push(Token::PName(word, local));
                    i = end;
                } else {
                    toks.push(Token::Word(word));
                    i = j;
                }
            }
            ':' => {
                // prefixed name with empty prefix
                let mut k = i + 1;
                while k < n
                    && (bytes[k].is_ascii_alphanumeric() || bytes[k] == '_' || bytes[k] == '-')
                {
                    k += 1;
                }
                toks.push(Token::PName(String::new(), bytes[i + 1..k].iter().collect()));
                i = k;
            }
            other => return Err(SparqlError::new(format!("unexpected character '{other}'"))),
        }
    }
    Ok(toks)
}

fn punct_str(c: char) -> &'static str {
    match c {
        '{' => "{",
        '}' => "}",
        '(' => "(",
        ')' => ")",
        '.' => ".",
        ';' => ";",
        ',' => ",",
        '*' => "*",
        '/' => "/",
        '+' => "+",
        '-' => "-",
        _ => unreachable!("not a single-char punct: {c}"),
    }
}

fn lex_number(bytes: &[char], start: usize) -> (String, usize) {
    let n = bytes.len();
    let mut j = start;
    if bytes[j] == '-' || bytes[j] == '+' {
        j += 1;
    }
    let mut seen_dot = false;
    while j < n {
        let c = bytes[j];
        if c.is_ascii_digit() {
            j += 1;
        } else if c == '.' && !seen_dot && j + 1 < n && bytes[j + 1].is_ascii_digit() {
            seen_dot = true;
            j += 1;
        } else if (c == 'e' || c == 'E')
            && j + 1 < n
            && (bytes[j + 1].is_ascii_digit() || bytes[j + 1] == '-' || bytes[j + 1] == '+')
        {
            j += 2;
        } else {
            break;
        }
    }
    (bytes[start..j].iter().collect(), j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT ?m (AVG(?p) AS ?avg) WHERE { ?x ex:price ?p . }").unwrap();
        assert!(toks.contains(&Token::Var("m".into())));
        assert!(toks.contains(&Token::PName("ex".into(), "price".into())));
        assert!(toks.iter().any(|t| t.is_kw("select")));
        assert!(toks.iter().any(|t| t.is_kw("AS")));
    }

    #[test]
    fn iri_vs_less_than() {
        let toks = tokenize("FILTER(?x < 3) ?s <http://p> ?o").unwrap();
        assert!(toks.contains(&Token::Punct("<")));
        assert!(toks.contains(&Token::IriRef("http://p".into())));
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("<= >= != = && || !").unwrap();
        let expected = ["<=", ">=", "!=", "=", "&&", "||", "!"];
        for (t, e) in toks.iter().zip(expected) {
            assert_eq!(t, &Token::Punct(e));
        }
    }

    #[test]
    fn typed_literal_tokens() {
        let toks = tokenize(r#""2021-01-01T00:00:00"^^xsd:dateTime"#).unwrap();
        assert_eq!(toks[0], Token::Str("2021-01-01T00:00:00".into()));
        assert_eq!(toks[1], Token::DtSep);
        assert_eq!(toks[2], Token::PName("xsd".into(), "dateTime".into()));
    }

    #[test]
    fn numbers_including_negative_and_decimal() {
        let toks = tokenize("42 -7 3.5 1e6").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number("42".into()),
                Token::Number("-7".into()),
                Token::Number("3.5".into()),
                Token::Number("1e6".into()),
            ]
        );
    }

    #[test]
    fn path_operators() {
        let toks = tokenize("?s ex:a/ex:b|^ex:c* ?o").unwrap();
        assert!(toks.contains(&Token::Punct("/")));
        assert!(toks.contains(&Token::Punct("|")));
        assert!(toks.contains(&Token::Punct("^")));
        assert!(toks.contains(&Token::Punct("*")));
    }

    #[test]
    fn pname_trailing_dot_is_statement_end() {
        let toks = tokenize("?s a ex:Laptop.").unwrap();
        assert_eq!(toks[2], Token::PName("ex".into(), "Laptop".into()));
        assert_eq!(toks[3], Token::Punct("."));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT # all\n ?x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn question_mark_path_modifier() {
        let toks = tokenize("ex:a? ").unwrap();
        assert_eq!(toks[1], Token::Punct("?"));
    }
}
