//! The HIFUN running-example dataset (Fig 2.7): delivery invoices with a
//! date, a branch, a product type, and a quantity.

use crate::products::EX;
use rdfa_prng::StdRng;
use rdfa_model::{Graph, Literal, Term, vocab::xsd};

fn iri(local: &str) -> Term {
    Term::iri(format!("{EX}{local}"))
}

/// Generator for the invoices dataset. All four attributes are functional
/// by construction, so HIFUN applies directly (§4.1.1).
#[derive(Debug, Clone)]
pub struct InvoicesGenerator {
    pub n_invoices: usize,
    pub n_branches: usize,
    pub n_products: usize,
    pub year: i32,
    pub seed: u64,
}

impl InvoicesGenerator {
    /// Defaults mirroring the paper's Walmart-style example.
    pub fn new(n_invoices: usize, seed: u64) -> Self {
        InvoicesGenerator {
            n_invoices,
            n_branches: 5,
            n_products: 8,
            year: 2021,
            seed,
        }
    }

    /// Generate the graph: one invoice resource per row with `hasDate`,
    /// `takesPlaceAt`, `delivers`, `inQuantity`, plus product → brand edges.
    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = Graph::new();
        let rdf_type = Term::iri(rdfa_model::vocab::rdf::TYPE);
        let brands = ["CocaCola", "Pepsi", "Nestle", "Unilever"];
        for b in 0..self.n_branches {
            g.add(iri(&format!("branch{b}")), rdf_type.clone(), iri("Branch"));
        }
        for p in 0..self.n_products {
            let name = format!("product{p}");
            g.add(iri(&name), rdf_type.clone(), iri("ProductType"));
            g.add(iri(&name), iri("brand"), iri(brands[p % brands.len()]));
        }
        for i in 0..self.n_invoices {
            let inv = format!("invoice{i}");
            let month = rng.gen_range(1..=12u8);
            let day = rng.gen_range(1..=28u8);
            g.add(iri(&inv), rdf_type.clone(), iri("Invoice"));
            g.add(
                iri(&inv),
                iri("hasDate"),
                Term::Literal(Literal::typed(
                    format!("{:04}-{month:02}-{day:02}", self.year),
                    xsd::DATE,
                )),
            );
            g.add(
                iri(&inv),
                iri("takesPlaceAt"),
                iri(&format!("branch{}", rng.gen_range(0..self.n_branches))),
            );
            g.add(
                iri(&inv),
                iri("delivers"),
                iri(&format!("product{}", rng.gen_range(0..self.n_products))),
            );
            g.add(iri(&inv), iri("inQuantity"), Term::integer(rng.gen_range(1..500)));
        }
        g
    }

    /// Generate and bulk-load straight into a store through the parallel
    /// ingest pipeline, returning what the load did. Equivalent to
    /// `store.load_graph(&gen.generate())` but skips the per-triple path.
    pub fn generate_into(
        &self,
        store: &mut rdfa_store::Store,
        opts: rdfa_store::LoadOptions,
    ) -> rdfa_store::LoadStats {
        store.bulk_load_graph(&self.generate(), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_hifun::{AggOp, AttrPath, HifunQuery};
    use rdfa_store::Store;

    #[test]
    fn generates_functional_attributes() {
        let mut store = Store::new();
        store.load_graph(&InvoicesGenerator::new(100, 3).generate());
        for p in ["hasDate", "takesPlaceAt", "delivers", "inQuantity"] {
            let id = store.lookup_iri(&format!("{EX}{p}")).unwrap();
            assert!(store.is_effectively_functional(id), "{p} must be functional");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            InvoicesGenerator::new(30, 5).generate(),
            InvoicesGenerator::new(30, 5).generate()
        );
    }

    #[test]
    fn total_quantities_by_branch_are_consistent() {
        let mut store = Store::new();
        store.load_graph(&InvoicesGenerator::new(200, 11).generate());
        let q = HifunQuery::new(AggOp::Sum)
            .group_by(AttrPath::prop(format!("{EX}takesPlaceAt")))
            .measure(AttrPath::prop(format!("{EX}inQuantity")));
        let direct = rdfa_hifun::direct::evaluate(&store, &q).unwrap();
        assert_eq!(direct.len(), 5);
        // cross-check against the SPARQL translation
        let sparql = rdfa_hifun::translate::to_sparql(&q);
        let translated = rdfa_sparql::Engine::builder(&store).build()
            .run(&sparql)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(translated.len(), 5);
    }
}
