//! The running-example products KG (Fig 1.2 / Fig 5.3).

use rdfa_prng::StdRng;
use rdfa_model::{Graph, Literal, Term, vocab::xsd};

/// The example namespace used throughout the paper (Fig 1.3).
pub const EX: &str = "http://www.ics.forth.gr/example#";

fn iri(local: &str) -> Term {
    Term::iri(format!("{EX}{local}"))
}

/// The deterministic small instance of Fig 5.3: three laptops, drives,
/// companies, countries and continents — the dataset every UI figure of
/// Chapter 5 is drawn from.
pub fn products_fixture() -> Graph {
    let ttl = format!(
        r#"
        @prefix ex: <{EX}> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

        # schema (Fig 1.2)
        ex:Laptop rdfs:subClassOf ex:Product .
        ex:HDType rdfs:subClassOf ex:Product .
        ex:SSD rdfs:subClassOf ex:HDType .
        ex:NVMe rdfs:subClassOf ex:HDType .
        ex:Country rdfs:subClassOf ex:Location .
        ex:Continent rdfs:subClassOf ex:Location .
        ex:manufacturer rdfs:domain ex:Product ; rdfs:range ex:Company .

        # laptops (Fig 5.3)
        ex:laptop1 a ex:Laptop ; ex:manufacturer ex:DELL ;
            ex:releaseDate "2021-06-10"^^xsd:date ; ex:USBPorts 2 ;
            ex:hardDrive ex:SSD1 ; ex:price 900 .
        ex:laptop2 a ex:Laptop ; ex:manufacturer ex:DELL ;
            ex:releaseDate "2021-09-03"^^xsd:date ; ex:USBPorts 2 ;
            ex:hardDrive ex:SSD2 ; ex:price 1000 .
        ex:laptop3 a ex:Laptop ; ex:manufacturer ex:Lenovo ;
            ex:releaseDate "2021-10-10"^^xsd:date ; ex:USBPorts 4 ;
            ex:hardDrive ex:NVMe1 ; ex:price 820 .

        # drives
        ex:SSD1 a ex:SSD ; ex:manufacturer ex:Maxtor .
        ex:SSD2 a ex:SSD ; ex:manufacturer ex:AVDElectronics .
        ex:NVMe1 a ex:NVMe ; ex:manufacturer ex:Maxtor .

        # companies
        ex:DELL a ex:Company ; ex:origin ex:USA ; ex:founder ex:MichaelDell .
        ex:Lenovo a ex:Company ; ex:origin ex:China ; ex:founder ex:LiuChuanzhi .
        ex:Maxtor a ex:Company ; ex:origin ex:Singapore .
        ex:AVDElectronics a ex:Company ; ex:origin ex:USA .

        # persons
        ex:MichaelDell a ex:Person ; ex:birthplace ex:USA .
        ex:LiuChuanzhi a ex:Person ; ex:birthplace ex:China .

        # locations
        ex:USA a ex:Country ; ex:locatedAt ex:NorthAmerica ; ex:GDPPerCapita 76399 .
        ex:China a ex:Country ; ex:locatedAt ex:Asia ; ex:GDPPerCapita 12720 .
        ex:Singapore a ex:Country ; ex:locatedAt ex:Asia ; ex:GDPPerCapita 82808 .
        ex:NorthAmerica a ex:Continent .
        ex:Asia a ex:Continent .
        "#
    );
    rdfa_model::turtle::parse(&ttl).expect("fixture parses")
}

/// Scalable generator for the products KG: `n_products` laptops with
/// manufacturers, drives, origins, prices, ports and dates — roughly nine
/// triples per product plus a fixed company/location backbone. Deterministic
/// for a given seed.
#[derive(Debug, Clone)]
pub struct ProductsGenerator {
    pub n_products: usize,
    pub n_companies: usize,
    pub seed: u64,
}

impl ProductsGenerator {
    /// A generator with sensible defaults (companies scale with products).
    pub fn new(n_products: usize, seed: u64) -> Self {
        ProductsGenerator {
            n_products,
            n_companies: (n_products / 50).clamp(4, 200),
            seed,
        }
    }

    /// Total triples this configuration will emit (schema + backbone +
    /// per-product), useful for sizing experiments.
    pub fn approx_triples(&self) -> usize {
        20 + self.n_companies * 3 + self.n_products * 9
    }

    /// Generate the graph.
    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = Graph::new();
        let rdf_type = Term::iri(rdfa_model::vocab::rdf::TYPE);
        let subclass = Term::iri(rdfa_model::vocab::rdfs::SUB_CLASS_OF);

        // schema
        for (sub, sup) in [
            ("Laptop", "Product"),
            ("HDType", "Product"),
            ("SSD", "HDType"),
            ("NVMe", "HDType"),
            ("Country", "Location"),
            ("Continent", "Location"),
        ] {
            g.add(iri(sub), subclass.clone(), iri(sup));
        }

        // location backbone
        let continents = ["Asia", "Europe", "NorthAmerica"];
        let countries = [
            ("USA", "NorthAmerica", 76399),
            ("China", "Asia", 12720),
            ("Taiwan", "Asia", 32679),
            ("Germany", "Europe", 48432),
            ("Japan", "Asia", 33815),
            ("SouthKorea", "Asia", 32423),
        ];
        for c in continents {
            g.add(iri(c), rdf_type.clone(), iri("Continent"));
        }
        for (c, cont, gdp) in countries {
            g.add(iri(c), rdf_type.clone(), iri("Country"));
            g.add(iri(c), iri("locatedAt"), iri(cont));
            g.add(iri(c), iri("GDPPerCapita"), Term::integer(gdp));
        }

        // companies
        for i in 0..self.n_companies {
            let name = format!("Company{i}");
            let (country, _, _) = countries[rng.gen_range(0..countries.len())];
            g.add(iri(&name), rdf_type.clone(), iri("Company"));
            g.add(iri(&name), iri("origin"), iri(country));
            let founder = format!("Founder{i}");
            g.add(iri(&name), iri("founder"), iri(&founder));
            g.add(iri(&founder), rdf_type.clone(), iri("Person"));
        }

        // products
        for i in 0..self.n_products {
            let p = format!("laptop{i}");
            let company = format!("Company{}", rng.gen_range(0..self.n_companies));
            let drive = format!("drive{i}");
            let drive_class = if rng.gen_bool(0.6) { "SSD" } else { "NVMe" };
            let drive_maker = format!("Company{}", rng.gen_range(0..self.n_companies));
            let year = rng.gen_range(2018..=2023);
            let month = rng.gen_range(1..=12u8);
            let day = rng.gen_range(1..=28u8);
            g.add(iri(&p), rdf_type.clone(), iri("Laptop"));
            g.add(iri(&p), iri("manufacturer"), iri(&company));
            g.add(iri(&p), iri("price"), Term::integer(rng.gen_range(300..3000)));
            g.add(iri(&p), iri("USBPorts"), Term::integer(rng.gen_range(1..5)));
            g.add(
                iri(&p),
                iri("releaseDate"),
                Term::Literal(Literal::typed(
                    format!("{year:04}-{month:02}-{day:02}"),
                    xsd::DATE,
                )),
            );
            g.add(iri(&p), iri("hardDrive"), iri(&drive));
            g.add(iri(&drive), rdf_type.clone(), iri(drive_class));
            g.add(iri(&drive), iri("manufacturer"), iri(&drive_maker));
        }
        g
    }

    /// Generate and bulk-load straight into a store through the parallel
    /// ingest pipeline, returning what the load did. Equivalent to
    /// `store.load_graph(&gen.generate())` but skips the per-triple path.
    pub fn generate_into(
        &self,
        store: &mut rdfa_store::Store,
        opts: rdfa_store::LoadOptions,
    ) -> rdfa_store::LoadStats {
        store.bulk_load_graph(&self.generate(), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_store::Store;

    #[test]
    fn fixture_matches_fig_5_3_counts() {
        let mut store = Store::new();
        store.load_graph(&products_fixture());
        let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
        assert_eq!(store.instances(laptop).len(), 3);
        let product = store.lookup_iri(&format!("{EX}Product")).unwrap();
        assert_eq!(store.instances(product).len(), 6); // 3 laptops + 3 drives
        let company = store.lookup_iri(&format!("{EX}Company")).unwrap();
        assert_eq!(store.instances(company).len(), 4);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = ProductsGenerator::new(50, 7).generate();
        let b = ProductsGenerator::new(50, 7).generate();
        assert_eq!(a, b);
        let c = ProductsGenerator::new(50, 8).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn generator_scales() {
        let gen = ProductsGenerator::new(200, 1);
        let g = gen.generate();
        assert!(g.len() >= 200 * 8);
        assert!(g.len() <= gen.approx_triples() + 50);
        let mut store = Store::new();
        store.load_graph(&g);
        let laptop = store.lookup_iri(&format!("{EX}Laptop")).unwrap();
        assert_eq!(store.instances(laptop).len(), 200);
    }

    #[test]
    fn generated_data_answers_fig_1_3_query() {
        let mut store = Store::new();
        store.load_graph(&ProductsGenerator::new(300, 42).generate());
        let q = format!(
            r#"PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
               PREFIX ex: <{EX}>
               SELECT ?m (AVG(?p) as ?avgprice)
               WHERE {{
                 ?s rdf:type ex:Laptop.
                 ?s ex:manufacturer ?m.
                 ?m ex:origin ex:USA.
                 ?s ex:price ?p.
                 ?s ex:USBPorts ?u.
                 ?s ex:hardDrive ?hd.
                 ?hd rdf:type ex:SSD.
                 FILTER (?u >= 2).
               }} GROUP BY ?m"#
        );
        let results = rdfa_sparql::Engine::builder(&store).build().run(&q).unwrap();
        assert!(!results.solutions().unwrap().is_empty());
    }
}
