//! A COVID-19 statistics KG — the dataset of the dissertation's 3D
//! visualizer (system (1a): "visualizes the progress of COVID-19 virus over
//! time by country"). One observation resource per country per day with
//! new-case, recovery and death counts, plus country metadata (population,
//! continent), so both time-series analytics (group by month) and
//! per-capita queries (the "top countries with daily new covid19 cases per
//! 1 million of population" example of §3.2.3) are expressible.

use crate::products::EX;
use rdfa_prng::StdRng;
use rdfa_model::{Graph, Literal, Term, vocab::xsd};

fn iri(local: &str) -> Term {
    Term::iri(format!("{EX}{local}"))
}

/// Generator for the COVID observations KG.
#[derive(Debug, Clone)]
pub struct CovidGenerator {
    pub n_days: usize,
    pub year: i32,
    pub seed: u64,
}

/// The fixed country backbone: (name, population, continent).
pub const COUNTRIES: [(&str, i64, &str); 6] = [
    ("Greece", 10_432_481, "Europe"),
    ("Italy", 58_870_762, "Europe"),
    ("Germany", 84_270_625, "Europe"),
    ("Japan", 125_124_989, "Asia"),
    ("SouthKorea", 51_744_876, "Asia"),
    ("USA", 331_893_745, "NorthAmerica"),
];

impl CovidGenerator {
    /// A generator over `n_days` days starting at Jan 1 of `year`.
    pub fn new(n_days: usize, seed: u64) -> Self {
        CovidGenerator { n_days: n_days.min(336), year: 2021, seed }
    }

    /// Generate the observations graph: per (country, day), an observation
    /// with `ofCountry`, `onDate`, `newCases`, `recoveries`, `deaths`.
    /// Case curves follow a noisy wave so months differ meaningfully.
    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = Graph::new();
        let rdf_type = Term::iri(rdfa_model::vocab::rdf::TYPE);
        for (name, pop, continent) in COUNTRIES {
            g.add(iri(name), rdf_type.clone(), iri("Country"));
            g.add(iri(name), iri("population"), Term::integer(pop));
            g.add(iri(name), iri("locatedAt"), iri(continent));
            g.add(iri(continent), rdf_type.clone(), iri("Continent"));
        }
        for (ci, (name, pop, _)) in COUNTRIES.iter().enumerate() {
            // per-country base rate ∝ population, with a country phase shift
            let base = (*pop as f64 / 1_000_000.0) * 8.0;
            let phase = ci as f64 * 0.9;
            for day in 0..self.n_days {
                let (m, d) = month_day(day);
                let wave = 1.0 + 0.8 * ((day as f64 / 45.0) + phase).sin();
                let noise: f64 = rng.gen_range(0.7..1.3);
                let cases = (base * wave * noise).max(0.0) as i64;
                let recoveries = (cases as f64 * rng.gen_range(0.80..0.95)) as i64;
                let deaths = (cases as f64 * rng.gen_range(0.005..0.02)) as i64;
                let obs = format!("obs_{name}_{day}");
                g.add(iri(&obs), rdf_type.clone(), iri("Observation"));
                g.add(iri(&obs), iri("ofCountry"), iri(name));
                g.add(
                    iri(&obs),
                    iri("onDate"),
                    Term::Literal(Literal::typed(
                        format!("{:04}-{m:02}-{d:02}", self.year),
                        xsd::DATE,
                    )),
                );
                g.add(iri(&obs), iri("newCases"), Term::integer(cases));
                g.add(iri(&obs), iri("recoveries"), Term::integer(recoveries));
                g.add(iri(&obs), iri("deaths"), Term::integer(deaths));
            }
        }
        g
    }
}

/// Map a day offset (0-based, ≤ 335) to (month, day) using 28-day months —
/// every produced date is valid in every month (February included) and all
/// months are equally populated.
fn month_day(day: usize) -> (u8, u8) {
    (((day / 28 + 1).min(12)) as u8, (day % 28 + 1) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_store::Store;

    #[test]
    fn generates_observations_per_country_per_day() {
        let mut store = Store::new();
        store.load_graph(&CovidGenerator::new(60, 3).generate());
        let obs = store.lookup_iri(&format!("{EX}Observation")).unwrap();
        assert_eq!(store.instances(obs).len(), 60 * COUNTRIES.len());
        let country = store.lookup_iri(&format!("{EX}Country")).unwrap();
        assert_eq!(store.instances(country).len(), COUNTRIES.len());
    }

    #[test]
    fn per_million_query_of_section_3_2_3() {
        // "top countries with daily new covid19 cases per 1 million of population"
        let mut store = Store::new();
        store.load_graph(&CovidGenerator::new(30, 5).generate());
        let q = format!(
            r#"PREFIX ex: <{EX}>
               SELECT ?c ((SUM(?n) / (MAX(?pop) / 1000000)) AS ?perM)
               WHERE {{
                 ?o ex:ofCountry ?c ; ex:newCases ?n .
                 ?c ex:population ?pop .
               }} GROUP BY ?c ORDER BY DESC(?perM)"#
        );
        let sols = rdfa_sparql::Engine::builder(&store).build()
            .run(&q)
            .unwrap()
            .into_solutions()
            .unwrap();
        assert_eq!(sols.len(), COUNTRIES.len());
        // descending order holds
        let vals: Vec<f64> = sols
            .rows()
            .iter()
            .map(|r| {
                rdfa_model::Value::from_term(r[1].as_ref().unwrap())
                    .as_f64()
                    .unwrap()
            })
            .collect();
        assert!(vals.windows(2).all(|w| w[0] >= w[1]), "{vals:?}");
    }

    #[test]
    fn functional_attributes_hold() {
        let mut store = Store::new();
        store.load_graph(&CovidGenerator::new(20, 1).generate());
        for p in ["ofCountry", "onDate", "newCases", "recoveries", "deaths"] {
            let id = store.lookup_iri(&format!("{EX}{p}")).unwrap();
            assert!(store.is_effectively_functional(id), "{p}");
        }
    }

    #[test]
    fn month_day_always_yields_valid_dates() {
        for day in 0..336 {
            let (m, d) = month_day(day);
            assert!(
                rdfa_model::Date::new(2021, m, d).is_some(),
                "invalid date 2021-{m:02}-{d:02} at offset {day}"
            );
        }
    }
}
