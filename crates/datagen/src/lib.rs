//! # rdfa-datagen — synthetic knowledge graphs and the simulated endpoint
//!
//! Data substrates for the examples, tests and experiments:
//!
//! - [`products`] — the paper's running-example KG (Fig 1.2 schema: products,
//!   laptops, hard drives, companies, persons, locations), both as the small
//!   deterministic fixture of Fig 5.3 and as a scalable generator;
//! - [`invoices`] — the HIFUN running example (Fig 2.7: invoices with date,
//!   branch, product, quantity);
//! - [`endpoint`] — a **simulated remote SPARQL endpoint**: our own engine
//!   plus a latency model with peak and off-peak profiles, substituting for
//!   the live DBpedia endpoint of the paper's efficiency experiments
//!   (Tables 6.1/6.2; see DESIGN.md, substitution 1).

pub mod covid;
pub mod endpoint;
pub mod invoices;
pub mod products;

pub use covid::CovidGenerator;
pub use endpoint::{
    EndpointError, FaultModel, LatencyModel, RetryPolicy, RetryStats, RetryingClient,
    SimulatedEndpoint, TimedResult,
};
pub use invoices::InvoicesGenerator;
pub use products::{products_fixture, ProductsGenerator, EX};
