//! A simulated remote SPARQL endpoint (DESIGN.md substitution 1).
//!
//! The paper's efficiency experiments (Tables 6.1/6.2) time queries against
//! a live endpoint at peak and off-peak hours. Offline, we substitute a
//! latency model layered over our own engine: a base round-trip, a
//! per-result transfer cost, a load factor (peak > off-peak), and
//! multiplicative jitter. The *measured* engine time is real; the network
//! component is simulated and reported separately so the experiment harness
//! can print both.

use rdfa_prng::StdRng;
use rdfa_sparql::{Engine, QueryResults, SparqlError};
use rdfa_store::Store;
use std::time::{Duration, Instant};

/// The latency model of the simulated network path to the endpoint.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Base round-trip time in milliseconds.
    pub base_rtt_ms: f64,
    /// Transfer cost per result row in milliseconds.
    pub per_result_ms: f64,
    /// Server load multiplier on compute time (queueing at the endpoint).
    pub load_factor: f64,
    /// Multiplicative jitter amplitude (0.2 = ±20%).
    pub jitter: f64,
}

impl LatencyModel {
    /// Peak-hours profile: higher RTT, heavy server load, strong jitter
    /// (Table 6.1 conditions).
    pub fn peak() -> Self {
        LatencyModel { base_rtt_ms: 180.0, per_result_ms: 0.9, load_factor: 6.0, jitter: 0.35 }
    }

    /// Off-peak profile: low RTT, light load, mild jitter (Table 6.2).
    pub fn off_peak() -> Self {
        LatencyModel { base_rtt_ms: 60.0, per_result_ms: 0.3, load_factor: 1.5, jitter: 0.10 }
    }

    /// No network at all (local evaluation baseline).
    pub fn local() -> Self {
        LatencyModel { base_rtt_ms: 0.0, per_result_ms: 0.0, load_factor: 1.0, jitter: 0.0 }
    }

    /// Simulated network+load latency for a query that computed in
    /// `compute` and produced `n_results` rows.
    pub fn simulate(&self, compute: Duration, n_results: usize, rng: &mut StdRng) -> Duration {
        // symmetric multiplicative jitter; an amplitude <= 0 means "no
        // jitter" rather than an inverted (and panicking) sample range
        let factor = if self.jitter > 0.0 {
            1.0 + rng.gen_range(-self.jitter..=self.jitter)
        } else {
            1.0
        };
        let ms = (self.base_rtt_ms
            + self.per_result_ms * n_results as f64
            + compute.as_secs_f64() * 1000.0 * (self.load_factor - 1.0))
            * factor.max(0.0);
        Duration::from_secs_f64((ms / 1000.0).max(0.0))
    }
}

/// A query result with its timing breakdown.
#[derive(Debug)]
pub struct TimedResult {
    pub results: QueryResults,
    /// Real engine evaluation time on this machine.
    pub compute: Duration,
    /// Simulated network/load latency.
    pub network: Duration,
}

impl TimedResult {
    /// End-to-end latency as a remote client would observe it.
    pub fn total(&self) -> Duration {
        self.compute + self.network
    }

    /// Number of result rows (0 for CONSTRUCT/ASK).
    pub fn row_count(&self) -> usize {
        match &self.results {
            QueryResults::Solutions(s) => s.len(),
            QueryResults::Graph(g) => g.len(),
            QueryResults::Boolean(_) => 1,
        }
    }
}

/// Injected failure behaviour for the simulated endpoint: with what
/// probability a request errors or times out, and what share of errors are
/// transient (retryable — think 503/connection reset) versus permanent.
/// All sampling is seeded, so a given (seed, workload) pair always injects
/// the same fault sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultModel {
    /// Probability that a request fails with an endpoint fault.
    pub error_prob: f64,
    /// Probability that a request times out on the wire.
    pub timeout_prob: f64,
    /// Fraction of injected faults that are transient (retryable).
    pub transient_ratio: f64,
}

impl FaultModel {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// Only transient faults, at probability `p` per request.
    pub fn transient(p: f64) -> Self {
        FaultModel { error_prob: p, timeout_prob: 0.0, transient_ratio: 1.0 }
    }

    /// Whether this model injects anything at all.
    pub fn is_active(&self) -> bool {
        self.error_prob > 0.0 || self.timeout_prob > 0.0
    }
}

/// What a request against the simulated endpoint can fail with.
#[derive(Debug, Clone)]
pub enum EndpointError {
    /// The query itself is bad (parse/eval error) — retrying cannot help.
    Sparql(SparqlError),
    /// An injected endpoint fault; transient ones are worth retrying.
    Fault { transient: bool, message: String },
    /// The request exceeded its (simulated) deadline.
    Timeout { after: Duration },
}

impl EndpointError {
    /// Whether a retry has any chance of succeeding.
    pub fn is_transient(&self) -> bool {
        match self {
            EndpointError::Sparql(_) => false,
            EndpointError::Fault { transient, .. } => *transient,
            EndpointError::Timeout { .. } => true,
        }
    }
}

impl std::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointError::Sparql(e) => write!(f, "{e}"),
            EndpointError::Fault { transient: true, message } => {
                write!(f, "transient endpoint fault: {message}")
            }
            EndpointError::Fault { transient: false, message } => {
                write!(f, "permanent endpoint fault: {message}")
            }
            EndpointError::Timeout { after } => write!(f, "request timed out after {after:?}"),
        }
    }
}

/// The simulated endpoint: a store, an engine, a latency model, and an
/// optional fault model.
pub struct SimulatedEndpoint<'s> {
    store: &'s Store,
    model: LatencyModel,
    faults: FaultModel,
    rng: StdRng,
}

impl<'s> SimulatedEndpoint<'s> {
    /// Create an endpoint over a store with the given latency profile.
    pub fn new(store: &'s Store, model: LatencyModel, seed: u64) -> Self {
        SimulatedEndpoint { store, model, faults: FaultModel::none(), rng: StdRng::seed_from_u64(seed) }
    }

    /// Create an endpoint that also injects faults per `faults`.
    pub fn with_faults(store: &'s Store, model: LatencyModel, faults: FaultModel, seed: u64) -> Self {
        SimulatedEndpoint { store, model, faults, rng: StdRng::seed_from_u64(seed) }
    }

    /// The latency profile in force.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// The fault model in force.
    pub fn faults(&self) -> FaultModel {
        self.faults
    }

    /// Execute a query, reporting real compute time plus simulated network
    /// latency. Never injects faults — the timing baseline.
    pub fn query(&mut self, text: &str) -> Result<TimedResult, SparqlError> {
        let start = Instant::now();
        let results = Engine::builder(self.store).build().run(text)?;
        let compute = start.elapsed();
        let n = match &results {
            QueryResults::Solutions(s) => s.len(),
            QueryResults::Graph(g) => g.len(),
            QueryResults::Boolean(_) => 1,
        };
        let network = self.model.simulate(compute, n, &mut self.rng);
        Ok(TimedResult { results, compute, network })
    }

    /// Execute a query through the fault model: the request may be dropped
    /// with a timeout or an (in)transient fault before the engine runs.
    pub fn request(&mut self, text: &str) -> Result<TimedResult, EndpointError> {
        if self.faults.timeout_prob > 0.0 && self.rng.gen_bool(self.faults.timeout_prob) {
            // a timed-out request costs roughly an order of magnitude more
            // than a healthy round trip before the client gives up on it
            let after = Duration::from_secs_f64(self.model.base_rtt_ms.max(1.0) * 10.0 / 1000.0);
            return Err(EndpointError::Timeout { after });
        }
        if self.faults.error_prob > 0.0 && self.rng.gen_bool(self.faults.error_prob) {
            let transient = self.faults.transient_ratio > 0.0
                && self.rng.gen_bool(self.faults.transient_ratio.min(1.0));
            let message = if transient {
                "503 service unavailable (injected)".to_owned()
            } else {
                "500 internal server error (injected)".to_owned()
            };
            return Err(EndpointError::Fault { transient, message });
        }
        self.query(text).map_err(EndpointError::Sparql)
    }
}

/// How a [`RetryingClient`] schedules retries: exponential backoff with
/// multiplicative jitter, a bounded number of attempts, and an optional
/// per-attempt deadline (a reply slower than the deadline counts as a
/// timeout and is retried).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub initial_backoff: Duration,
    /// Multiplier applied per retry (2.0 = classic doubling).
    pub backoff_factor: f64,
    /// Ceiling on a single backoff.
    pub max_backoff: Duration,
    /// Multiplicative jitter amplitude on each backoff (0.2 = ±20%).
    pub jitter: f64,
    /// Give up on any attempt whose end-to-end latency exceeds this.
    pub attempt_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            initial_backoff: Duration::from_millis(50),
            backoff_factor: 2.0,
            max_backoff: Duration::from_secs(2),
            jitter: 0.2,
            attempt_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The backoff to wait before retry number `retry` (1-based), jittered.
    pub fn backoff(&self, retry: u32, rng: &mut StdRng) -> Duration {
        let base = self.initial_backoff.as_secs_f64()
            * self.backoff_factor.powi(retry.saturating_sub(1) as i32);
        let base = base.min(self.max_backoff.as_secs_f64());
        let factor = if self.jitter > 0.0 {
            1.0 + rng.gen_range(-self.jitter..=self.jitter)
        } else {
            1.0
        };
        Duration::from_secs_f64((base * factor).max(0.0))
    }
}

/// Counters a [`RetryingClient`] keeps across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests sent (every attempt counts).
    pub attempts: u32,
    /// Transient faults absorbed by retrying.
    pub transient_faults: u32,
    /// Timeouts absorbed (wire timeouts and attempt-deadline misses).
    pub timeouts: u32,
    /// Queries that ultimately failed after the retry budget ran out.
    pub exhausted: u32,
    /// Total backoff the client would have slept (recorded, not slept —
    /// simulation stays fast and deterministic).
    pub backoff: Duration,
}

/// A client that retries transient endpoint failures with exponential
/// backoff. Permanent faults and SPARQL errors are returned immediately.
pub struct RetryingClient {
    policy: RetryPolicy,
    rng: StdRng,
    stats: RetryStats,
}

impl RetryingClient {
    /// A client with the given policy; `seed` drives backoff jitter.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        RetryingClient { policy, rng: StdRng::seed_from_u64(seed), stats: RetryStats::default() }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Execute `text` against `endpoint`, retrying transient failures until
    /// the attempt budget runs out. Backoff is recorded in the stats rather
    /// than slept.
    pub fn execute(
        &mut self,
        endpoint: &mut SimulatedEndpoint,
        text: &str,
    ) -> Result<TimedResult, EndpointError> {
        let mut attempt = 1u32;
        loop {
            self.stats.attempts += 1;
            let failure = match endpoint.request(text) {
                Ok(r) => match self.policy.attempt_deadline {
                    Some(deadline) if r.total() > deadline => {
                        EndpointError::Timeout { after: r.total() }
                    }
                    _ => return Ok(r),
                },
                Err(e) => e,
            };
            if !failure.is_transient() {
                return Err(failure);
            }
            match failure {
                EndpointError::Timeout { .. } => self.stats.timeouts += 1,
                _ => self.stats.transient_faults += 1,
            }
            if attempt >= self.policy.max_attempts.max(1) {
                self.stats.exhausted += 1;
                return Err(failure);
            }
            self.stats.backoff += self.policy.backoff(attempt, &mut self.rng);
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::products::{ProductsGenerator, EX};

    fn store() -> Store {
        let mut s = Store::new();
        s.load_graph(&ProductsGenerator::new(100, 1).generate());
        s
    }

    #[test]
    fn peak_slower_than_off_peak() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        let mut peak = SimulatedEndpoint::new(&s, LatencyModel::peak(), 9);
        let mut off = SimulatedEndpoint::new(&s, LatencyModel::off_peak(), 9);
        // average over a few runs to smooth jitter
        let avg = |ep: &mut SimulatedEndpoint| -> f64 {
            (0..10)
                .map(|_| ep.query(&q).unwrap().total().as_secs_f64())
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(&mut peak) > avg(&mut off));
    }

    #[test]
    fn local_model_adds_nothing() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        let mut ep = SimulatedEndpoint::new(&s, LatencyModel::local(), 1);
        let r = ep.query(&q).unwrap();
        assert_eq!(r.network, Duration::ZERO);
        assert_eq!(r.row_count(), 100);
    }

    #[test]
    fn latency_grows_with_result_size() {
        let model = LatencyModel::off_peak();
        let mut rng = StdRng::seed_from_u64(4);
        let small = model.simulate(Duration::from_millis(1), 10, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let large = model.simulate(Duration::from_millis(1), 10_000, &mut rng);
        assert!(large > small);
    }

    #[test]
    fn simulation_deterministic_given_seed_and_inputs() {
        let model = LatencyModel::peak();
        let compute = Duration::from_millis(3);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(model.simulate(compute, 42, &mut r1), model.simulate(compute, 42, &mut r2));
    }

    #[test]
    fn zero_jitter_is_exact() {
        // regression: the sampling range used to be -j..=j.max(MIN_POSITIVE),
        // which is asymmetric (and inverted for j < 0)
        let model = LatencyModel { base_rtt_ms: 100.0, per_result_ms: 0.0, load_factor: 1.0, jitter: 0.0 };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let d = model.simulate(Duration::from_millis(5), 1000, &mut rng);
            assert_eq!(d, Duration::from_millis(100));
        }
    }

    #[test]
    fn negative_jitter_treated_as_none() {
        let model =
            LatencyModel { base_rtt_ms: 40.0, per_result_ms: 0.0, load_factor: 1.0, jitter: -0.5 };
        let mut rng = StdRng::seed_from_u64(7);
        // must not panic on an inverted range, and must be deterministic
        assert_eq!(model.simulate(Duration::ZERO, 0, &mut rng), Duration::from_millis(40));
    }

    #[test]
    fn jitter_samples_both_sides_of_the_mean() {
        let model =
            LatencyModel { base_rtt_ms: 100.0, per_result_ms: 0.0, load_factor: 1.0, jitter: 0.5 };
        let mut rng = StdRng::seed_from_u64(11);
        let base = Duration::from_millis(100);
        let samples: Vec<Duration> =
            (0..200).map(|_| model.simulate(Duration::ZERO, 0, &mut rng)).collect();
        assert!(samples.iter().any(|d| *d < base), "never sampled below the mean");
        assert!(samples.iter().any(|d| *d > base), "never sampled above the mean");
    }

    #[test]
    fn fault_free_request_matches_query() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        let mut ep = SimulatedEndpoint::new(&s, LatencyModel::local(), 3);
        let r = ep.request(&q).unwrap();
        assert_eq!(r.row_count(), 100);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> ASK WHERE {{ ?x a ex:Laptop . }}");
        let faults = FaultModel { error_prob: 0.4, timeout_prob: 0.1, transient_ratio: 0.5 };
        let run = |seed: u64| -> Vec<bool> {
            let mut ep = SimulatedEndpoint::with_faults(&s, LatencyModel::local(), faults, seed);
            (0..30).map(|_| ep.request(&q).is_ok()).collect()
        };
        assert_eq!(run(42), run(42));
        assert!(run(42).iter().any(|ok| !ok), "40% fault rate should fail sometimes");
        assert!(run(42).iter().any(|ok| *ok), "and succeed sometimes");
    }

    #[test]
    fn bad_query_is_never_transient() {
        let s = store();
        let mut ep = SimulatedEndpoint::new(&s, LatencyModel::local(), 3);
        let e = ep.request("NOT SPARQL").unwrap_err();
        assert!(matches!(e, EndpointError::Sparql(_)));
        assert!(!e.is_transient());
    }

    #[test]
    fn retrying_client_survives_transient_faults() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        let mut ep =
            SimulatedEndpoint::with_faults(&s, LatencyModel::local(), FaultModel::transient(0.3), 9);
        let mut client = RetryingClient::new(RetryPolicy::default(), 1);
        for _ in 0..20 {
            assert!(client.execute(&mut ep, &q).is_ok());
        }
        let stats = client.stats();
        assert!(stats.transient_faults > 0, "30% fault rate must have injected something");
        assert!(stats.attempts > 20, "retries must have happened");
        assert!(stats.backoff > Duration::ZERO);
        assert_eq!(stats.exhausted, 0);
    }

    #[test]
    fn permanent_fault_is_not_retried() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> ASK WHERE {{ ?x a ex:Laptop . }}");
        let faults = FaultModel { error_prob: 1.0, timeout_prob: 0.0, transient_ratio: 0.0 };
        let mut ep = SimulatedEndpoint::with_faults(&s, LatencyModel::local(), faults, 5);
        let mut client = RetryingClient::new(RetryPolicy::default(), 1);
        let e = client.execute(&mut ep, &q).unwrap_err();
        assert!(matches!(e, EndpointError::Fault { transient: false, .. }));
        assert_eq!(client.stats().attempts, 1);
    }

    #[test]
    fn retry_budget_exhausts_on_persistent_transient_faults() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> ASK WHERE {{ ?x a ex:Laptop . }}");
        let mut ep =
            SimulatedEndpoint::with_faults(&s, LatencyModel::local(), FaultModel::transient(1.0), 5);
        let policy = RetryPolicy { max_attempts: 4, ..RetryPolicy::default() };
        let mut client = RetryingClient::new(policy, 1);
        let e = client.execute(&mut ep, &q).unwrap_err();
        assert!(e.is_transient());
        let stats = client.stats();
        assert_eq!(stats.attempts, 4);
        assert_eq!(stats.exhausted, 1);
    }

    #[test]
    fn attempt_deadline_counts_slow_replies_as_timeouts() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        // peak latency is always >> 1ns, so every attempt misses the deadline
        let mut ep = SimulatedEndpoint::new(&s, LatencyModel::peak(), 5);
        let policy = RetryPolicy {
            max_attempts: 3,
            attempt_deadline: Some(Duration::from_nanos(1)),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(policy, 1);
        let e = client.execute(&mut ep, &q).unwrap_err();
        assert!(matches!(e, EndpointError::Timeout { .. }));
        assert_eq!(client.stats().timeouts, 3);
    }

    #[test]
    fn backoff_grows_and_respects_ceiling() {
        let policy = RetryPolicy { jitter: 0.0, ..RetryPolicy::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let b1 = policy.backoff(1, &mut rng);
        let b2 = policy.backoff(2, &mut rng);
        let b3 = policy.backoff(3, &mut rng);
        assert_eq!(b1, Duration::from_millis(50));
        assert_eq!(b2, Duration::from_millis(100));
        assert_eq!(b3, Duration::from_millis(200));
        let b_large = policy.backoff(20, &mut rng);
        assert_eq!(b_large, policy.max_backoff);
    }
}
