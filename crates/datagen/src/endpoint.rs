//! A simulated remote SPARQL endpoint (DESIGN.md substitution 1).
//!
//! The paper's efficiency experiments (Tables 6.1/6.2) time queries against
//! a live endpoint at peak and off-peak hours. Offline, we substitute a
//! latency model layered over our own engine: a base round-trip, a
//! per-result transfer cost, a load factor (peak > off-peak), and
//! multiplicative jitter. The *measured* engine time is real; the network
//! component is simulated and reported separately so the experiment harness
//! can print both.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdfa_sparql::{Engine, QueryResults, SparqlError};
use rdfa_store::Store;
use std::time::{Duration, Instant};

/// The latency model of the simulated network path to the endpoint.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Base round-trip time in milliseconds.
    pub base_rtt_ms: f64,
    /// Transfer cost per result row in milliseconds.
    pub per_result_ms: f64,
    /// Server load multiplier on compute time (queueing at the endpoint).
    pub load_factor: f64,
    /// Multiplicative jitter amplitude (0.2 = ±20%).
    pub jitter: f64,
}

impl LatencyModel {
    /// Peak-hours profile: higher RTT, heavy server load, strong jitter
    /// (Table 6.1 conditions).
    pub fn peak() -> Self {
        LatencyModel { base_rtt_ms: 180.0, per_result_ms: 0.9, load_factor: 6.0, jitter: 0.35 }
    }

    /// Off-peak profile: low RTT, light load, mild jitter (Table 6.2).
    pub fn off_peak() -> Self {
        LatencyModel { base_rtt_ms: 60.0, per_result_ms: 0.3, load_factor: 1.5, jitter: 0.10 }
    }

    /// No network at all (local evaluation baseline).
    pub fn local() -> Self {
        LatencyModel { base_rtt_ms: 0.0, per_result_ms: 0.0, load_factor: 1.0, jitter: 0.0 }
    }

    /// Simulated network+load latency for a query that computed in
    /// `compute` and produced `n_results` rows.
    pub fn simulate(&self, compute: Duration, n_results: usize, rng: &mut StdRng) -> Duration {
        let jitter = 1.0 + rng.gen_range(-self.jitter..=self.jitter.max(f64::MIN_POSITIVE));
        let ms = (self.base_rtt_ms
            + self.per_result_ms * n_results as f64
            + compute.as_secs_f64() * 1000.0 * (self.load_factor - 1.0))
            * jitter.max(0.0);
        Duration::from_secs_f64((ms / 1000.0).max(0.0))
    }
}

/// A query result with its timing breakdown.
#[derive(Debug)]
pub struct TimedResult {
    pub results: QueryResults,
    /// Real engine evaluation time on this machine.
    pub compute: Duration,
    /// Simulated network/load latency.
    pub network: Duration,
}

impl TimedResult {
    /// End-to-end latency as a remote client would observe it.
    pub fn total(&self) -> Duration {
        self.compute + self.network
    }

    /// Number of result rows (0 for CONSTRUCT/ASK).
    pub fn row_count(&self) -> usize {
        match &self.results {
            QueryResults::Solutions(s) => s.rows.len(),
            QueryResults::Graph(g) => g.len(),
            QueryResults::Boolean(_) => 1,
        }
    }
}

/// The simulated endpoint: a store, an engine, and a latency model.
pub struct SimulatedEndpoint<'s> {
    store: &'s Store,
    model: LatencyModel,
    rng: StdRng,
}

impl<'s> SimulatedEndpoint<'s> {
    /// Create an endpoint over a store with the given latency profile.
    pub fn new(store: &'s Store, model: LatencyModel, seed: u64) -> Self {
        SimulatedEndpoint { store, model, rng: StdRng::seed_from_u64(seed) }
    }

    /// The latency profile in force.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// Execute a query, reporting real compute time plus simulated network
    /// latency.
    pub fn query(&mut self, text: &str) -> Result<TimedResult, SparqlError> {
        let start = Instant::now();
        let results = Engine::new(self.store).query(text)?;
        let compute = start.elapsed();
        let n = match &results {
            QueryResults::Solutions(s) => s.rows.len(),
            QueryResults::Graph(g) => g.len(),
            QueryResults::Boolean(_) => 1,
        };
        let network = self.model.simulate(compute, n, &mut self.rng);
        Ok(TimedResult { results, compute, network })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::products::{ProductsGenerator, EX};

    fn store() -> Store {
        let mut s = Store::new();
        s.load_graph(&ProductsGenerator::new(100, 1).generate());
        s
    }

    #[test]
    fn peak_slower_than_off_peak() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        let mut peak = SimulatedEndpoint::new(&s, LatencyModel::peak(), 9);
        let mut off = SimulatedEndpoint::new(&s, LatencyModel::off_peak(), 9);
        // average over a few runs to smooth jitter
        let avg = |ep: &mut SimulatedEndpoint| -> f64 {
            (0..10)
                .map(|_| ep.query(&q).unwrap().total().as_secs_f64())
                .sum::<f64>()
                / 10.0
        };
        assert!(avg(&mut peak) > avg(&mut off));
    }

    #[test]
    fn local_model_adds_nothing() {
        let s = store();
        let q = format!("PREFIX ex: <{EX}> SELECT ?x WHERE {{ ?x a ex:Laptop . }}");
        let mut ep = SimulatedEndpoint::new(&s, LatencyModel::local(), 1);
        let r = ep.query(&q).unwrap();
        assert_eq!(r.network, Duration::ZERO);
        assert_eq!(r.row_count(), 100);
    }

    #[test]
    fn latency_grows_with_result_size() {
        let model = LatencyModel::off_peak();
        let mut rng = StdRng::seed_from_u64(4);
        let small = model.simulate(Duration::from_millis(1), 10, &mut rng);
        let mut rng = StdRng::seed_from_u64(4);
        let large = model.simulate(Duration::from_millis(1), 10_000, &mut rng);
        assert!(large > small);
    }

    #[test]
    fn simulation_deterministic_given_seed_and_inputs() {
        let model = LatencyModel::peak();
        let compute = Duration::from_millis(3);
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(model.simulate(compute, 42, &mut r1), model.simulate(compute, 42, &mut r2));
    }
}
