//! Keyword search over the store — the second starting point of the
//! interaction (§5.4.1): a session may begin from "a set *Results* obtained
//! from an external access method, such as a keyword search query".
//!
//! A simple inverted index over literal lexical forms and IRI local names,
//! scored by TF–IDF and aggregated per *subject* resource, so the ranked
//! hits can seed `FacetedSession::start_from` directly.

use crate::interner::TermId;
use crate::store::Store;
use rdfa_model::Term;
use std::collections::{BTreeSet, HashMap};

/// One ranked hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    pub resource: TermId,
    pub score: f64,
}

/// An inverted index over a store's text: tokens → (subject, term frequency).
#[derive(Debug, Default)]
pub struct KeywordIndex {
    postings: HashMap<String, HashMap<TermId, usize>>,
    n_docs: usize,
}

/// Lowercase alphanumeric tokenization; camelCase and snake_case IRIs split
/// into their words (`releaseDate` → `release`, `date`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev_lower = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if c.is_uppercase() && prev_lower && !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            prev_lower = c.is_lowercase() || c.is_numeric();
            current.extend(c.to_lowercase());
        } else {
            prev_lower = false;
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

impl KeywordIndex {
    /// Build the index: each subject resource is a "document" whose text is
    /// its own local name plus the lexical forms / local names of its
    /// property values.
    pub fn build(store: &Store) -> Self {
        let mut index = KeywordIndex::default();
        let mut docs: HashMap<TermId, Vec<String>> = HashMap::new();
        for [s, _, o] in store.iter_explicit() {
            let entry = docs.entry(s).or_default();
            match store.term(o) {
                Term::Literal(l) => entry.extend(tokenize(&l.lexical)),
                Term::Iri(iri) => entry.extend(tokenize(rdfa_model::term::local_name(iri))),
                Term::Blank(_) => {}
            }
        }
        // index the subjects' own names too
        let subjects: Vec<TermId> = docs.keys().copied().collect();
        for s in subjects {
            if let Term::Iri(iri) = store.term(s) {
                let toks = tokenize(rdfa_model::term::local_name(iri));
                docs.get_mut(&s).expect("doc exists").extend(toks);
            }
        }
        index.n_docs = docs.len();
        for (s, tokens) in docs {
            for t in tokens {
                *index.postings.entry(t).or_default().entry(s).or_insert(0) += 1;
            }
        }
        index
    }

    /// Number of indexed resources.
    pub fn len(&self) -> usize {
        self.n_docs
    }

    /// True when nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.n_docs == 0
    }

    /// TF–IDF ranked search. Multi-word queries score the union of their
    /// terms (resources matching more query words rank higher).
    pub fn search(&self, query: &str) -> Vec<Hit> {
        let mut scores: HashMap<TermId, f64> = HashMap::new();
        for token in tokenize(query) {
            if let Some(postings) = self.postings.get(&token) {
                let idf = ((self.n_docs as f64 + 1.0) / (postings.len() as f64 + 1.0)).ln() + 1.0;
                for (&doc, &tf) in postings {
                    *scores.entry(doc).or_insert(0.0) += (1.0 + (tf as f64).ln()) * idf;
                }
            }
        }
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .map(|(resource, score)| Hit { resource, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.resource.cmp(&b.resource))
        });
        hits
    }

    /// The top-`k` resources as a set, ready for
    /// `FacetedSession::start_from`.
    pub fn search_set(&self, query: &str, k: usize) -> BTreeSet<TermId> {
        self.search(query).into_iter().take(k).map(|h| h.resource).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EX: &str = "http://e/";

    fn store() -> Store {
        let mut s = Store::new();
        s.load_turtle(&format!(
            r#"@prefix ex: <{EX}> .
               ex:laptop1 a ex:Laptop ; ex:label "DELL gaming laptop" ; ex:manufacturer ex:DELL .
               ex:laptop2 a ex:Laptop ; ex:label "Lenovo office laptop" .
               ex:phone1 a ex:Phone ; ex:label "DELL phone" .
               ex:chargingCable a ex:Accessory .
            "#
        ))
        .unwrap();
        s
    }

    #[test]
    fn tokenizer_splits_camel_and_snake() {
        assert_eq!(tokenize("releaseDate"), vec!["release", "date"]);
        assert_eq!(tokenize("USB_ports-2"), vec!["usb", "ports", "2"]);
        assert_eq!(tokenize("  hello,  World! "), vec!["hello", "world"]);
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn search_ranks_by_relevance() {
        let s = store();
        let idx = KeywordIndex::build(&s);
        let hits = idx.search("DELL laptop");
        assert!(!hits.is_empty());
        // laptop1 mentions both words; it must outrank the phone and laptop2
        let top = hits[0].resource;
        assert_eq!(s.term(top).display_name(), "laptop1");
    }

    #[test]
    fn search_set_seeds_faceted_session() {
        let s = store();
        let idx = KeywordIndex::build(&s);
        let set = idx.search_set("laptop", 10);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn resource_names_are_searchable() {
        let s = store();
        let idx = KeywordIndex::build(&s);
        let hits = idx.search("charging cable");
        assert_eq!(hits.len(), 1);
        assert_eq!(s.term(hits[0].resource).display_name(), "chargingCable");
    }

    #[test]
    fn no_match_is_empty_not_error() {
        let s = store();
        let idx = KeywordIndex::build(&s);
        assert!(idx.search("xyzzy").is_empty());
        assert!(idx.search_set("", 5).is_empty());
    }

    #[test]
    fn rare_terms_score_higher_than_common() {
        let s = store();
        let idx = KeywordIndex::build(&s);
        // "office" is rarer than "laptop"; a search for both ranks laptop2 first
        let hits = idx.search("office laptop");
        assert_eq!(s.term(hits[0].resource).display_name(), "laptop2");
    }
}
