//! Sorted triple permutations answering every triple-pattern binding shape
//! with one contiguous range scan.

use crate::interner::TermId;
use std::collections::BTreeSet;
use std::ops::Bound;

/// A triple of interned term ids in subject/predicate/object order.
pub type IdTriple = [TermId; 3];

/// Three sorted permutations of the same triple set: SPO, POS, OSP.
///
/// | pattern (bound…) | index | scan |
/// |---|---|---|
/// | s p o | SPO | point lookup |
/// | s p ? | SPO | range `[s,p,·]` |
/// | s ? ? | SPO | range `[s,·,·]` |
/// | s ? o | OSP | range `[o,s,·]` |
/// | ? p o | POS | range `[p,o,·]` |
/// | ? p ? | POS | range `[p,·,·]` |
/// | ? ? o | OSP | range `[o,·,·]` |
/// | ? ? ? | SPO | full scan |
#[derive(Debug, Default, Clone)]
pub struct TripleIndex {
    spo: BTreeSet<IdTriple>,
    pos: BTreeSet<IdTriple>,
    osp: BTreeSet<IdTriple>,
}

const MIN: TermId = TermId(0);
const MAX: TermId = TermId(u32::MAX);

impl TripleIndex {
    /// An empty index.
    pub fn new() -> Self {
        TripleIndex::default()
    }

    /// Insert a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: IdTriple) -> bool {
        let [s, p, o] = t;
        if !self.spo.insert([s, p, o]) {
            return false;
        }
        self.pos.insert([p, o, s]);
        self.osp.insert([o, s, p]);
        true
    }

    /// Remove a triple; returns `false` if it was absent.
    pub fn remove(&mut self, t: IdTriple) -> bool {
        let [s, p, o] = t;
        if !self.spo.remove(&[s, p, o]) {
            return false;
        }
        self.pos.remove(&[p, o, s]);
        self.osp.remove(&[o, s, p]);
        true
    }

    /// Membership test.
    pub fn contains(&self, t: IdTriple) -> bool {
        self.spo.contains(&t)
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Iterate all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = IdTriple> + '_ {
        self.spo.iter().copied()
    }

    /// Bulk-build from pre-sorted, deduplicated permutation runs. The three
    /// runs must hold the same triple set in `[s,p,o]`, `[p,o,s]` and
    /// `[o,s,p]` element order respectively; `BTreeSet`'s `FromIterator`
    /// then bulk-loads each tree from its sorted input instead of paying a
    /// per-triple tree insertion — the ingest-path replacement for calling
    /// [`insert`](TripleIndex::insert) once per triple.
    pub(crate) fn from_sorted_runs(spo: Vec<IdTriple>, pos: Vec<IdTriple>, osp: Vec<IdTriple>) -> Self {
        debug_assert!(spo.windows(2).all(|w| w[0] < w[1]), "spo run must be sorted+distinct");
        debug_assert!(pos.windows(2).all(|w| w[0] < w[1]), "pos run must be sorted+distinct");
        debug_assert!(osp.windows(2).all(|w| w[0] < w[1]), "osp run must be sorted+distinct");
        debug_assert!(spo.len() == pos.len() && pos.len() == osp.len());
        TripleIndex {
            spo: spo.into_iter().collect(),
            pos: pos.into_iter().collect(),
            osp: osp.into_iter().collect(),
        }
    }

    /// All triples matching the pattern, where `None` is a wildcard.
    /// Results are yielded in `[s, p, o]` order regardless of the index used.
    pub fn matching<'a>(
        &'a self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Box<dyn Iterator<Item = IdTriple> + 'a> {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let hit = self.spo.contains(&[s, p, o]);
                Box::new(hit.then_some([s, p, o]).into_iter())
            }
            (Some(s), Some(p), None) => Box::new(range3(&self.spo, s, Some(p))),
            (Some(s), None, None) => Box::new(range3(&self.spo, s, None)),
            (Some(s), None, Some(o)) => Box::new(
                range3(&self.osp, o, Some(s)).map(|[o, s, p]| [s, p, o]),
            ),
            (None, Some(p), Some(o)) => Box::new(
                range3(&self.pos, p, Some(o)).map(|[p, o, s]| [s, p, o]),
            ),
            (None, Some(p), None) => Box::new(
                range3(&self.pos, p, None).map(|[p, o, s]| [s, p, o]),
            ),
            (None, None, Some(o)) => Box::new(
                range3(&self.osp, o, None).map(|[o, s, p]| [s, p, o]),
            ),
            (None, None, None) => Box::new(self.spo.iter().copied()),
        }
    }

    /// Count matches without materializing them.
    pub fn count_matching(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        self.matching(s, p, o).count()
    }

    // ---- sorted posting runs (merge-join building blocks) -----------------

    /// The `(object, subject)` pairs of predicate `p`, ascending by
    /// `(object, subject)` — a contiguous scan of the POS permutation.
    pub fn pairs_for_p(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        range3(&self.pos, p, None).map(|[_, o, s]| (o, s))
    }

    /// Subjects with a `p`-edge to `o`, ascending.
    pub fn subjects_for_po(&self, p: TermId, o: TermId) -> impl Iterator<Item = TermId> + '_ {
        range3(&self.pos, p, Some(o)).map(|[_, _, s]| s)
    }

    /// Objects of `s`'s `p`-edges, ascending.
    pub fn objects_for_sp(&self, s: TermId, p: TermId) -> impl Iterator<Item = TermId> + '_ {
        range3(&self.spo, s, Some(p)).map(|[_, _, o]| o)
    }
}

/// Range-scan a permutation on its first one or two components.
fn range3<'a>(
    set: &'a BTreeSet<IdTriple>,
    first: TermId,
    second: Option<TermId>,
) -> impl Iterator<Item = IdTriple> + 'a {
    let (lo, hi) = match second {
        Some(snd) => ([first, snd, MIN], [first, snd, MAX]),
        None => ([first, MIN, MIN], [first, MAX, MAX]),
    };
    set.range((Bound::Included(lo), Bound::Included(hi))).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_prng::StdRng;

    fn t(s: u32, p: u32, o: u32) -> IdTriple {
        [TermId(s), TermId(p), TermId(o)]
    }

    #[test]
    fn insert_remove_contains() {
        let mut idx = TripleIndex::new();
        assert!(idx.insert(t(1, 2, 3)));
        assert!(!idx.insert(t(1, 2, 3)));
        assert!(idx.contains(t(1, 2, 3)));
        assert!(idx.remove(t(1, 2, 3)));
        assert!(!idx.remove(t(1, 2, 3)));
        assert!(idx.is_empty());
    }

    #[test]
    fn all_eight_patterns() {
        let mut idx = TripleIndex::new();
        for trip in [t(1, 10, 100), t(1, 10, 101), t(1, 11, 100), t(2, 10, 100)] {
            idx.insert(trip);
        }
        let m = |s: Option<u32>, p: Option<u32>, o: Option<u32>| -> Vec<IdTriple> {
            idx.matching(s.map(TermId), p.map(TermId), o.map(TermId)).collect()
        };
        assert_eq!(m(Some(1), Some(10), Some(100)), vec![t(1, 10, 100)]);
        assert_eq!(m(Some(1), Some(10), None).len(), 2);
        assert_eq!(m(Some(1), None, None).len(), 3);
        assert_eq!(m(Some(1), None, Some(100)).len(), 2);
        assert_eq!(m(None, Some(10), Some(100)).len(), 2);
        assert_eq!(m(None, Some(10), None).len(), 3);
        assert_eq!(m(None, None, Some(100)).len(), 3);
        assert_eq!(m(None, None, None).len(), 4);
    }

    #[test]
    fn matching_yields_spo_ordered_fields() {
        let mut idx = TripleIndex::new();
        idx.insert(t(7, 8, 9));
        for pattern in [
            (None, Some(TermId(8)), Some(TermId(9))),
            (Some(TermId(7)), None, Some(TermId(9))),
            (None, None, Some(TermId(9))),
        ] {
            let got: Vec<_> = idx.matching(pattern.0, pattern.1, pattern.2).collect();
            assert_eq!(got, vec![t(7, 8, 9)]);
        }
    }

    /// Property: every pattern's matches equal a brute-force filter over all
    /// triples, across random triple sets and random (s, p, o) patterns.
    #[test]
    fn matches_agree_with_filter() {
        for case in 0u64..256 {
            let mut rng = StdRng::seed_from_u64(case);
            let mut idx = TripleIndex::new();
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..rng.gen_range(0..60) {
                let trip = t(rng.gen_range(0u32..8), rng.gen_range(0u32..8), rng.gen_range(0u32..8));
                idx.insert(trip);
                set.insert(trip);
            }
            let mut part = || rng.gen_bool(0.5).then(|| rng.gen_range(0u32..8));
            let (s, p, o) = (part(), part(), part());
            let expected: Vec<IdTriple> = set
                .iter()
                .copied()
                .filter(|[ts, tp, to]| {
                    s.is_none_or(|v| ts.0 == v)
                        && p.is_none_or(|v| tp.0 == v)
                        && o.is_none_or(|v| to.0 == v)
                })
                .collect();
            let mut got: Vec<IdTriple> =
                idx.matching(s.map(TermId), p.map(TermId), o.map(TermId)).collect();
            got.sort();
            assert_eq!(got, expected, "case {case}: pattern ({s:?}, {p:?}, {o:?})");
        }
    }
}
