//! Term interning: bijective mapping between [`Term`]s and dense u32 ids.
//!
//! The id map is keyed by a 64-bit FNV content hash instead of the term
//! itself: buckets hold term *ids* and equality checks go against the term
//! table, so the map never owns a second copy of any term. Interning an
//! owned term therefore costs zero clones, and map growth rehashes plain
//! `u64`s rather than re-walking string keys. The same hash (and bucket
//! layout) is shared with the bulk-ingest worker dictionaries in
//! [`crate::bulk`], which guarantees a lexed borrowed view and the owned
//! term it becomes always agree.

use rdfa_model::ntriples::TermRef;
use rdfa_model::Term;
use std::borrow::Cow;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

// ---- content hashing shared by the interner and bulk ingest --------------
//
// The hash is a pure function of term *content*, so the borrowed and owned
// views of one term always agree; nothing else is required of it — a
// collision merely lengthens a probe list, it can never change results.
// Strings are mixed a 64-bit word at a time (byte-serial hashes such as FNV
// cost ~3 cycles/byte on the multiply dependency chain and dominate the
// parse phase); each field's length is mixed in, which keeps field
// boundaries unambiguous without separator bytes.

const HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;
const HASH_MULT: u64 = 0x517c_c1b7_2722_0a95;

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(HASH_MULT)
}

#[inline]
fn hash_str(mut h: u64, s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = mix(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix(h, u64::from_le_bytes(tail));
    }
    mix(h, bytes.len() as u64)
}

/// Hash of a borrowed term view. Kind tags keep `<x>`, `_:x` and `"x"`
/// apart; the hash depends only on term content, never on whether a field
/// happens to be borrowed or owned.
pub(crate) fn hash64(t: &TermRef<'_>) -> u64 {
    match t {
        TermRef::Iri(s) => hash_str(mix(HASH_SEED, 1), s),
        TermRef::Blank(s) => hash_str(mix(HASH_SEED, 2), s),
        TermRef::Literal { lexical, datatype, lang } => {
            let mut h = hash_str(mix(HASH_SEED, 3), lexical);
            h = hash_str(h, datatype);
            match lang {
                Some(l) => hash_str(mix(h, 1), l),
                None => mix(h, 0),
            }
        }
    }
}

/// A borrowed view of an owned [`Term`], so owned terms flow through the
/// same hashing as zero-copy lexed views.
pub(crate) fn term_ref_of(term: &Term) -> TermRef<'_> {
    match term {
        Term::Iri(s) => TermRef::Iri(s),
        Term::Blank(s) => TermRef::Blank(s),
        Term::Literal(l) => TermRef::Literal {
            lexical: Cow::Borrowed(&l.lexical),
            datatype: &l.datatype,
            lang: l.lang.as_deref(),
        },
    }
}

/// Keys are already FNV-mixed 64-bit hashes; rehashing them through SipHash
/// would only burn cycles.
#[derive(Default, Clone, Debug)]
pub(crate) struct Passthrough(u64);

impl std::hash::Hasher for Passthrough {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = mix(self.0, u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

pub(crate) type U64Map<V> = HashMap<u64, V, BuildHasherDefault<Passthrough>>;

/// Hash-bucket occupancy: almost always one id per 64-bit hash; true
/// collisions fall back to a probe list compared term-by-term.
#[derive(Clone, Debug)]
pub(crate) enum Slot {
    One(u32),
    Many(Vec<u32>),
}

/// A dense identifier for an interned term. Ids are assigned sequentially
/// from 0 and never reused, so they index directly into the interner's
/// term table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Bijective term ↔ id table.
///
/// `get_or_intern` is the only way ids are created, so
/// `term(get_or_intern(t)) == t` and interning is idempotent — both
/// properties are property-tested.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    ids: U64Map<Slot>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    fn find(&self, h: u64, term: &Term) -> Option<TermId> {
        match self.ids.get(&h)? {
            Slot::One(i) => (self.terms[*i as usize] == *term).then_some(TermId(*i)),
            Slot::Many(is) => is
                .iter()
                .find(|&&i| self.terms[i as usize] == *term)
                .map(|&i| TermId(i)),
        }
    }

    fn insert_id(&mut self, h: u64, id: u32) {
        match self.ids.entry(h) {
            Entry::Occupied(mut e) => match e.get_mut() {
                Slot::One(first) => {
                    let first = *first;
                    *e.get_mut() = Slot::Many(vec![first, id]);
                }
                Slot::Many(is) => is.push(id),
            },
            Entry::Vacant(e) => {
                e.insert(Slot::One(id));
            }
        }
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn get_or_intern(&mut self, term: &Term) -> TermId {
        let h = hash64(&term_ref_of(term));
        if let Some(id) = self.find(h, term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.insert_id(h, id.0);
        id
    }

    /// Intern an owned term, returning its id. Equivalent to
    /// [`get_or_intern`](Interner::get_or_intern) but allocates nothing when
    /// the term is new — the bulk-ingest merge phase calls this for every
    /// first occurrence.
    pub fn get_or_intern_owned(&mut self, term: Term) -> TermId {
        let h = hash64(&term_ref_of(&term));
        self.get_or_intern_owned_hashed(h, term)
    }

    /// [`get_or_intern_owned`](Interner::get_or_intern_owned) with the
    /// content hash already in hand — bulk ingest hashed every term when it
    /// entered a worker dictionary and carries the hash through the merge.
    pub(crate) fn get_or_intern_owned_hashed(&mut self, h: u64, term: Term) -> TermId {
        debug_assert_eq!(h, hash64(&term_ref_of(&term)), "stale content hash");
        if let Some(id) = self.find(h, &term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term);
        self.insert_id(h, id.0);
        id
    }

    /// Look up the id of a term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.find(hash64(&term_ref_of(term)), term)
    }

    /// Resolve an id back to its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.idx()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_prng::StdRng;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.get_or_intern(&Term::iri("http://a"));
        let b = i.get_or_intern(&Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.get_or_intern(&Term::iri("http://a"));
        let b = i.get_or_intern(&Term::string("http://a")); // literal, not IRI
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert!(i.lookup(&Term::iri("http://a")).is_none());
        assert!(i.is_empty());
    }

    fn rand_word(rng: &mut StdRng, min: usize, max: usize) -> String {
        let n = rng.gen_range(min..=max);
        (0..n).map(|_| rng.gen_range(b'a'..=b'z') as char).collect()
    }

    fn arb_term(rng: &mut StdRng) -> Term {
        match rng.gen_range(0..5) {
            0 => Term::iri(format!("http://ex.org/{}", rand_word(rng, 1, 8))),
            1 => Term::string(rand_word(rng, 0, 8)),
            2 => Term::integer(rng.gen_range(i64::MIN..=i64::MAX)),
            3 => Term::boolean(rng.gen_bool(0.5)),
            _ => Term::blank(rand_word(rng, 1, 4)),
        }
    }

    /// Property: intern/lookup roundtrip and id↔term bijectivity over random
    /// term collections.
    #[test]
    fn roundtrip() {
        for case in 0u64..256 {
            let mut rng = StdRng::seed_from_u64(case);
            let terms: Vec<Term> =
                (0..rng.gen_range(0..40)).map(|_| arb_term(&mut rng)).collect();
            let mut i = Interner::new();
            let ids: Vec<_> = terms.iter().map(|t| i.get_or_intern(t)).collect();
            for (t, id) in terms.iter().zip(&ids) {
                assert_eq!(i.term(*id), t);
                assert_eq!(i.lookup(t), Some(*id));
            }
            // bijectivity: number of distinct ids == number of distinct terms
            let distinct_terms: std::collections::HashSet<_> = terms.iter().collect();
            let distinct_ids: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(distinct_terms.len(), distinct_ids.len(), "case {case}");
        }
    }
}
