//! Term interning: bijective mapping between [`Term`]s and dense u32 ids.

use rdfa_model::Term;
use std::collections::HashMap;

/// A dense identifier for an interned term. Ids are assigned sequentially
/// from 0 and never reused, so they index directly into the interner's
/// term table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Bijective term ↔ id table.
///
/// `get_or_intern` is the only way ids are created, so
/// `term(get_or_intern(t)) == t` and interning is idempotent — both
/// properties are property-tested.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn get_or_intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Look up the id of a term without interning it.
    pub fn lookup(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolve an id back to its term.
    ///
    /// # Panics
    /// Panics if the id was not produced by this interner.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.idx()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_prng::StdRng;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.get_or_intern(&Term::iri("http://a"));
        let b = i.get_or_intern(&Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut i = Interner::new();
        let a = i.get_or_intern(&Term::iri("http://a"));
        let b = i.get_or_intern(&Term::string("http://a")); // literal, not IRI
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_does_not_intern() {
        let i = Interner::new();
        assert!(i.lookup(&Term::iri("http://a")).is_none());
        assert!(i.is_empty());
    }

    fn rand_word(rng: &mut StdRng, min: usize, max: usize) -> String {
        let n = rng.gen_range(min..=max);
        (0..n).map(|_| rng.gen_range(b'a'..=b'z') as char).collect()
    }

    fn arb_term(rng: &mut StdRng) -> Term {
        match rng.gen_range(0..5) {
            0 => Term::iri(format!("http://ex.org/{}", rand_word(rng, 1, 8))),
            1 => Term::string(rand_word(rng, 0, 8)),
            2 => Term::integer(rng.gen_range(i64::MIN..=i64::MAX)),
            3 => Term::boolean(rng.gen_bool(0.5)),
            _ => Term::blank(rand_word(rng, 1, 4)),
        }
    }

    /// Property: intern/lookup roundtrip and id↔term bijectivity over random
    /// term collections.
    #[test]
    fn roundtrip() {
        for case in 0u64..256 {
            let mut rng = StdRng::seed_from_u64(case);
            let terms: Vec<Term> =
                (0..rng.gen_range(0..40)).map(|_| arb_term(&mut rng)).collect();
            let mut i = Interner::new();
            let ids: Vec<_> = terms.iter().map(|t| i.get_or_intern(t)).collect();
            for (t, id) in terms.iter().zip(&ids) {
                assert_eq!(i.term(*id), t);
                assert_eq!(i.lookup(t), Some(*id));
            }
            // bijectivity: number of distinct ids == number of distinct terms
            let distinct_terms: std::collections::HashSet<_> = terms.iter().collect();
            let distinct_ids: std::collections::HashSet<_> = ids.iter().collect();
            assert_eq!(distinct_terms.len(), distinct_ids.len(), "case {case}");
        }
    }
}
