//! [`ExtSet`] — the extension-set representation behind interactive faceting.
//!
//! A faceted-exploration state's extension is a set of entity ids that is
//! intersected, unioned and probed on every click (§5.3–§5.4). `BTreeSet`
//! makes each of those O(log n) pointer-chasing operations; `ExtSet` instead
//! keeps the ids as a **sorted dense `Vec<TermId>`**, switching to a **bitmap**
//! when the set covers more than ~1/64 of the id universe, so that
//!
//! - membership is a branch-free bit test (bitmap) or a binary search (sorted),
//! - intersection/union/difference are linear merges over contiguous memory,
//!   with **galloping** (exponential search) when one side is much smaller,
//! - iteration is a cache-friendly ascending scan in both representations.
//!
//! All operations yield ascending id order, so downstream marker computation
//! is deterministic regardless of representation.

use crate::interner::TermId;
use std::collections::BTreeSet;

/// Size ratio beyond which intersections gallop instead of merging.
const GALLOP_RATIO: usize = 16;

/// A set is converted to a bitmap when `len * DENSITY_FACTOR >= universe`.
const DENSITY_FACTOR: usize = 64;

#[derive(Debug, Clone)]
enum Repr {
    /// Strictly ascending ids.
    Sorted(Vec<TermId>),
    /// One bit per id in `0..words.len()*64`; `len` caches the popcount.
    Bitmap { words: Vec<u64>, len: usize },
}

/// A set of entity ids optimized for the faceted-interaction hot path.
#[derive(Debug, Clone)]
pub struct ExtSet {
    repr: Repr,
}

impl Default for ExtSet {
    fn default() -> Self {
        ExtSet::new()
    }
}

impl ExtSet {
    /// The empty set.
    pub fn new() -> Self {
        ExtSet { repr: Repr::Sorted(Vec::new()) }
    }

    /// Build from a vector that is already strictly ascending.
    ///
    /// Debug builds assert the precondition; release builds trust it.
    pub fn from_sorted_vec(ids: Vec<TermId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be strictly ascending");
        ExtSet { repr: Repr::Sorted(ids) }
    }

    /// Build from an iterator that yields ids in ascending order,
    /// deduplicating adjacent repeats (the shape posting-run scans produce).
    pub fn from_sorted_iter(iter: impl IntoIterator<Item = TermId>) -> Self {
        let mut ids: Vec<TermId> = Vec::new();
        for id in iter {
            match ids.last() {
                Some(&last) if last == id => {}
                Some(&last) => {
                    debug_assert!(last < id, "ids must be ascending");
                    ids.push(id);
                }
                None => ids.push(id),
            }
        }
        ExtSet { repr: Repr::Sorted(ids) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Sorted(v) => v.len(),
            Repr::Bitmap { len, .. } => *len,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test: O(1) on the bitmap, binary search on the vector.
    pub fn contains(&self, id: TermId) -> bool {
        match &self.repr {
            Repr::Sorted(v) => v.binary_search(&id).is_ok(),
            Repr::Bitmap { words, .. } => {
                let i = id.idx();
                words.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1)
            }
        }
    }

    /// `true` when every element of `self` is also in `other`.
    pub fn is_subset(&self, other: &ExtSet) -> bool {
        self.len() <= other.len() && self.iter().all(|id| other.contains(id))
    }

    /// Iterate the ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        match &self.repr {
            Repr::Sorted(v) => Iter::Sorted(v.iter()),
            Repr::Bitmap { words, .. } => Iter::Bitmap { words, word_idx: 0, current: words.first().copied().unwrap_or(0) },
        }
    }

    /// Convert to the bitmap representation when dense enough relative to
    /// `universe` (the number of interned terms); no-op otherwise. The
    /// threshold is ~1/64: below it the bitmap would mostly hold zero words.
    pub fn densify(&mut self, universe: usize) {
        if let Repr::Sorted(v) = &self.repr {
            if universe > 0 && v.len().saturating_mul(DENSITY_FACTOR) >= universe {
                let words_len = universe.div_ceil(64);
                let mut words = vec![0u64; words_len];
                let mut len = 0usize;
                for id in v {
                    let i = id.idx();
                    if i / 64 >= words.len() {
                        words.resize(i / 64 + 1, 0);
                    }
                    words[i / 64] |= 1 << (i % 64);
                    len += 1;
                }
                self.repr = Repr::Bitmap { words, len };
            }
        }
    }

    /// A copy in the sorted-vector representation.
    pub fn to_sorted_vec(&self) -> Vec<TermId> {
        self.iter().collect()
    }

    /// A copy as a `BTreeSet` (interop with the classic APIs).
    pub fn to_btree_set(&self) -> BTreeSet<TermId> {
        self.iter().collect()
    }

    /// Set intersection; output is sorted. Gallops when one side is at
    /// least [`GALLOP_RATIO`]× larger than the other.
    pub fn intersect(&self, other: &ExtSet) -> ExtSet {
        // bitmap ∩ bitmap: word-parallel AND
        if let (Repr::Bitmap { words: a, .. }, Repr::Bitmap { words: b, .. }) =
            (&self.repr, &other.repr)
        {
            let n = a.len().min(b.len());
            let mut words = vec![0u64; n];
            let mut len = 0usize;
            for i in 0..n {
                let w = a[i] & b[i];
                words[i] = w;
                len += w.count_ones() as usize;
            }
            return ExtSet { repr: Repr::Bitmap { words, len } };
        }
        // one side a bitmap: probe it while scanning the vector
        if let Repr::Bitmap { .. } = &other.repr {
            return ExtSet::from_sorted_iter(self.iter().filter(|&id| other.contains(id)));
        }
        if let Repr::Bitmap { .. } = &self.repr {
            return ExtSet::from_sorted_iter(other.iter().filter(|&id| self.contains(id)));
        }
        let (Repr::Sorted(a), Repr::Sorted(b)) = (&self.repr, &other.repr) else {
            unreachable!()
        };
        let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
            ExtSet::from_sorted_vec(gallop_intersect(small, large))
        } else {
            ExtSet::from_sorted_vec(merge_intersect(a, b))
        }
    }

    /// Set union; output is sorted.
    pub fn union(&self, other: &ExtSet) -> ExtSet {
        if let (Repr::Bitmap { words: a, .. }, Repr::Bitmap { words: b, .. }) =
            (&self.repr, &other.repr)
        {
            let n = a.len().max(b.len());
            let mut words = vec![0u64; n];
            let mut len = 0usize;
            for (i, w) in words.iter_mut().enumerate() {
                *w = a.get(i).copied().unwrap_or(0) | b.get(i).copied().unwrap_or(0);
                len += w.count_ones() as usize;
            }
            return ExtSet { repr: Repr::Bitmap { words, len } };
        }
        ExtSet::from_sorted_iter(merge_sorted(self.iter(), other.iter()))
    }

    /// Set difference `self \ other`; output is sorted.
    pub fn difference(&self, other: &ExtSet) -> ExtSet {
        ExtSet::from_sorted_iter(self.iter().filter(|&id| !other.contains(id)))
    }

    /// An order-independent 64-bit fingerprint of the contents (FNV-1a over
    /// the ascending ids mixed with the length) — the state component of the
    /// facet-cache key. Equal sets always fingerprint equally; collisions
    /// across distinct sets are guarded by also keying on `len`.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for id in self.iter() {
            h ^= u64::from(id.0);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^ (self.len() as u64).wrapping_mul(FNV_PRIME)
    }
}

impl PartialEq for ExtSet {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for ExtSet {}

impl FromIterator<TermId> for ExtSet {
    /// Collect from an arbitrary-order iterator (sorts and dedups).
    fn from_iter<I: IntoIterator<Item = TermId>>(iter: I) -> Self {
        let mut ids: Vec<TermId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        ExtSet { repr: Repr::Sorted(ids) }
    }
}

impl From<&BTreeSet<TermId>> for ExtSet {
    fn from(set: &BTreeSet<TermId>) -> Self {
        ExtSet { repr: Repr::Sorted(set.iter().copied().collect()) }
    }
}

impl From<BTreeSet<TermId>> for ExtSet {
    fn from(set: BTreeSet<TermId>) -> Self {
        ExtSet::from(&set)
    }
}

impl<'a> IntoIterator for &'a ExtSet {
    type Item = TermId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over an [`ExtSet`].
pub enum Iter<'a> {
    Sorted(std::slice::Iter<'a, TermId>),
    Bitmap { words: &'a [u64], word_idx: usize, current: u64 },
}

impl Iterator for Iter<'_> {
    type Item = TermId;

    fn next(&mut self) -> Option<TermId> {
        match self {
            Iter::Sorted(it) => it.next().copied(),
            Iter::Bitmap { words, word_idx, current } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros() as usize;
                    *current &= *current - 1;
                    return Some(TermId((*word_idx * 64 + bit) as u32));
                }
                *word_idx += 1;
                *current = *words.get(*word_idx)?;
            },
        }
    }
}

/// Linear merge intersection of two sorted slices.
fn merge_intersect(a: &[TermId], b: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping intersection: for each element of the small side, exponential-
/// search forward in the large side. O(|small| · log |large|) with a tight
/// constant when matches cluster.
fn gallop_intersect(small: &[TermId], large: &[TermId]) -> Vec<TermId> {
    let mut out = Vec::with_capacity(small.len());
    let mut base = 0usize;
    for &x in small {
        if base >= large.len() {
            break;
        }
        // widen the window exponentially until its last element reaches x
        let mut step = 1usize;
        let mut end = base + 1;
        while end < large.len() && large[end - 1] < x {
            end = (end + step).min(large.len());
            step *= 2;
        }
        match large[base..end].binary_search(&x) {
            Ok(k) => {
                out.push(x);
                base += k + 1;
            }
            Err(k) => base += k,
        }
    }
    out
}

/// Merge two ascending iterators into one ascending, deduplicated stream.
/// Used to fuse the explicit and inferred posting runs of a [`crate::Store`].
pub fn merge_sorted<T, I, J>(a: I, b: J) -> MergeSorted<T, I::IntoIter, J::IntoIter>
where
    T: Ord + Copy,
    I: IntoIterator<Item = T>,
    J: IntoIterator<Item = T>,
{
    let mut a = a.into_iter();
    let mut b = b.into_iter();
    let na = a.next();
    let nb = b.next();
    MergeSorted { a, b, na, nb }
}

/// See [`merge_sorted`].
pub struct MergeSorted<T: Ord + Copy, A: Iterator<Item = T>, B: Iterator<Item = T>> {
    a: A,
    b: B,
    na: Option<T>,
    nb: Option<T>,
}

impl<T: Ord + Copy, A: Iterator<Item = T>, B: Iterator<Item = T>> Iterator
    for MergeSorted<T, A, B>
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match (self.na, self.nb) {
            (Some(x), Some(y)) => match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    self.na = self.a.next();
                    Some(x)
                }
                std::cmp::Ordering::Greater => {
                    self.nb = self.b.next();
                    Some(y)
                }
                std::cmp::Ordering::Equal => {
                    self.na = self.a.next();
                    self.nb = self.b.next();
                    Some(x)
                }
            },
            (Some(x), None) => {
                self.na = self.a.next();
                Some(x)
            }
            (None, Some(y)) => {
                self.nb = self.b.next();
                Some(y)
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_prng::StdRng;

    fn ids(v: &[u32]) -> Vec<TermId> {
        v.iter().map(|&i| TermId(i)).collect()
    }

    fn random_set(rng: &mut StdRng, max: u32, n: usize) -> BTreeSet<TermId> {
        (0..n).map(|_| TermId(rng.gen_range(0..max))).collect()
    }

    #[test]
    fn basic_ops() {
        let a = ExtSet::from_sorted_vec(ids(&[1, 3, 5, 7]));
        let b = ExtSet::from_sorted_vec(ids(&[3, 4, 5]));
        assert_eq!(a.intersect(&b).to_sorted_vec(), ids(&[3, 5]));
        assert_eq!(a.union(&b).to_sorted_vec(), ids(&[1, 3, 4, 5, 7]));
        assert_eq!(a.difference(&b).to_sorted_vec(), ids(&[1, 7]));
        assert!(a.contains(TermId(5)));
        assert!(!a.contains(TermId(4)));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let s: ExtSet = ids(&[5, 1, 5, 3, 1]).into_iter().collect();
        assert_eq!(s.to_sorted_vec(), ids(&[1, 3, 5]));
    }

    #[test]
    fn densify_switches_to_bitmap_and_preserves_contents() {
        let v = ids(&[0, 1, 2, 3, 63, 64, 65, 127]);
        let mut s = ExtSet::from_sorted_vec(v.clone());
        s.densify(128); // 8 * 64 >= 128 → bitmap
        assert!(matches!(s.repr, Repr::Bitmap { .. }));
        assert_eq!(s.to_sorted_vec(), v);
        assert_eq!(s.len(), v.len());
        for id in &v {
            assert!(s.contains(*id));
        }
        assert!(!s.contains(TermId(62)));
    }

    #[test]
    fn sparse_sets_stay_sorted() {
        let mut s = ExtSet::from_sorted_vec(ids(&[1, 1000]));
        s.densify(1_000_000);
        assert!(matches!(s.repr, Repr::Sorted(_)));
    }

    #[test]
    fn equality_is_representation_independent() {
        let v = ids(&[2, 66, 130]);
        let a = ExtSet::from_sorted_vec(v.clone());
        let mut b = ExtSet::from_sorted_vec(v);
        b.densify(140);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    /// Property: every op agrees with the BTreeSet oracle, across sorted,
    /// bitmap, and mixed representations.
    #[test]
    fn ops_agree_with_btreeset_oracle() {
        for case in 0u64..200 {
            let mut rng = StdRng::seed_from_u64(case);
            let universe = rng.gen_range(1u32..500);
            let na = rng.gen_range(0..80);
            let a_ref = random_set(&mut rng, universe, na);
            let nb = rng.gen_range(0..80);
            let b_ref = random_set(&mut rng, universe, nb);
            let mut variants_a = vec![ExtSet::from(&a_ref)];
            let mut dense_a = ExtSet::from(&a_ref);
            dense_a.densify(universe as usize);
            variants_a.push(dense_a);
            let mut variants_b = vec![ExtSet::from(&b_ref)];
            let mut dense_b = ExtSet::from(&b_ref);
            dense_b.densify(universe as usize);
            variants_b.push(dense_b);
            for a in &variants_a {
                for b in &variants_b {
                    let inter: BTreeSet<TermId> = a.intersect(b).iter().collect();
                    let uni: BTreeSet<TermId> = a.union(b).iter().collect();
                    let diff: BTreeSet<TermId> = a.difference(b).iter().collect();
                    assert_eq!(inter, &a_ref & &b_ref, "case {case} intersect");
                    assert_eq!(uni, &a_ref | &b_ref, "case {case} union");
                    assert_eq!(diff, &a_ref - &b_ref, "case {case} difference");
                }
            }
        }
    }

    /// Property: galloping intersection (forced by a large size skew) agrees
    /// with the merge path.
    #[test]
    fn galloping_matches_merge() {
        for case in 0u64..50 {
            let mut rng = StdRng::seed_from_u64(1000 + case);
            let large_ref = random_set(&mut rng, 10_000, 2000);
            let small_ref = random_set(&mut rng, 10_000, 5);
            let large = ExtSet::from(&large_ref);
            let small = ExtSet::from(&small_ref);
            let got: BTreeSet<TermId> = small.intersect(&large).iter().collect();
            assert_eq!(got, &small_ref & &large_ref, "case {case}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_and_matches() {
        let a = ExtSet::from_sorted_vec(ids(&[1, 2, 3]));
        let b = ExtSet::from_sorted_vec(ids(&[1, 2, 3]));
        let c = ExtSet::from_sorted_vec(ids(&[1, 2, 4]));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(ExtSet::new().fingerprint(), a.fingerprint());
    }

    #[test]
    fn merge_sorted_dedups() {
        let got: Vec<TermId> =
            merge_sorted(ids(&[1, 3, 5]), ids(&[2, 3, 6])).collect();
        assert_eq!(got, ids(&[1, 2, 3, 5, 6]));
    }
}
