//! Dataset statistics: the count information the faceted UI shows next to
//! every transition marker, the summary numbers the efficiency experiments
//! report, and a VoID export (the "Vocabulary of Interlinked Datasets" the
//! paper's related-work category C4 publishes statistics with, §3.3.5).

use crate::interner::TermId;
use crate::store::Store;
use rdfa_model::{Graph, Term};
use std::collections::{BTreeMap, BTreeSet};

/// The VoID vocabulary terms we emit.
pub mod void {
    pub const NS: &str = "http://rdfs.org/ns/void#";
    pub const DATASET: &str = "http://rdfs.org/ns/void#Dataset";
    pub const TRIPLES: &str = "http://rdfs.org/ns/void#triples";
    pub const ENTITIES: &str = "http://rdfs.org/ns/void#entities";
    pub const CLASSES: &str = "http://rdfs.org/ns/void#classes";
    pub const PROPERTIES: &str = "http://rdfs.org/ns/void#properties";
    pub const DISTINCT_SUBJECTS: &str = "http://rdfs.org/ns/void#distinctSubjects";
    pub const DISTINCT_OBJECTS: &str = "http://rdfs.org/ns/void#distinctObjects";
    pub const CLASS_PARTITION: &str = "http://rdfs.org/ns/void#classPartition";
    pub const CLASS: &str = "http://rdfs.org/ns/void#class";
    pub const PROPERTY_PARTITION: &str = "http://rdfs.org/ns/void#propertyPartition";
    pub const PROPERTY: &str = "http://rdfs.org/ns/void#property";
}

/// Summary statistics of a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Explicit triples.
    pub triples: usize,
    /// Entailed triples (explicit + inferred).
    pub entailed_triples: usize,
    /// Distinct interned terms.
    pub terms: usize,
    /// Number of classes.
    pub classes: usize,
    /// Number of properties.
    pub properties: usize,
    /// Entailed instance count per class.
    pub class_instances: BTreeMap<TermId, usize>,
    /// Asserted usage count per property.
    pub property_usage: BTreeMap<TermId, usize>,
}

impl StoreStats {
    /// Gather statistics from a store.
    pub fn gather(store: &Store) -> Self {
        let classes = store.classes();
        let properties = store.properties();
        let class_instances = classes
            .iter()
            .map(|&c| (c, store.instances(c).len()))
            .collect();
        let mut property_usage: BTreeMap<TermId, usize> = BTreeMap::new();
        for &p in &properties {
            let n = store.matching_explicit(None, Some(p), None).count();
            if n > 0 {
                property_usage.insert(p, n);
            }
        }
        StoreStats {
            triples: store.len(),
            entailed_triples: store.len_entailed(),
            terms: store.term_count(),
            classes: classes.len(),
            properties: properties.len(),
            class_instances,
            property_usage,
        }
    }

    /// Export the statistics as a VoID description of the dataset — the
    /// publish-statistics-in-RDF workflow of category C4 (§3.3.5). The
    /// result is an ordinary RDF graph, loadable and queryable like any
    /// other.
    pub fn to_void_graph(&self, store: &Store, dataset_iri: &str) -> Graph {
        let mut g = Graph::new();
        let ds = Term::iri(dataset_iri);
        let rdf_type = Term::iri(rdfa_model::vocab::rdf::TYPE);
        g.add(ds.clone(), rdf_type.clone(), Term::iri(void::DATASET));
        g.add(ds.clone(), Term::iri(void::TRIPLES), Term::integer(self.triples as i64));
        g.add(ds.clone(), Term::iri(void::CLASSES), Term::integer(self.classes as i64));
        g.add(ds.clone(), Term::iri(void::PROPERTIES), Term::integer(self.properties as i64));
        let subjects: BTreeSet<TermId> = store.iter_explicit().map(|[s, _, _]| s).collect();
        let objects: BTreeSet<TermId> = store.iter_explicit().map(|[_, _, o]| o).collect();
        g.add(
            ds.clone(),
            Term::iri(void::DISTINCT_SUBJECTS),
            Term::integer(subjects.len() as i64),
        );
        g.add(
            ds.clone(),
            Term::iri(void::DISTINCT_OBJECTS),
            Term::integer(objects.len() as i64),
        );
        g.add(
            ds.clone(),
            Term::iri(void::ENTITIES),
            Term::integer(subjects.union(&objects).count() as i64),
        );
        for (i, (&c, &n)) in self.class_instances.iter().enumerate() {
            let part = Term::iri(format!("{dataset_iri}/classPartition/{i}"));
            g.add(ds.clone(), Term::iri(void::CLASS_PARTITION), part.clone());
            g.add(part.clone(), Term::iri(void::CLASS), store.term(c).clone());
            g.add(part, Term::iri(void::ENTITIES), Term::integer(n as i64));
        }
        for (i, (&p, &n)) in self.property_usage.iter().enumerate() {
            let part = Term::iri(format!("{dataset_iri}/propertyPartition/{i}"));
            g.add(ds.clone(), Term::iri(void::PROPERTY_PARTITION), part.clone());
            g.add(part.clone(), Term::iri(void::PROPERTY), store.term(p).clone());
            g.add(part, Term::iri(void::TRIPLES), Term::integer(n as i64));
        }
        g
    }

    /// Render as a small text report (used by examples and the harness).
    pub fn report(&self, store: &Store) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "triples: {} (entailed: {}), terms: {}, classes: {}, properties: {}\n",
            self.triples, self.entailed_triples, self.terms, self.classes, self.properties
        ));
        for (&c, &n) in &self.class_instances {
            out.push_str(&format!("  class {:<24} {} instances\n", store.term(c).display_name(), n));
        }
        for (&p, &n) in &self.property_usage {
            out.push_str(&format!("  prop  {:<24} {} triples\n", store.term(p).display_name(), n));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gathers_counts() {
        let mut store = Store::new();
        store
            .load_turtle(
                r#"
                @prefix ex: <http://example.org/> .
                @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                ex:Laptop rdfs:subClassOf ex:Product .
                ex:l1 a ex:Laptop ; ex:price 900 .
                ex:l2 a ex:Laptop ; ex:price 1000 .
                "#,
            )
            .unwrap();
        let stats = StoreStats::gather(&store);
        assert_eq!(stats.triples, 5);
        assert_eq!(stats.classes, 2);
        let product = store.lookup_iri("http://example.org/Product").unwrap();
        assert_eq!(stats.class_instances[&product], 2);
        let price = store.lookup_iri("http://example.org/price").unwrap();
        assert_eq!(stats.property_usage[&price], 2);
        let report = stats.report(&store);
        assert!(report.contains("Laptop"));
        assert!(report.contains("price"));
    }

    #[test]
    fn void_export_is_loadable_and_queryable() {
        let mut store = Store::new();
        store
            .load_turtle(
                r#"
                @prefix ex: <http://example.org/> .
                ex:l1 a ex:Laptop ; ex:price 900 .
                ex:l2 a ex:Laptop ; ex:price 1000 .
                "#,
            )
            .unwrap();
        let stats = StoreStats::gather(&store);
        let void_graph = stats.to_void_graph(&store, "http://example.org/dataset");
        // the description is itself RDF: load it into a fresh store
        let mut meta = Store::new();
        meta.load_graph(&void_graph);
        let triples_prop = meta.lookup_iri(void::TRIPLES).unwrap();
        let ds = meta.lookup_iri("http://example.org/dataset").unwrap();
        let reported: Vec<_> = meta.matching(Some(ds), Some(triples_prop), None).collect();
        assert_eq!(reported.len(), 1);
        assert_eq!(meta.term(reported[0][2]), &Term::integer(4));
        // per-class partitions present
        let cp = meta.lookup_iri(void::CLASS_PARTITION).unwrap();
        assert_eq!(meta.matching(Some(ds), Some(cp), None).count(), 1);
    }
}
