//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) — the checksum
//! guarding every snapshot section and WAL record. Implemented locally so
//! the durability layer adds no dependencies; the table is built once.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // the classic check value for the IEEE polynomial
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hello durable world".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
