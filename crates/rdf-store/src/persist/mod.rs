//! Crash-safe persistence for the [`Store`]: checksummed snapshots + a
//! write-ahead log, recovery-on-open, and a deterministic crash-injection
//! harness.
//!
//! # On-disk layout
//!
//! A persistent store is a directory:
//!
//! ```text
//! CURRENT            the active generation number (ASCII u64)
//! snapshot.<g>.bin   checksummed binary dump of generation g (see snapshot.rs)
//! wal.<g>.log        append-only log of mutations since snapshot g (see wal.rs)
//! ```
//!
//! Mutations are logged **write-ahead** (record appended, then applied in
//! memory). [`PersistentStore::checkpoint`] compacts: it writes the next
//! generation's snapshot to a temp file, fsyncs, atomically renames it into
//! place, creates the next WAL, then flips `CURRENT` via the same
//! temp-file + rename + fsync-dir dance. A crash at *any* point leaves
//! `CURRENT` naming a complete snapshot/WAL pair: recovery loads the
//! snapshot, replays the WAL (truncating a torn tail), and rematerializes
//! the RDFS closure.
//!
//! # Crash injection
//!
//! Every labeled point on the write paths consults a [`CrashInjector`]
//! (config- or env-driven, seeded via `rdfa-prng`); when it fires, writing
//! stops mid-record and the handle is poisoned, simulating a kill. The
//! crash-matrix test in `tests/crash_recovery.rs` proves that after every
//! labeled crash, under every fsync policy, the store reopens to a
//! consistent prefix of the committed data.

pub mod crash;
pub mod crc;
mod snapshot;
mod wal;

pub use crash::{CrashInjector, CRASH_POINTS};
pub use wal::WalTruncation;

use crate::bulk::{BlockReader, BulkLoader, LoadOptions, LoadStats};
use crate::store::Store;
use rdfa_model::{ntriples, turtle, Graph, NtriplesError, Triple};
use std::fmt;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use wal::Wal;

/// Everything that can go wrong in the persistence layer.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure.
    Io { context: &'static str, source: std::io::Error },
    /// The snapshot file does not start with the expected magic bytes.
    BadMagic { found: Vec<u8> },
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion { found: u32 },
    /// A CRC-32 check failed — the bytes on disk are not the bytes written.
    Checksum { what: &'static str, expected: u32, found: u32 },
    /// Structurally invalid data (truncated section, bad tag, …).
    Corrupt { what: &'static str, detail: String },
    /// A WAL payload or imported document failed N-Triples parsing.
    Ntriples(NtriplesError),
    /// A Turtle document failed parsing during a logged load.
    Turtle(String),
    /// The crash-injection harness fired at this labeled point.
    InjectedCrash { point: &'static str },
    /// The handle was poisoned by an earlier failure; reopen the store.
    Dead,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => write!(f, "{context}: {source}"),
            PersistError::BadMagic { found } => {
                write!(f, "not a snapshot file (magic {found:02x?})")
            }
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            PersistError::Checksum { what, expected, found } => write!(
                f,
                "checksum mismatch in {what}: expected {expected:08x}, found {found:08x}"
            ),
            PersistError::Corrupt { what, detail } => write!(f, "corrupt {what}: {detail}"),
            PersistError::Ntriples(e) => write!(f, "{e}"),
            PersistError::Turtle(msg) => write!(f, "turtle: {msg}"),
            PersistError::InjectedCrash { point } => {
                write!(f, "injected crash at {point}")
            }
            PersistError::Dead => {
                write!(f, "persistence handle poisoned by an earlier failure; reopen the store")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Ntriples(e) => Some(e),
            _ => None,
        }
    }
}

/// When WAL appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record — no acknowledged write is ever lost.
    Always,
    /// Sync every N records — bounded loss window, much higher throughput.
    EveryN(u32),
    /// Leave syncing to the OS — fastest, loses the page-cache tail on
    /// power failure (process crashes still lose nothing).
    Never,
}

impl FsyncPolicy {
    /// Parse `"always"`, `"never"`, or `"every:N"`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => other
                .strip_prefix("every:")
                .and_then(|n| n.parse().ok())
                .map(FsyncPolicy::EveryN),
        }
    }
}

/// Tunables for a persistent store.
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// WAL durability policy.
    pub fsync: FsyncPolicy,
    /// Crash-injection hook (off in production).
    pub crash: Arc<CrashInjector>,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig { fsync: FsyncPolicy::Always, crash: CrashInjector::off() }
    }
}

impl PersistConfig {
    /// Config honouring `RDFA_FSYNC` (`always`/`never`/`every:N`) and the
    /// `RDFA_CRASHPOINT`/`RDFA_CRASHPOINT_SEED` crash-injection variables.
    pub fn from_env() -> PersistConfig {
        let fsync = std::env::var("RDFA_FSYNC")
            .ok()
            .and_then(|s| FsyncPolicy::parse(s.trim()))
            .unwrap_or(FsyncPolicy::Always);
        PersistConfig { fsync, crash: CrashInjector::from_env() }
    }
}

/// One logical mutation, as recorded in (and replayed from) the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum Mutation {
    Insert(Triple),
    Remove(Triple),
}

/// What recovery found when the store was opened.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The generation named by `CURRENT` (0 before the first checkpoint).
    pub generation: u64,
    /// Explicit triples loaded from the snapshot.
    pub snapshot_triples: usize,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Set when the WAL had a torn/corrupt tail that was cut off.
    pub wal_truncation: Option<WalTruncation>,
}

struct Inner {
    wal: Wal,
    generation: u64,
    config: PersistConfig,
    dead: bool,
}

/// The durability half of a [`PersistentStore`], separable from the store
/// itself: the WAL handle, checkpoint machinery and generation counter
/// behind one mutex, with `&self` methods throughout.
///
/// [`PersistentStore::into_parts`] splits a recovered store into its
/// [`Store`] and its `Journal` so a concurrent server can put the store
/// behind an MVCC [`crate::SnapshotStore`] (readers never touch the
/// journal) while updates log through the journal and checkpoints run from
/// an immutable snapshot, entirely off the write path.
///
/// Ordering contract for concurrent use: a WAL append and the in-memory
/// publication of the same batch must happen under **one** journal lock
/// hold ([`Journal::log_mutations_then`]), and a checkpoint captures its
/// store view under that same lock ([`Journal::checkpoint_with`]). Then
/// every checkpointed snapshot contains exactly the batches whose WAL
/// records it supersedes — a batch is never both compacted away and lost.
pub struct Journal {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl Journal {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current checkpoint generation (bumped by every checkpoint).
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Records in the current WAL — the replay work a crash would cost now.
    pub fn wal_records(&self) -> u64 {
        self.lock().wal.records
    }

    /// True once a durability failure (or injected crash) poisoned the
    /// handle; all further mutations fail until the directory is reopened.
    pub fn is_dead(&self) -> bool {
        let inner = self.lock();
        inner.dead || inner.wal.is_dead()
    }

    /// Flush the WAL to disk regardless of fsync policy.
    pub fn sync(&self) -> Result<(), PersistError> {
        self.lock().wal.sync()
    }

    /// Append already-applied mutations as one atomic WAL batch record.
    pub fn log_mutations(&self, mutations: &[Mutation]) -> Result<(), PersistError> {
        self.log_mutations_then(mutations, || ())
    }

    /// Append a mutation batch, then run `publish` **before releasing the
    /// journal lock**. The concurrent server passes the snapshot-publish
    /// swap as `publish`, making "logged" and "visible" atomic with respect
    /// to [`Journal::checkpoint_with`]. On append failure `publish` never
    /// runs — the batch must not become visible, or a crash would forget an
    /// acknowledged update.
    pub fn log_mutations_then<R>(
        &self,
        mutations: &[Mutation],
        publish: impl FnOnce() -> R,
    ) -> Result<R, PersistError> {
        let mut inner = self.lock();
        if inner.dead {
            return Err(PersistError::Dead);
        }
        if !mutations.is_empty() {
            inner.wal.append_batch(mutations)?;
        }
        Ok(publish())
    }

    /// Append a bulk-load payload, then run `publish` under the same lock
    /// hold (see [`Journal::log_mutations_then`]).
    pub fn log_load_then<R>(
        &self,
        text: &str,
        publish: impl FnOnce() -> R,
    ) -> Result<R, PersistError> {
        let mut inner = self.lock();
        if inner.dead {
            return Err(PersistError::Dead);
        }
        inner.wal.append_load(text)?;
        Ok(publish())
    }

    /// Checkpoint from a store view captured *under the journal lock*:
    /// `snap` runs after the lock is taken, so the snapshot it returns
    /// contains every batch whose WAL record the checkpoint supersedes.
    /// Readers proceed throughout; updates queue on the journal only.
    pub fn checkpoint_with<S: std::ops::Deref<Target = Store>>(
        &self,
        snap: impl FnOnce() -> S,
    ) -> Result<u64, PersistError> {
        let mut inner = self.lock();
        if inner.dead || inner.wal.is_dead() {
            return Err(PersistError::Dead);
        }
        let view = snap();
        let result = self.checkpoint_locked(&mut inner, &view);
        if result.is_err() {
            inner.dead = true;
        }
        result
    }

    /// Checkpoint from a directly-borrowed store (the single-writer path).
    pub fn checkpoint_from(&self, store: &Store) -> Result<u64, PersistError> {
        self.checkpoint_with(|| store)
    }

    fn checkpoint_locked(&self, inner: &mut Inner, store: &Store) -> Result<u64, PersistError> {
        let crash = Arc::clone(&inner.config.crash);
        let io = |context: &'static str| {
            move |e: std::io::Error| PersistError::Io { context, source: e }
        };
        crash.check("checkpoint.begin")?;
        let next = inner.generation + 1;

        // 1. snapshot to a temp file, fsync, atomic rename into place
        let tmp = self.dir.join(format!("snapshot.{next}.tmp"));
        let snap = self.dir.join(format!("snapshot.{next}.bin"));
        {
            let mut file = File::create(&tmp).map_err(io("snapshot create"))?;
            snapshot::write_snapshot(store, &mut file, &crash)?;
            file.sync_all().map_err(io("snapshot fsync"))?;
        }
        crash.check("snapshot.fsync")?;
        fs::rename(&tmp, &snap).map_err(io("snapshot rename"))?;
        sync_dir(&self.dir)?;
        crash.check("snapshot.rename")?;

        // 2. the next WAL starts empty
        let wal_path = self.dir.join(format!("wal.{next}.log"));
        File::create(&wal_path)
            .and_then(|f| f.sync_all())
            .map_err(io("wal create"))?;
        sync_dir(&self.dir)?;
        crash.check("checkpoint.wal-created")?;

        // 3. flip CURRENT — the commit point of the checkpoint
        let cur_tmp = self.dir.join("CURRENT.tmp");
        let cur = self.dir.join("CURRENT");
        {
            let mut file = File::create(&cur_tmp).map_err(io("CURRENT create"))?;
            file.write_all(format!("{next}\n").as_bytes()).map_err(io("CURRENT write"))?;
            file.sync_all().map_err(io("CURRENT fsync"))?;
        }
        fs::rename(&cur_tmp, &cur).map_err(io("CURRENT rename"))?;
        sync_dir(&self.dir)?;
        crash.check("checkpoint.current")?;

        // 4. swap in-memory state to the new generation
        inner.wal =
            Wal::open_append(&wal_path, inner.config.fsync, Arc::clone(&crash), 0)?;
        inner.generation = next;

        // 5. best-effort cleanup of superseded generations and stray temps
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let stale = name.ends_with(".tmp")
                    || parse_generation(&name, "snapshot.", ".bin")
                        .is_some_and(|g| g != next)
                    || parse_generation(&name, "wal.", ".log").is_some_and(|g| g != next);
                if stale {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        crash.check("checkpoint.cleanup")?;
        Ok(next)
    }
}

/// A [`Store`] bound to a directory: every mutation is WAL-logged before it
/// is applied, [`checkpoint`](PersistentStore::checkpoint) compacts the log
/// into a checksummed snapshot, and reopening the directory recovers to the
/// last consistent state. Dereferences to [`Store`] for the whole read API.
pub struct PersistentStore {
    store: Store,
    journal: Journal,
    recovery: RecoveryReport,
}

impl std::ops::Deref for PersistentStore {
    type Target = Store;

    fn deref(&self) -> &Store {
        &self.store
    }
}

impl fmt::Debug for PersistentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PersistentStore")
            .field("dir", &self.journal.dir)
            .field("generation", &self.generation())
            .field("triples", &self.store.len())
            .finish()
    }
}

impl PersistentStore {
    /// Open (creating if needed) the store directory, running recovery:
    /// load the current snapshot, replay the WAL (truncating a torn tail),
    /// rematerialize inference.
    pub fn open(dir: impl AsRef<Path>, config: PersistConfig) -> Result<PersistentStore, PersistError> {
        let dir = dir.as_ref().to_owned();
        fs::create_dir_all(&dir)
            .map_err(|e| PersistError::Io { context: "create store dir", source: e })?;
        let generation = read_current(&dir)?;
        let snap_path = dir.join(format!("snapshot.{generation}.bin"));
        let mut store = if snap_path.exists() {
            snapshot::read_snapshot(&snap_path)?
        } else {
            Store::new()
        };
        let snapshot_triples = store.len();
        let wal_path = dir.join(format!("wal.{generation}.log"));
        let (replayed, truncation) = wal::replay(&wal_path, &mut store)?;
        store.materialize_inference();
        let wal = Wal::open_append(&wal_path, config.fsync, Arc::clone(&config.crash), replayed)?;
        let recovery = RecoveryReport {
            generation,
            snapshot_triples,
            wal_records_replayed: replayed,
            wal_truncation: truncation,
        };
        Ok(PersistentStore {
            store,
            journal: Journal {
                dir,
                inner: Mutex::new(Inner { wal, generation, config, dead: false }),
            },
            recovery,
        })
    }

    /// Split this handle into its in-memory [`Store`], its [`Journal`], and
    /// the recovery report. The concurrent server uses this to put the
    /// store behind a [`crate::SnapshotStore`] while sharing the journal
    /// (`&self` API) across writer and checkpoint paths.
    pub fn into_parts(self) -> (Store, Journal, RecoveryReport) {
        (self.store, self.journal, self.recovery)
    }

    /// The durability half of this handle.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        self.journal.dir()
    }

    /// Read access to the underlying store (also available via `Deref`).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The current generation (bumped by every checkpoint).
    pub fn generation(&self) -> u64 {
        self.journal.generation()
    }

    /// Records in the current WAL — the replay work a crash would cost now.
    pub fn wal_records(&self) -> u64 {
        self.journal.wal_records()
    }

    /// True once a durability failure (or injected crash) poisoned the
    /// handle; all further mutations fail until the directory is reopened.
    pub fn is_dead(&self) -> bool {
        self.journal.is_dead()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.journal.lock()
    }

    // ---- logged mutations -------------------------------------------------

    /// Insert one triple (WAL-logged, then applied). Leaves the inference
    /// layer stale, like [`Store::insert`].
    pub fn insert(&mut self, t: &Triple) -> Result<bool, PersistError> {
        {
            let mut inner = self.lock();
            if inner.dead {
                return Err(PersistError::Dead);
            }
            inner.wal.append_insert(t)?;
        }
        Ok(self.store.insert(t))
    }

    /// Remove one explicit triple (WAL-logged, then applied). Absent
    /// triples are a silent no-op and are not logged.
    pub fn remove(&mut self, t: &Triple) -> Result<bool, PersistError> {
        let ids = match (
            self.store.lookup(&t.subject),
            self.store.lookup(&t.predicate),
            self.store.lookup(&t.object),
        ) {
            (Some(s), Some(p), Some(o)) => [s, p, o],
            _ => return Ok(false),
        };
        if self.store.matching_explicit(Some(ids[0]), Some(ids[1]), Some(ids[2])).next().is_none() {
            return Ok(false);
        }
        {
            let mut inner = self.lock();
            if inner.dead {
                return Err(PersistError::Dead);
            }
            inner.wal.append_remove(t)?;
        }
        Ok(self.store.remove_ids(ids))
    }

    /// Load a graph as one atomic WAL record and materialize inference.
    pub fn load_graph(&mut self, graph: &Graph) -> Result<usize, PersistError> {
        {
            let mut inner = self.lock();
            if inner.dead {
                return Err(PersistError::Dead);
            }
            inner.wal.append_load(&ntriples::serialize(graph))?;
        }
        self.store.bulk_load_graph(graph, LoadOptions::default());
        Ok(graph.len())
    }

    /// Parse and load a Turtle document (logged as its N-Triples form).
    pub fn load_turtle(&mut self, text: &str) -> Result<usize, PersistError> {
        let graph = turtle::parse(text).map_err(|e| PersistError::Turtle(e.to_string()))?;
        self.load_graph(&graph)
    }

    /// Parse and load an N-Triples document.
    pub fn load_ntriples(&mut self, text: &str) -> Result<usize, PersistError> {
        Ok(self.bulk_load_ntriples(text, LoadOptions::default())?.triples)
    }

    /// Bulk-load an N-Triples document through the parallel ingest pipeline
    /// as one atomic WAL record. The payload is fully parsed *before* it is
    /// logged, so the WAL never records an unparsable document.
    pub fn bulk_load_ntriples(
        &mut self,
        text: &str,
        opts: LoadOptions,
    ) -> Result<LoadStats, PersistError> {
        let mut loader = BulkLoader::new(&mut self.store, opts);
        let batch = loader.parse(text).map_err(PersistError::Ntriples)?;
        {
            let mut inner = self.journal.lock();
            if inner.dead {
                return Err(PersistError::Dead);
            }
            inner.wal.append_load(text)?;
        }
        loader.apply(batch);
        Ok(loader.finish(true))
    }

    /// Stream-load an N-Triples file in newline-aligned blocks, logging one
    /// WAL record per block. Each block is parsed before it is logged, and
    /// blocks hold whole lines, so a crash mid-file recovers to a store
    /// holding a valid prefix of the file.
    pub fn load_ntriples_path(
        &mut self,
        path: impl AsRef<Path>,
        opts: LoadOptions,
    ) -> Result<LoadStats, PersistError> {
        let file = fs::File::open(path)
            .map_err(|e| PersistError::Io { context: "open ntriples file", source: e })?;
        let mut blocks = BlockReader::new(file);
        let mut loader = BulkLoader::new(&mut self.store, opts);
        while let Some(block) = blocks
            .next_block()
            .map_err(|e| PersistError::Io { context: "read ntriples file", source: e })?
        {
            let batch = loader.parse(&block).map_err(PersistError::Ntriples)?;
            {
                let mut inner = self.journal.lock();
                if inner.dead {
                    return Err(PersistError::Dead);
                }
                inner.wal.append_load(&block)?;
            }
            loader.apply(batch);
        }
        Ok(loader.finish(true))
    }

    /// Recompute the inferred layer (not logged — it is derived state).
    pub fn materialize_inference(&mut self) {
        self.store.materialize_inference();
    }

    /// Escape hatch for callers that mutate the store through external code
    /// (e.g. a SPARQL update executor) and then log the recorded changes
    /// via [`log_mutations`](PersistentStore::log_mutations). Mutating
    /// through this reference without logging forfeits durability for those
    /// changes.
    pub fn store_mut_unlogged(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Append already-applied mutations as one atomic WAL batch record.
    pub fn log_mutations(&mut self, mutations: &[Mutation]) -> Result<(), PersistError> {
        self.journal.log_mutations(mutations)
    }

    // ---- checkpoint / compaction -----------------------------------------

    /// Write the next generation's snapshot, rotate the WAL, and flip
    /// `CURRENT` — all via temp-file + atomic rename + fsync-dir, so a
    /// crash at any point leaves a complete generation behind. Returns the
    /// new generation. Takes `&self`: readers holding the store can keep
    /// going while a checkpoint runs.
    pub fn checkpoint(&self) -> Result<u64, PersistError> {
        self.journal.checkpoint_from(&self.store)
    }

    /// Write the N-Triples fallback export (human-readable durability
    /// escape hatch; see the snapshot module docs).
    pub fn export_ntriples(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        snapshot::export_ntriples(&self.store, path.as_ref())
    }

    /// Flush the WAL to disk regardless of fsync policy.
    pub fn sync(&self) -> Result<(), PersistError> {
        self.lock().wal.sync()
    }
}

fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

fn read_current(dir: &Path) -> Result<u64, PersistError> {
    let path = dir.join("CURRENT");
    match fs::read_to_string(&path) {
        Ok(text) => text.trim().parse().map_err(|_| PersistError::Corrupt {
            what: "CURRENT",
            detail: format!("not a generation number: {:?}", text.trim()),
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(PersistError::Io { context: "read CURRENT", source: e }),
    }
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| PersistError::Io { context: "fsync dir", source: e })
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> Result<(), PersistError> {
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdfa_model::Term;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rdfa-persist-{}-{}-{}",
            std::process::id(),
            tag,
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn triple(i: usize) -> Triple {
        Triple::new(
            Term::iri(format!("http://e/s{i}")),
            Term::iri("http://e/p"),
            Term::integer(i as i64),
        )
    }

    #[test]
    fn roundtrip_through_wal_only() {
        let dir = tmpdir("wal-roundtrip");
        {
            let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            for i in 0..10 {
                assert!(p.insert(&triple(i)).unwrap());
            }
            assert_eq!(p.wal_records(), 10);
            assert_eq!(p.generation(), 0);
        }
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        assert_eq!(p.len(), 10);
        assert_eq!(p.recovery().wal_records_replayed, 10);
        assert!(p.recovery().wal_truncation.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_compacts_and_bumps_generation() {
        let dir = tmpdir("checkpoint");
        {
            let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            for i in 0..5 {
                p.insert(&triple(i)).unwrap();
            }
            assert_eq!(p.checkpoint().unwrap(), 1);
            assert_eq!(p.wal_records(), 0);
            for i in 5..8 {
                p.insert(&triple(i)).unwrap();
            }
            assert_eq!(p.wal_records(), 3);
        }
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.recovery().generation, 1);
        assert_eq!(p.recovery().snapshot_triples, 5);
        assert_eq!(p.recovery().wal_records_replayed, 3);
        // superseded generation-0 files were cleaned up
        assert!(!dir.join("wal.0.log").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_preserves_schema_and_inference() {
        let dir = tmpdir("inference");
        {
            let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            p.load_turtle(
                r#"@prefix ex: <http://e/> .
                   @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
                   ex:Laptop rdfs:subClassOf ex:Product .
                   ex:l1 a ex:Laptop ."#,
            )
            .unwrap();
            p.checkpoint().unwrap();
        }
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        let product = p.lookup_iri("http://e/Product").unwrap();
        assert_eq!(p.instances(product).len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_is_logged_and_survives_reopen() {
        let dir = tmpdir("remove");
        {
            let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            p.insert(&triple(0)).unwrap();
            p.insert(&triple(1)).unwrap();
            assert!(p.remove(&triple(0)).unwrap());
            assert!(!p.remove(&triple(7)).unwrap()); // absent → no-op, unlogged
        }
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        assert_eq!(p.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_snapshot_byte_is_a_typed_checksum_error() {
        let dir = tmpdir("flip-snapshot");
        {
            let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            for i in 0..20 {
                p.insert(&triple(i)).unwrap();
            }
            p.checkpoint().unwrap();
        }
        let snap = dir.join("snapshot.1.bin");
        let mut bytes = fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&snap, &bytes).unwrap();
        match PersistentStore::open(&dir, PersistConfig::default()) {
            Err(PersistError::Checksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_wal_byte_truncates_to_good_prefix() {
        let dir = tmpdir("flip-wal");
        {
            let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
            for i in 0..10 {
                p.insert(&triple(i)).unwrap();
            }
        }
        let wal = dir.join("wal.0.log");
        let mut bytes = fs::read(&wal).unwrap();
        // flip a byte inside the 6th record's body
        let target = (bytes.len() / 10) * 5 + 12;
        bytes[target] ^= 0x10;
        fs::write(&wal, &bytes).unwrap();
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        let trunc = p.recovery().wal_truncation.clone().expect("truncation reported");
        assert!(trunc.reason.contains("checksum"), "{trunc:?}");
        // a strict prefix survived, and it is a prefix (triples 0..n)
        let n = p.recovery().wal_records_replayed as usize;
        assert!(n < 10);
        assert_eq!(p.len(), n);
        for i in 0..n {
            let t = triple(i);
            let ids = [
                p.lookup(&t.subject).unwrap(),
                p.lookup(&t.predicate).unwrap(),
                p.lookup(&t.object).unwrap(),
            ];
            assert!(p.contains(ids), "triple {i} missing from recovered prefix");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_ntriples_fallback_parses_back() {
        let dir = tmpdir("export");
        let mut p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        p.load_turtle(r#"@prefix ex: <http://e/> . ex:a ex:p "tricky \"value\"\n" ."#).unwrap();
        let out = dir.join("fallback.nt");
        p.export_ntriples(&out).unwrap();
        let graph = ntriples::parse(&fs::read_to_string(&out).unwrap()).unwrap();
        assert_eq!(graph.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_crash_poisons_handle_and_recovery_sees_prefix() {
        let dir = tmpdir("poison");
        let config = PersistConfig {
            fsync: FsyncPolicy::Always,
            crash: CrashInjector::at("wal.append.torn-body", 4),
        };
        let mut p = PersistentStore::open(&dir, config).unwrap();
        let mut acked = 0;
        let mut crashed = false;
        for i in 0..10 {
            match p.insert(&triple(i)) {
                Ok(_) => acked += 1,
                Err(PersistError::InjectedCrash { point }) => {
                    assert_eq!(point, "wal.append.torn-body");
                    crashed = true;
                    break;
                }
                Err(other) => panic!("{other}"),
            }
        }
        assert!(crashed);
        assert!(p.is_dead());
        assert!(matches!(p.insert(&triple(99)), Err(PersistError::Dead)));
        drop(p);
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        let trunc = p.recovery().wal_truncation.clone().expect("torn record cut off");
        assert!(trunc.reason.contains("torn") || trunc.reason.contains("checksum"), "{trunc:?}");
        assert_eq!(p.len(), acked);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// CI sweep hook: with `RDFA_CRASHPOINT` set (e.g. `sample:0.05` +
    /// `RDFA_CRASHPOINT_SEED`), this test drives a seeded workload through
    /// the env-armed injector and asserts recovery lands on a consistent
    /// prefix. Without the env var it runs a fixed sampled schedule so the
    /// path is always exercised.
    #[test]
    fn env_driven_crash_sampling_recovers() {
        let dir = tmpdir("env-sample");
        let crash = if std::env::var("RDFA_CRASHPOINT").is_ok() {
            CrashInjector::from_env()
        } else {
            CrashInjector::sampled(1234, 0.05)
        };
        let config = PersistConfig { fsync: FsyncPolicy::EveryN(2), crash };
        let mut acked = 0usize;
        {
            let mut p = PersistentStore::open(&dir, config).unwrap();
            for i in 0..50 {
                match p.insert(&triple(i)) {
                    Ok(_) => acked += 1,
                    Err(_) => break,
                }
                if i % 10 == 9 && p.checkpoint().is_err() {
                    break;
                }
            }
        }
        let p = PersistentStore::open(&dir, PersistConfig::default()).unwrap();
        // every acknowledged insert survived; at most one torn-but-complete
        // record beyond that may also have made it
        assert!(p.len() >= acked, "lost acknowledged data: {} < {acked}", p.len());
        assert!(p.len() <= acked + 1, "phantom data: {} > {acked}+1", p.len());
        fs::remove_dir_all(&dir).unwrap();
    }
}
