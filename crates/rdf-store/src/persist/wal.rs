//! The append-only write-ahead log.
//!
//! Each record is `len u32 | crc32 u32 | payload`, little-endian, where the
//! CRC covers the payload. Payloads are an op tag followed by N-Triples
//! text — a *logical* log, so replay is independent of interner ids:
//!
//! | tag | op | data |
//! |---|---|---|
//! | 1 | insert | one N-Triples line |
//! | 2 | remove | one N-Triples line |
//! | 3 | load   | an N-Triples document |
//! | 4 | batch  | `u32` count, then per item `u8` insert/remove tag + `u32` len + line |
//!
//! A batch replays atomically: it is one record, so either the whole update
//! survives a crash or none of it does. On open the log is replayed into
//! the store and **truncated at the first torn or corrupt record** — a
//! half-written tail is the expected aftermath of a crash, not an error.

use super::crash::CrashInjector;
use super::crc::crc32;
use super::{FsyncPolicy, Mutation, PersistError};
use crate::store::Store;
use rdfa_model::{ntriples, Triple};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_LOAD: u8 = 3;
const OP_BATCH: u8 = 4;

/// Records larger than this are treated as corruption during replay (a
/// torn length field can otherwise claim gigabytes).
const MAX_RECORD: u32 = 1 << 30;

/// Where and why replay stopped early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTruncation {
    /// Byte offset the log was truncated back to.
    pub offset: u64,
    /// Human-readable reason (torn header, checksum mismatch, …).
    pub reason: String,
}

pub(crate) struct Wal {
    file: File,
    fsync: FsyncPolicy,
    crash: Arc<CrashInjector>,
    unsynced: u32,
    dead: bool,
    /// Records in this log file: replayed at open + appended since.
    pub(crate) records: u64,
}

impl Wal {
    /// Open (creating if needed) a log for appending. `existing` is the
    /// number of records already in the file, as counted by replay.
    pub(crate) fn open_append(
        path: &Path,
        fsync: FsyncPolicy,
        crash: Arc<CrashInjector>,
        existing: u64,
    ) -> Result<Wal, PersistError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PersistError::Io { context: "wal open", source: e })?;
        Ok(Wal {
            file,
            fsync,
            crash,
            unsynced: 0,
            dead: false,
            records: existing,
        })
    }

    pub(crate) fn append_insert(&mut self, t: &Triple) -> Result<(), PersistError> {
        self.append(&encode_line(OP_INSERT, t))
    }

    pub(crate) fn append_remove(&mut self, t: &Triple) -> Result<(), PersistError> {
        self.append(&encode_line(OP_REMOVE, t))
    }

    pub(crate) fn append_load(&mut self, ntriples_doc: &str) -> Result<(), PersistError> {
        let mut payload = Vec::with_capacity(1 + ntriples_doc.len());
        payload.push(OP_LOAD);
        payload.extend_from_slice(ntriples_doc.as_bytes());
        self.append(&payload)
    }

    pub(crate) fn append_batch(&mut self, mutations: &[Mutation]) -> Result<(), PersistError> {
        let mut payload = vec![OP_BATCH];
        payload.extend_from_slice(&(mutations.len() as u32).to_le_bytes());
        for m in mutations {
            let (tag, t) = match m {
                Mutation::Insert(t) => (OP_INSERT, t),
                Mutation::Remove(t) => (OP_REMOVE, t),
            };
            let line = t.to_string();
            payload.push(tag);
            payload.extend_from_slice(&(line.len() as u32).to_le_bytes());
            payload.extend_from_slice(line.as_bytes());
        }
        self.append(&payload)
    }

    /// Append one record, tearing at the armed crash point if any. After an
    /// injected crash (or a real I/O error) the log is poisoned: every
    /// subsequent call fails with [`PersistError::Dead`], exactly as if the
    /// process had died.
    fn append(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        if self.dead {
            return Err(PersistError::Dead);
        }
        let result = self.append_inner(payload);
        if result.is_err() {
            self.dead = true;
        }
        result
    }

    fn append_inner(&mut self, payload: &[u8]) -> Result<(), PersistError> {
        let io = |e: std::io::Error| PersistError::Io { context: "wal append", source: e };
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.file.write_all(&header).map_err(io)?;
        self.crash.check("wal.append.header")?;
        let half = payload.len() / 2;
        self.file.write_all(&payload[..half]).map_err(io)?;
        self.crash.check("wal.append.torn-body")?;
        self.file.write_all(&payload[half..]).map_err(io)?;
        self.crash.check("wal.append.body")?;
        match self.fsync {
            FsyncPolicy::Always => self.file.sync_data().map_err(io)?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.file.sync_data().map_err(io)?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.crash.check("wal.append.synced")?;
        self.records += 1;
        Ok(())
    }

    /// Flush OS buffers (used before checkpointing and on drop).
    pub(crate) fn sync(&mut self) -> Result<(), PersistError> {
        if self.dead {
            return Err(PersistError::Dead);
        }
        self.file
            .sync_data()
            .map_err(|e| PersistError::Io { context: "wal sync", source: e })
    }

    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if !self.dead && !matches!(self.fsync, FsyncPolicy::Never) {
            let _ = self.file.sync_data();
        }
    }
}

fn encode_line(tag: u8, t: &Triple) -> Vec<u8> {
    let line = t.to_string();
    let mut payload = Vec::with_capacity(1 + line.len());
    payload.push(tag);
    payload.extend_from_slice(line.as_bytes());
    payload
}

/// Replay a log into `store` (no per-record inference; the caller
/// rematerializes once). Returns the number of records applied and, when a
/// torn/corrupt tail was found, the truncation performed. The file on disk
/// is physically truncated back to the last good record so the next append
/// starts from a clean boundary.
pub(crate) fn replay(
    path: &Path,
    store: &mut Store,
) -> Result<(u64, Option<WalTruncation>), PersistError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, None)),
        Err(e) => return Err(PersistError::Io { context: "wal read", source: e }),
    };
    let mut pos = 0usize;
    let mut records = 0u64;
    let mut truncation = None;
    while pos < bytes.len() {
        let bad = |reason: String| WalTruncation { offset: pos as u64, reason };
        if pos + 8 > bytes.len() {
            truncation = Some(bad(format!("torn header: {} trailing bytes", bytes.len() - pos)));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let expected = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD {
            truncation = Some(bad(format!("implausible record length {len}")));
            break;
        }
        let body_start = pos + 8;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            truncation = Some(bad(format!(
                "torn record: header claims {len} bytes, {} available",
                bytes.len() - body_start
            )));
            break;
        }
        let payload = &bytes[body_start..body_end];
        let found = crc32(payload);
        if found != expected {
            truncation = Some(bad(format!(
                "checksum mismatch: expected {expected:08x}, found {found:08x}"
            )));
            break;
        }
        match apply_record(store, payload) {
            Ok(()) => {}
            Err(e) => {
                truncation = Some(bad(format!("undecodable record: {e}")));
                break;
            }
        }
        records += 1;
        pos = body_end;
    }
    if let Some(t) = &truncation {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| PersistError::Io { context: "wal truncate", source: e })?;
        file.set_len(t.offset)
            .map_err(|e| PersistError::Io { context: "wal truncate", source: e })?;
        file.sync_data()
            .map_err(|e| PersistError::Io { context: "wal truncate", source: e })?;
    }
    Ok((records, truncation))
}

fn apply_record(store: &mut Store, payload: &[u8]) -> Result<(), PersistError> {
    let (&op, data) = payload.split_first().ok_or(PersistError::Corrupt {
        what: "wal record",
        detail: "empty payload".to_owned(),
    })?;
    let as_text = |data: &[u8]| -> Result<String, PersistError> {
        String::from_utf8(data.to_vec()).map_err(|e| PersistError::Corrupt {
            what: "wal record",
            detail: format!("invalid UTF-8: {e}"),
        })
    };
    match op {
        OP_INSERT => apply_line(store, &as_text(data)?, true),
        OP_REMOVE => apply_line(store, &as_text(data)?, false),
        OP_LOAD => {
            // bulk replay: parses in parallel and rebuilds indexes in one
            // sorted pass, with generation accounting identical to the
            // per-triple inserts it replaces; inference stays unmaterialized
            // until the end of recovery, as before
            store.bulk_replay_ntriples(&as_text(data)?).map_err(PersistError::Ntriples)?;
            Ok(())
        }
        OP_BATCH => {
            let mut pos = 0usize;
            let need = |pos: usize, n: usize| -> Result<(), PersistError> {
                if pos + n > data.len() {
                    return Err(PersistError::Corrupt {
                        what: "wal batch",
                        detail: "truncated batch body".to_owned(),
                    });
                }
                Ok(())
            };
            need(pos, 4)?;
            let count = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            pos += 4;
            for _ in 0..count {
                need(pos, 5)?;
                let tag = data[pos];
                let len =
                    u32::from_le_bytes(data[pos + 1..pos + 5].try_into().unwrap()) as usize;
                pos += 5;
                need(pos, len)?;
                let line = as_text(&data[pos..pos + len])?;
                pos += len;
                apply_line(store, &line, tag == OP_INSERT)?;
            }
            Ok(())
        }
        other => Err(PersistError::Corrupt {
            what: "wal record",
            detail: format!("unknown op tag {other}"),
        }),
    }
}

fn apply_line(store: &mut Store, line: &str, insert: bool) -> Result<(), PersistError> {
    let graph = ntriples::parse(line).map_err(PersistError::Ntriples)?;
    for t in graph.iter() {
        if insert {
            store.insert(t);
        } else if let (Some(s), Some(p), Some(o)) =
            (store.lookup(&t.subject), store.lookup(&t.predicate), store.lookup(&t.object))
        {
            store.remove_ids([s, p, o]);
        }
    }
    Ok(())
}
