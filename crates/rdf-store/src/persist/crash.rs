//! Deterministic crash injection for the persistence layer.
//!
//! Every labeled point in the snapshot/WAL write paths calls
//! [`CrashInjector::check`]. When the injector is armed for that point the
//! call returns [`PersistError::InjectedCrash`]; the caller stops writing
//! *immediately* — leaving a torn header, a half-written record, an
//! un-renamed temp file, whatever the label sits between — and the handle is
//! poisoned so nothing can "finish the job" afterwards. Reopening the
//! directory then exercises recovery exactly as a process kill would.
//!
//! Arming is config-driven ([`CrashInjector::at`]) for the test matrix, or
//! env-driven for CI sweeps:
//!
//! - `RDFA_CRASHPOINT=<label>[:<nth>]` — crash the `nth` (default first)
//!   time `<label>` is reached;
//! - `RDFA_CRASHPOINT=sample[:<prob>]` with `RDFA_CRASHPOINT_SEED=<seed>` —
//!   every check fires with probability `prob` (default 0.02), scheduled by
//!   `rdfa-prng` so a seed reproduces the exact same crash.

use super::PersistError;
use rdfa_prng::StdRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Every labeled crash point in the persistence layer, in the order they
/// occur on the write paths. The crash-matrix test iterates this list.
pub const CRASH_POINTS: &[&str] = &[
    "wal.append.header",
    "wal.append.torn-body",
    "wal.append.body",
    "wal.append.synced",
    "checkpoint.begin",
    "snapshot.header",
    "snapshot.torn-section",
    "snapshot.written",
    "snapshot.fsync",
    "snapshot.rename",
    "checkpoint.wal-created",
    "checkpoint.current",
    "checkpoint.cleanup",
];

#[derive(Debug, Clone)]
enum Mode {
    Off,
    /// Fire the `nth` time `label` is reached (1-based).
    At { label: String, nth: u64 },
    /// Fire any check with probability `prob`, deterministically from `seed`.
    Sample { seed: u64, prob: f64 },
}

/// The crash-point hook shared by a store's WAL and snapshot writers.
#[derive(Debug)]
pub struct CrashInjector {
    mode: Mode,
    hits: AtomicU64,
}

impl CrashInjector {
    /// Never fires.
    pub fn off() -> Arc<CrashInjector> {
        Arc::new(CrashInjector { mode: Mode::Off, hits: AtomicU64::new(0) })
    }

    /// Fire the `nth` (1-based) time `label` is reached.
    pub fn at(label: &str, nth: u64) -> Arc<CrashInjector> {
        Arc::new(CrashInjector {
            mode: Mode::At { label: label.to_owned(), nth: nth.max(1) },
            hits: AtomicU64::new(0),
        })
    }

    /// Fire any labeled point with probability `prob`, scheduled by `seed`.
    pub fn sampled(seed: u64, prob: f64) -> Arc<CrashInjector> {
        Arc::new(CrashInjector {
            mode: Mode::Sample { seed, prob: prob.clamp(0.0, 1.0) },
            hits: AtomicU64::new(0),
        })
    }

    /// Build from `RDFA_CRASHPOINT` / `RDFA_CRASHPOINT_SEED`; off when the
    /// variable is unset or unparsable.
    pub fn from_env() -> Arc<CrashInjector> {
        let Ok(spec) = std::env::var("RDFA_CRASHPOINT") else {
            return CrashInjector::off();
        };
        let spec = spec.trim();
        if spec.is_empty() {
            return CrashInjector::off();
        }
        let seed = std::env::var("RDFA_CRASHPOINT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(42);
        if let Some(rest) = spec.strip_prefix("sample") {
            let prob = rest
                .strip_prefix(':')
                .and_then(|p| p.parse().ok())
                .unwrap_or(0.02);
            return CrashInjector::sampled(seed, prob);
        }
        match spec.split_once(':') {
            Some((label, nth)) => CrashInjector::at(label, nth.parse().unwrap_or(1)),
            None => CrashInjector::at(spec, 1),
        }
    }

    /// Called at a labeled point; `Err(InjectedCrash)` means "the process
    /// died here" — the caller must stop writing and poison itself.
    pub fn check(&self, point: &'static str) -> Result<(), PersistError> {
        match &self.mode {
            Mode::Off => Ok(()),
            Mode::At { label, nth } => {
                if label == point {
                    let n = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
                    if n == *nth {
                        return Err(PersistError::InjectedCrash { point });
                    }
                }
                Ok(())
            }
            Mode::Sample { seed, prob } => {
                let n = self.hits.fetch_add(1, Ordering::SeqCst) + 1;
                let mut rng = StdRng::seed_from_u64(
                    seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ fnv1a(point),
                );
                if rng.gen_bool(*prob) {
                    return Err(PersistError::InjectedCrash { point });
                }
                Ok(())
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_fires_exactly_on_nth_hit() {
        let inj = CrashInjector::at("wal.append.body", 3);
        assert!(inj.check("wal.append.body").is_ok());
        assert!(inj.check("snapshot.header").is_ok()); // other labels don't count
        assert!(inj.check("wal.append.body").is_ok());
        assert!(matches!(
            inj.check("wal.append.body"),
            Err(PersistError::InjectedCrash { point: "wal.append.body" })
        ));
        // fires once, like a process death followed by a restart
        assert!(inj.check("wal.append.body").is_ok());
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let run = |seed| {
            let inj = CrashInjector::sampled(seed, 0.3);
            (0..64)
                .map(|i| inj.check(CRASH_POINTS[i % CRASH_POINTS.len()]).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().any(|&fired| fired));
    }
}
